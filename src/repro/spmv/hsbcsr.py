"""HSBCSR: half slice block compressed sparse row (the paper's format).

Storage (paper Fig. 6/7):

* ``d_data`` / ``nd_data`` — the diagonal and upper non-diagonal 6x6
  blocks, *sliced by local row*: slice ``s`` concatenates row ``s`` of
  every block, in (slice, global row, global column) sort priority, padded
  so each slice's length is a multiple of 32 (the GPU alignment
  condition). Consecutive threads reading consecutive blocks' slice data
  therefore access global memory fully coalesced.
* ``rc`` — compressed (row, col) per non-diagonal block (``rows``/``cols``
  here).
* ``row_up_i`` — end position of each block row in the upper storage
  (CSR-style indptr).
* ``row_low_i`` — end position of each block row of the *implied lower
  triangle* (CSC-style indptr over the upper storage).
* ``row_low_p`` — for each lower-triangle entry (in (col, row) order), the
  position of its transposed source block in the upper storage.

The SpMV (paper Figs. 8/9) runs in two stages plus the diagonal pass:

1. every stored block ``A_k`` (row i, col j) computes
   ``up_res[k] = A_k x_j`` (shared-memory reduction, bank-conflict-free)
   and ``low_res[k] = A_k^T x_i`` (register accumulation across slices);
2. ``up_res`` is segment-summed by ``row_up_i`` (coalesced — six-row
   integer reads by 48-thread groups) and ``low_res`` gathered through
   ``row_low_p`` (texture path) and segment-summed by ``row_low_i``;
3. the diagonal blocks multiply and accumulate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.assembly.global_matrix import BS, BlockMatrix
from repro.gpu.counters import KernelCounters
from repro.gpu.kernel import VirtualDevice
from repro.gpu.memory import coalesced_transactions, gather_transactions
from repro.gpu.warp import WARP_SIZE
from repro.primitives.scatter import segment_sum
from repro.util.validation import check_array

#: Slice lengths are padded to a multiple of this (GPU alignment).
SLICE_ALIGN = 32


def _pad_to(n: int, align: int) -> int:
    return ((n + align - 1) // align) * align


def _slice_blocks(blocks: np.ndarray, align: int) -> np.ndarray:
    """Pack ``(m, 6, 6)`` blocks into the ``(6, padded)`` slice layout."""
    m = blocks.shape[0]
    width = _pad_to(m * BS, align)
    data = np.zeros((BS, width))
    if m:
        # slice s holds row s of every block, blocks in storage order
        data[:, : m * BS] = blocks.transpose(1, 0, 2).reshape(BS, m * BS)
    return data


@dataclass
class HSBCSRMatrix:
    """A :class:`BlockMatrix` converted to the HSBCSR layout."""

    n: int
    n_offdiag: int
    d_data: np.ndarray        # (6, pad(n*6))
    nd_data: np.ndarray       # (6, pad(m*6))
    rows: np.ndarray          # (m,) block row per upper entry
    cols: np.ndarray          # (m,) block col per upper entry
    row_up_i: np.ndarray      # (n+1,) indptr over rows of the upper storage
    row_low_i: np.ndarray     # (n+1,) indptr over rows of the implied lower
    row_low_p: np.ndarray     # (m,) upper-storage position of each lower entry
    # structure-derived caches, computed once per sparsity pattern and
    # shared across value-only rebuilds (the solver sparsity reuse path)
    _reduce_index: tuple | None = None
    _cost: tuple | None = None

    @classmethod
    def from_block_matrix(
        cls,
        a: BlockMatrix,
        *,
        align: int = SLICE_ALIGN,
        structure: "HSBCSRMatrix | None" = None,
    ) -> "HSBCSRMatrix":
        """Build the HSBCSR layout (blocks are already (row, col) sorted).

        ``structure`` optionally names a previously-built matrix with
        the same ``(n,)`` dimensions and identical ``(m,)`` sparsity
        pattern: its index arrays (and any cached reduction indices /
        cost counters) are shared instead of re-derived, so only the
        slice payloads are rebuilt. The pattern is verified exactly; a
        mismatch falls back to a full build.
        """
        m = a.n_offdiag
        d_data = _slice_blocks(a.diag, align)
        nd_data = _slice_blocks(a.blocks, align)
        if (
            structure is not None  # lint: sync-ok[structure-reuse] -- host checks cached sparsity before reuse
            and structure.n == a.n
            and structure.n_offdiag == m
            and structure.d_data.shape == d_data.shape
            and structure.nd_data.shape == nd_data.shape
            and np.array_equal(structure.rows, a.rows)
            and np.array_equal(structure.cols, a.cols)
        ):
            return cls(
                n=a.n,
                n_offdiag=m,
                d_data=d_data,
                nd_data=nd_data,
                rows=structure.rows,
                cols=structure.cols,
                row_up_i=structure.row_up_i,
                row_low_i=structure.row_low_i,
                row_low_p=structure.row_low_p,
                _reduce_index=structure._reduce_index,
                _cost=structure._cost,
            )
        row_up_i = np.zeros(a.n + 1, dtype=np.int64)
        np.cumsum(np.bincount(a.rows, minlength=a.n), out=row_up_i[1:])
        # lower triangle: entry (j, i) for each upper (i, j); sorted by
        # (col, row) of the upper — i.e. by the lower entry's row
        order = np.lexsort((a.rows, a.cols))
        row_low_i = np.zeros(a.n + 1, dtype=np.int64)
        np.cumsum(np.bincount(a.cols, minlength=a.n), out=row_low_i[1:])
        return cls(
            n=a.n,
            n_offdiag=m,
            d_data=d_data,
            nd_data=nd_data,
            rows=a.rows.copy(),
            cols=a.cols.copy(),
            row_up_i=row_up_i,
            row_low_i=row_low_i,
            row_low_p=order.astype(np.int64),
        )

    def reduction_index(self) -> tuple:
        """Stage-2 reduction indices, cached per structure.

        Returns ``(starts_up, nonempty_up, starts_low, nonempty_low)``
        — all 1-D index arrays derived purely from the indptrs, so they
        are computed once and shared by every SpMV on this pattern.
        """
        if self._reduce_index is None:
            self._reduce_index = (
                self.row_up_i[:-1],
                np.flatnonzero(np.diff(self.row_up_i) > 0),
                self.row_low_i[:-1],
                np.flatnonzero(np.diff(self.row_low_i) > 0),
            )
        return self._reduce_index

    # ------------------------------------------------------------------
    @property
    def storage_bytes(self) -> int:
        """Bytes of block data + indices actually stored."""
        return int(
            self.d_data.nbytes
            + self.nd_data.nbytes
            + self.rows.nbytes
            + self.cols.nbytes
            + self.row_up_i.nbytes
            + self.row_low_i.nbytes
            + self.row_low_p.nbytes
        )

    def nd_view(self) -> np.ndarray:
        """``(6, m, 6)`` view of the non-diagonal slice data."""
        m = self.n_offdiag
        return self.nd_data[:, : m * BS].reshape(BS, m, BS)

    def d_view(self) -> np.ndarray:
        """``(6, n, 6)`` view of the diagonal slice data."""
        return self.d_data[:, : self.n * BS].reshape(BS, self.n, BS)


def hsbcsr_spmv(
    a: HSBCSRMatrix,
    x: np.ndarray,
    device: VirtualDevice | None = None,
) -> np.ndarray:
    """``y = A x`` using the two-stage HSBCSR kernel.

    ``x`` has shape ``(6 n,)``; returns ``y`` of the same shape. The
    computation indexes the slice arrays exactly as the CUDA kernel
    does; the modelled cost reflects the coalesced slice reads, the
    texture-path vector gathers, the bank-conflict-free shared reduction
    of Fig. 8, and the regular/irregular stage-2 reductions of Fig. 9.
    """
    x = check_array("x", x, dtype=np.float64, shape=(a.n * BS,))
    xb = x.reshape(a.n, BS)
    m = a.n_offdiag
    y = np.zeros((a.n, BS))

    if m:
        v = a.nd_view()  # (6, m, 6): v[s, k, c] = block_k[s, c]
        xj = xb[a.cols]  # texture gathers
        xi = xb[a.rows]
        # stage 1
        up_res = np.einsum("skc,kc->ks", v, xj)   # A_k x_j
        low_res = np.einsum("skc,ks->kc", v, xi)  # A_k^T x_i
        # stage 2: regular reduction of up_res by row_up_i (indices are
        # structure-only, cached across the CG iterations on one matrix)
        starts_up, nonempty_up, starts_low, nonempty_low = (
            a.reduction_index()
        )
        if nonempty_up.size:
            sums = segment_sum(up_res, starts_up[nonempty_up], axis=0)
            y[nonempty_up] += sums
        # irregular reduction of low_res gathered through row_low_p
        gathered = low_res[a.row_low_p]
        if nonempty_low.size:
            sums = segment_sum(gathered, starts_low[nonempty_low], axis=0)
            y[nonempty_low] += sums

    # stage 3: diagonal
    d = a.d_view()
    y += np.einsum("snc,nc->ns", d, xb)

    if device is not None:
        _record_cost(a, device)
    return y.reshape(-1)


def _record_cost(a: HSBCSRMatrix, device: VirtualDevice) -> None:
    """Record the three-kernel launch sequence of the HSBCSR SpMV.

    The counters depend only on the matrix *structure* (shapes, nnz,
    padded slice widths), so they are built once per structure and
    replayed from the cache on every subsequent SpMV — the modelled
    seconds are bit-identical to rebuilding them each call.
    """
    if a._cost is None:
        a._cost = tuple(_cost_launches(a))
    for name, counters in a._cost:
        device.launch(name, counters)


def _cost_launches(a: HSBCSRMatrix) -> list[tuple[str, KernelCounters]]:
    """Build the ``(name, counters)`` ledger (scalar metadata only)."""
    launches: list[tuple[str, KernelCounters]] = []

    def launch(name: str, counters: KernelCounters) -> None:
        launches.append((name, counters))

    m, n = a.n_offdiag, a.n
    if m:
        # stage 1: slice reads coalesced; x segments through texture; the
        # Fig-8 shared reduction is conflict-free by construction
        launch(
            "hsbcsr_stage1",
            KernelCounters(
                flops=4.0 * m * BS * BS,          # up and low multiplies
                global_bytes_read=a.nd_data.nbytes / BS * 1.0 * BS,
                global_bytes_written=2.0 * m * BS * 8,
                global_txn_read=coalesced_transactions(
                    a.nd_data.shape[1] * BS, 8
                )
                + 2 * coalesced_transactions(m, 8),  # rc indices
                global_txn_written=coalesced_transactions(2 * m * BS, 8),
                # x_j and x_i gathers: 48-byte contiguous block runs (two
                # 32-byte texture segments per block); x_i repeats along a
                # block row (the (row, col) sort), so its fetches hit cache
                texture_bytes=2.0 * m * BS * 8 + 1.0 * m * BS * 8,
                shared_accesses=2.0 * m * BS,     # Fig-8 reduction
                shared_bank_conflict_extra=0.0,
                threads=m * BS,
                warps=max(1, m * BS // WARP_SIZE),
            ),
        )
        # stage 2: up_res coalesced 48-thread row groups; low_res texture
        launch(
            "hsbcsr_stage2",
            KernelCounters(
                flops=2.0 * (2 * m * BS),
                global_bytes_read=m * BS * 8 + 2 * (n + 1) * 8 + m * 8,
                global_bytes_written=n * BS * 8,
                global_txn_read=coalesced_transactions(m * BS, 8)
                + coalesced_transactions(2 * (n + 1) + m, 8),
                global_txn_written=coalesced_transactions(n * BS, 8),
                texture_bytes=float(m * BS * 8),  # low_res gathered
                shared_accesses=2.0 * m * BS / 8.0,
                threads=n * BS,
                warps=max(1, n * BS // WARP_SIZE),
            ),
        )
    # stage 3: diagonal multiply-accumulate
    launch(
        "hsbcsr_diag",
        KernelCounters(
            flops=2.0 * n * BS * BS,
            global_bytes_read=a.d_data.nbytes * 1.0 + n * BS * 8,
            global_bytes_written=n * BS * 8,
            global_txn_read=coalesced_transactions(a.d_data.shape[1] * BS, 8)
            + coalesced_transactions(n * BS, 8),
            global_txn_written=coalesced_transactions(n * BS, 8),
            texture_bytes=float(n * BS * 8),
            threads=n * BS,
            warps=max(1, n * BS // WARP_SIZE),
        ),
    )
    return launches
