"""Sparse matrix–vector multiplication formats and kernels.

The equation solver spends nearly all its time in SpMV, and the paper's
central optimisation is **HSBCSR** (half slice block compressed sparse row
— Section IV.B): store only the upper-triangle 6x6 blocks, sliced by local
row into 32-aligned arrays, and run a two-stage kernel that multiplies
each stored block by *both* the upper and lower vector segments, so the
symmetric half is never materialised.

Reference formats reproduce the baselines:

* :mod:`repro.spmv.csr_ref` — scalar CSR ("cuSPARSE-like"), including the
  full-matrix recovery cost the paper charges to that path;
* :mod:`repro.spmv.formats` — BCSR and ELL.

All kernels compute with NumPy and record their modelled cost on the
virtual device; correctness is cross-checked against SciPy in the tests.
"""

from repro.spmv.hsbcsr import HSBCSRMatrix, hsbcsr_spmv
from repro.spmv.csr_ref import CSRMatrix, csr_spmv
from repro.spmv.formats import BCSRMatrix, bcsr_spmv, ELLMatrix, ell_spmv
from repro.spmv.sell import SELLMatrix, sell_spmv
from repro.spmv.synthetic import synthetic_block_matrix, slope_like_sparsity

__all__ = [
    "HSBCSRMatrix",
    "hsbcsr_spmv",
    "CSRMatrix",
    "csr_spmv",
    "BCSRMatrix",
    "bcsr_spmv",
    "ELLMatrix",
    "ell_spmv",
    "SELLMatrix",
    "sell_spmv",
    "synthetic_block_matrix",
    "slope_like_sparsity",
]
