"""Reference block/ELL SpMV formats (the related-work baselines).

* **BCSR** — block CSR of the *full* matrix: exploits blockiness (one
  column index per 6x6 block) but not symmetry, so it stores and streams
  twice the non-diagonal data HSBCSR does.
* **ELL** — scalar ELLPACK: rows padded to the maximum row length; robust
  and perfectly coalesced but wasteful when row lengths vary (DDA contact
  counts per block vary a lot — the motivation for sliced variants).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.assembly.global_matrix import BS, BlockMatrix
from repro.gpu.counters import KernelCounters
from repro.gpu.kernel import VirtualDevice
from repro.gpu.memory import coalesced_transactions, gather_transactions
from repro.gpu.warp import WARP_SIZE
from repro.primitives.scatter import segment_sum
from repro.util.validation import check_array


@dataclass
class BCSRMatrix:
    """Block CSR of the full symmetric matrix (6x6 blocks)."""

    n: int
    indptr: np.ndarray   # (n+1,) block-row pointers
    indices: np.ndarray  # (nb,) block column per stored block
    data: np.ndarray     # (nb, 6, 6)

    @classmethod
    def from_block_matrix(cls, a: BlockMatrix) -> "BCSRMatrix":
        rows = np.concatenate([np.arange(a.n), a.rows, a.cols])
        cols = np.concatenate([np.arange(a.n), a.cols, a.rows])
        data = np.concatenate(
            [a.diag, a.blocks, a.blocks.transpose(0, 2, 1)]
        )
        order = np.lexsort((cols, rows))
        indptr = np.zeros(a.n + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=a.n), out=indptr[1:])
        return cls(a.n, indptr, cols[order].astype(np.int64), data[order])

    @property
    def storage_bytes(self) -> int:
        return int(self.indptr.nbytes + self.indices.nbytes + self.data.nbytes)


def bcsr_spmv(
    a: BCSRMatrix, x: np.ndarray, device: VirtualDevice | None = None
) -> np.ndarray:
    """``y = A x`` with a block-row-per-warp BCSR kernel model.

    ``x`` has shape ``(6 n,)``; returns ``y`` of the same shape.
    """
    x = check_array("x", x, dtype=np.float64, shape=(a.n * BS,))
    xb = x.reshape(a.n, BS)
    prod = np.einsum("kij,kj->ki", a.data, xb[a.indices])
    y = np.zeros((a.n, BS))
    lengths = np.diff(a.indptr)
    nonempty = np.flatnonzero(lengths > 0)
    if nonempty.size:  # lint: sync-ok[empty-batch] -- segment reduction only for non-empty rows
        y[nonempty] = segment_sum(prod, a.indptr[:-1][nonempty], axis=0)
    if device is not None:
        nb = a.indices.size
        device.launch(
            "bcsr_spmv",
            KernelCounters(
                flops=2.0 * nb * BS * BS,
                global_bytes_read=nb * (BS * BS * 8 + 4) + (a.n + 1) * 8,
                global_bytes_written=a.n * BS * 8,
                global_txn_read=coalesced_transactions(nb * BS * BS, 8)
                + coalesced_transactions(nb, 4),
                global_txn_written=coalesced_transactions(a.n * BS, 8),
                # block-run x gathers: 48-byte contiguous runs fetch two
                # 32-byte segments each (50% fetch efficiency)
                texture_bytes=2.0 * float(nb * BS * 8),
                shared_accesses=2.0 * nb * BS,
                threads=nb * BS,
                warps=max(1, nb * BS // WARP_SIZE),
            ),
        )
    return y.reshape(-1)


@dataclass
class ELLMatrix:
    """Scalar ELLPACK of the full symmetric matrix."""

    n_rows: int
    width: int           # max row length (padding target)
    indices: np.ndarray  # (n_rows, width), padded with the row index
    data: np.ndarray     # (n_rows, width), padded with zeros

    @classmethod
    def from_block_matrix(cls, a: BlockMatrix) -> "ELLMatrix":
        csr = a.to_scipy_csr()
        indptr, indices, data = csr.indptr, csr.indices, csr.data
        n_rows = a.n * BS
        lengths = np.diff(indptr)
        # padding width is a host-side allocation parameter
        width = int(lengths.max()) if n_rows else 0  # lint: sync-ok[alloc-size] -- padding width is a host allocation parameter
        eidx = np.tile(np.arange(n_rows)[:, None], (1, width))
        edata = np.zeros((n_rows, width))
        # one thread per CSR entry: row-local slot = entry index minus the
        # row start, masked fill replaces the former per-row Python loop
        mask = np.arange(width)[None, :] < lengths[:, None]
        eidx[mask] = indices
        edata[mask] = data
        return cls(n_rows, width, eidx.astype(np.int64), edata)

    @property
    def storage_bytes(self) -> int:
        return int(self.indices.nbytes + self.data.nbytes)

    @property
    def fill_ratio(self) -> float:
        """Useful entries / stored entries (1.0 = no padding waste)."""
        if self.data.size == 0:
            return 1.0
        # host-side storage statistic, not on the solve path
        return float(np.count_nonzero(self.data)) / self.data.size  # lint: sync-ok[cost-model] -- host-side storage statistic


def ell_spmv(
    a: ELLMatrix, x: np.ndarray, device: VirtualDevice | None = None
) -> np.ndarray:
    """``y = A x`` with the thread-per-row ELL kernel model.

    ``x`` has shape ``(n_rows,)``; returns ``y`` of the same shape.
    """
    x = check_array("x", x, dtype=np.float64, shape=(a.n_rows,))
    y = np.einsum("rw,rw->r", a.data, x[a.indices])
    if device is not None:
        stored = a.n_rows * a.width
        device.launch(
            "ell_spmv",
            KernelCounters(
                # zero-padded entries still execute their multiply-add
                flops=2.0 * stored,
                global_bytes_read=stored * (8 + 8),
                global_bytes_written=a.n_rows * 8,
                global_txn_read=coalesced_transactions(stored, 16),
                global_txn_written=coalesced_transactions(a.n_rows, 8),
                # scattered scalar x gathers, like CSR's
                texture_bytes=32.0
                * float(gather_transactions(a.indices.ravel(), 8,
                                            transaction_bytes=32)),
                threads=a.n_rows,
                warps=max(1, a.n_rows // WARP_SIZE),
            ),
        )
    return y
