"""Merge-path CSR SpMV (related work [29], Dalton et al., IPDPS 2015).

"A scheme to solve the load balance problem and expose the parallelism
of SpMV was proposed" — merge-based SpMV treats the CSR row-pointer array
and the non-zero array as two sorted lists and splits their *merge path*
into equal-length diagonals, one per thread/warp. Every worker gets
exactly the same amount of (row-advance + nonzero-consume) work, so
pathological row-length distributions cost nothing.

This implementation performs the real two-phase algorithm (path search,
then per-partition accumulation with cross-partition fix-up) and models
its perfectly balanced cost; the paper's HSBCSR still wins on the DDA
matrix because merge-path fixes *balance*, not the symmetry/blockiness
traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.counters import KernelCounters
from repro.gpu.kernel import VirtualDevice
from repro.gpu.memory import coalesced_transactions, gather_transactions
from repro.gpu.warp import WARP_SIZE
from repro.primitives.scatter import scatter_add, segment_sum
from repro.spmv.csr_ref import CSRMatrix
from repro.util.validation import check_array


def merge_path_partitions(
    indptr: np.ndarray, n_workers: int
) -> np.ndarray:
    """Split the merge path into ``n_workers`` equal diagonals.

    The merge path of CSR SpMV walks ``n_rows`` row-end markers and
    ``nnz`` non-zeros — total path length ``n_rows + nnz``. Worker ``w``
    starts at diagonal ``w * path_len / n_workers``; its starting (row,
    nonzero) coordinate is found by binary search along the diagonal:
    the split point is the smallest row ``r`` with
    ``indptr[r + 1] + r >= diagonal``.

    Returns
    -------
    ndarray ``(n_workers + 1, 2)``
        Per-worker (row, nonzero) start coordinates, ending with
        ``(n_rows, nnz)``.
    """
    indptr = check_array("indptr", indptr, dtype=np.int64, ndim=1)
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    n_rows = indptr.size - 1
    # path length / worker count are host-side launch configuration
    nnz = int(indptr[-1])  # lint: sync-ok[launch-config] -- path length and worker count are host launch configuration
    path_len = n_rows + nnz
    # row-end markers sit at path positions indptr[r+1] + r; one thread
    # per worker binary-searches its diagonal (vectorised searchsorted)
    markers = indptr[1:] + np.arange(n_rows)
    diags = np.minimum(
        path_len, (np.arange(n_workers + 1, dtype=np.int64) * path_len)
        // n_workers
    )
    rows = np.searchsorted(markers, diags, side="left")
    coords = np.stack([rows, diags - rows], axis=1).astype(np.int64)
    coords[-1] = (n_rows, nnz)
    return coords


def merge_csr_spmv(
    a: CSRMatrix,
    x: np.ndarray,
    device: VirtualDevice | None = None,
    *,
    n_workers: int | None = None,
) -> np.ndarray:
    """``y = A x`` by the two-phase merge-path algorithm.

    Phase 1: each worker accumulates its merge-path segment, emitting
    complete rows and a (row, partial) carry-out for the row it ends in.
    Phase 2: carry-outs are fixed up into ``y``. Workers touch identical
    path lengths regardless of the row-length distribution.
    """
    x = check_array("x", x, dtype=np.float64, shape=(a.n_rows,))
    if n_workers is None:
        n_workers = max(1, min(1024, a.nnz // 64 + 1))
    coords = merge_path_partitions(a.indptr, n_workers)
    y = np.zeros(a.n_rows)
    contrib = a.data * x[a.indices]
    if a.nnz:
        # phase 1: every contiguous run of `contrib` between consecutive
        # boundaries — the union of row starts and worker starts —
        # belongs to exactly one (row, worker) pair, so the per-worker
        # serial accumulation is a segmented reduction
        bounds = np.union1d(a.indptr[:-1], coords[:-1, 1])
        bounds = bounds[bounds < a.nnz].astype(np.int64)
        seg_sums = segment_sum(contrib, bounds)
        seg_rows = np.searchsorted(a.indptr, bounds, side="right") - 1
        # phase 2: complete-row emits and cross-worker carry fix-ups are
        # both row-indexed scatter-adds of the segment sums
        scatter_add(y, seg_rows, seg_sums)

    if device is not None:
        nnz = a.nnz
        device.launch(
            "merge_path_search",
            KernelCounters(
                flops=float(n_workers) * np.log2(max(2, a.n_rows)),
                global_bytes_read=float(n_workers)
                * np.log2(max(2, a.n_rows)) * 8,
                global_txn_read=n_workers,
                threads=n_workers,
                warps=max(1, n_workers // WARP_SIZE),
            ),
        )
        device.launch(
            "merge_csr_spmv",
            KernelCounters(
                # perfectly balanced: no row-padding waste (the difference
                # from the vector-CSR kernel)
                flops=2.0 * (nnz + a.n_rows),
                global_bytes_read=nnz * 12.0 + (a.n_rows + 1) * 8,
                global_bytes_written=(a.n_rows + 2 * n_workers) * 8.0,
                global_txn_read=coalesced_transactions(nnz, 12)
                + coalesced_transactions(a.n_rows + 1, 8),
                global_txn_written=coalesced_transactions(
                    a.n_rows + 2 * n_workers, 8
                ),
                texture_bytes=32.0
                * float(gather_transactions(a.indices, 8,
                                            transaction_bytes=32)),
                threads=n_workers,
                warps=max(1, n_workers // WARP_SIZE),
            ),
        )
        device.launch(
            "merge_fixup",
            KernelCounters(
                flops=float(n_workers),
                global_bytes_read=n_workers * 16.0,
                global_bytes_written=n_workers * 8.0,
                global_txn_read=coalesced_transactions(n_workers, 16),
                global_txn_written=n_workers,
                threads=n_workers,
                warps=max(1, n_workers // WARP_SIZE),
            ),
        )
    return y
