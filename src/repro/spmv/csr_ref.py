"""Scalar CSR SpMV — the "cuSPARSE" baseline of the paper's Fig. 10.

cuSPARSE's general CSR kernel cannot exploit the DDA matrix's blockiness
or symmetry: the full matrix (both triangles) must be materialised, every
non-zero carries an explicit column index, and the row-length imbalance
costs idle lanes in the warp-per-row kernel. The paper additionally
charges this path the *recovery* step (expanding the stored upper triangle
to a full matrix), because assembly produces only the upper half and runs
inside the innermost loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.assembly.global_matrix import BS, BlockMatrix
from repro.gpu.counters import KernelCounters
from repro.gpu.kernel import VirtualDevice
from repro.gpu.memory import coalesced_transactions, gather_transactions
from repro.gpu.warp import WARP_SIZE
from repro.primitives.scatter import segment_sum
from repro.util.validation import check_array


@dataclass
class CSRMatrix:
    """Scalar CSR of the *full* (symmetric) matrix."""

    n_rows: int
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    @classmethod
    def from_block_matrix(
        cls,
        a: BlockMatrix,
        device: VirtualDevice | None = None,
        *,
        include_recovery_cost: bool = True,
    ) -> "CSRMatrix":
        """Expand a half-stored block matrix to full scalar CSR.

        When ``device`` is given and ``include_recovery_cost`` is true, the
        expansion kernel (read upper blocks, write both triangles) is
        recorded — the cost the paper says "cannot be ignored in a nested
        loop".
        """
        csr = a.to_scipy_csr()
        out = cls(
            n_rows=a.n * BS,
            indptr=csr.indptr.astype(np.int64),
            indices=csr.indices.astype(np.int64),
            data=csr.data.astype(np.float64),
        )
        if device is not None and include_recovery_cost:
            half_bytes = (a.n + a.n_offdiag) * BS * BS * 8
            full_bytes = (a.n + 2 * a.n_offdiag) * BS * BS * (8 + 4)
            device.launch(
                "csr_recover_full",
                KernelCounters(
                    flops=1.0 * (a.n + 2 * a.n_offdiag) * BS * BS,
                    global_bytes_read=float(half_bytes),
                    global_bytes_written=float(full_bytes),
                    global_txn_read=coalesced_transactions(half_bytes // 8, 8),
                    # transposed scatter of the lower half is uncoalesced
                    global_txn_written=coalesced_transactions(full_bytes // 8, 8)
                    * 2.0,
                    threads=(a.n + 2 * a.n_offdiag) * BS,
                    warps=max(1, (a.n + 2 * a.n_offdiag) * BS // WARP_SIZE),
                ),
            )
        return out

    @property
    def nnz(self) -> int:
        return int(self.data.size)

    @property
    def storage_bytes(self) -> int:
        return int(self.indptr.nbytes + self.indices.nbytes + self.data.nbytes)


def csr_spmv(
    a: CSRMatrix,
    x: np.ndarray,
    device: VirtualDevice | None = None,
) -> np.ndarray:
    """``y = A x`` with the warp-per-row vector-CSR kernel model.

    ``x`` has shape ``(n_rows,)``; returns ``y`` of the same shape.
    """
    x = check_array("x", x, dtype=np.float64, shape=(a.n_rows,))
    # the real computation
    y = np.zeros(a.n_rows)
    contrib = a.data * x[a.indices]
    row_lengths = np.diff(a.indptr)
    nonempty = np.flatnonzero(row_lengths > 0)
    if nonempty.size:  # lint: sync-ok[empty-batch] -- segment reduction only for non-empty rows
        sums = segment_sum(contrib, a.indptr[:-1][nonempty])
        y[nonempty] = sums

    if device is not None:
        nnz = a.nnz
        # warp-per-row: every row costs at least one warp-width sweep of
        # its longest lane — model imbalance as padding to the warp size
        padded = np.maximum(row_lengths, 1)
        padded = ((padded + WARP_SIZE - 1) // WARP_SIZE) * WARP_SIZE
        # cost-model statistic for the launch, not the data path
        imbalance = float(padded.sum()) / max(1, nnz)  # lint: sync-ok[cost-model] -- imbalance statistic feeds the launch model
        device.launch(
            "csr_vector_spmv",
            KernelCounters(
                flops=2.0 * nnz * imbalance,
                global_bytes_read=nnz * (8 + 4) + (a.n_rows + 1) * 8,
                global_bytes_written=a.n_rows * 8,
                global_txn_read=coalesced_transactions(nnz, 12)
                + coalesced_transactions(a.n_rows + 1, 8),
                global_txn_written=coalesced_transactions(a.n_rows, 8),
                # x gathers by explicit scalar column index: the x vector
                # exceeds the texture cache at Case-1 sizes, so each
                # distinct 32-byte segment a warp touches is fetched —
                # measured from the actual index pattern. This scattered
                # single-double access is the traffic HSBCSR's 48-byte
                # block-run gathers avoid.
                texture_bytes=32.0
                * float(gather_transactions(a.indices, 8,
                                            transaction_bytes=32)),
                shared_accesses=2.0 * a.n_rows,
                threads=int(padded.sum()),
                warps=int(padded.sum() // WARP_SIZE),
            ),
        )
    return y
