"""Synthetic DDA-like block matrices.

The Fig.-10 experiment needs a matrix with the paper's exact Case-1
dimensions (4361 diagonal and 18731 non-diagonal 6x6 blocks) without the
authors' proprietary slope model. :func:`slope_like_sparsity` builds a
contact-graph-like sparsity pattern — blocks laid out on a 2-D grid, each
coupled to a handful of spatial neighbours, exactly the structure slope
contact graphs have — and :func:`synthetic_block_matrix` fills it with a
symmetric positive-definite block matrix shaped like an assembled DDA
stiffness (strong inertia-dominated diagonal, penalty-like couplings).
"""

from __future__ import annotations

import math

import numpy as np

from repro.assembly.global_matrix import BS, BlockMatrix
from repro.util.rng import make_rng
from repro.util.validation import check_positive


def slope_like_sparsity(
    n: int, n_offdiag: int, seed: int | np.random.Generator = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Upper-triangle (rows, cols) of a contact-graph-like pattern.

    Blocks are placed on a ``~sqrt(n)``-wide grid and coupled to near
    neighbours (the 2-D contact structure of a blocky slope), then extra
    random short-range couplings are added until exactly ``n_offdiag``
    entries exist. Requires ``n_offdiag <= n * (n - 1) / 2``.
    """
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    max_pairs = n * (n - 1) // 2
    if not (0 <= n_offdiag <= max_pairs):
        raise ValueError(
            f"n_offdiag must be in [0, {max_pairs}], got {n_offdiag}"
        )
    rng = make_rng(seed)
    side = int(math.ceil(math.sqrt(n)))
    pairs: set[tuple[int, int]] = set()

    def add(i: int, j: int) -> None:
        if i != j and 0 <= i < n and 0 <= j < n and len(pairs) < n_offdiag:
            pairs.add((min(i, j), max(i, j)))

    # grid neighbours first (right, up, diagonal) — slope-contact-like
    for b in range(n):
        r, c = divmod(b, side)
        add(b, b + 1) if c + 1 < side else None
        add(b, b + side)
        add(b, b + side + 1) if c + 1 < side else None
        if len(pairs) >= n_offdiag:
            break
    # top up with random short-range couplings
    attempts = 0
    while len(pairs) < n_offdiag and attempts < 100 * n_offdiag:
        i = int(rng.integers(0, n))
        span = max(2, 2 * side)
        j = i + int(rng.integers(1, span))
        add(i, j)
        attempts += 1
    while len(pairs) < n_offdiag:  # dense fallback for tiny n
        for i in range(n):
            for j in range(i + 1, n):
                add(i, j)
            if len(pairs) >= n_offdiag:
                break
    arr = np.array(sorted(pairs), dtype=np.int64).reshape(-1, 2)
    return arr[:, 0], arr[:, 1]


def synthetic_block_matrix(
    n: int,
    n_offdiag: int,
    seed: int | np.random.Generator = 0,
    *,
    coupling: float = 0.2,
) -> BlockMatrix:
    """A symmetric positive-definite DDA-like :class:`BlockMatrix`.

    Returns a matrix with ``(n, 6, 6)`` diagonal blocks and
    ``(n_offdiag, 6, 6)`` strictly-upper blocks. Off-diagonal blocks are random with magnitude ``coupling``; diagonal
    blocks are random SPD plus a dominance term that guarantees global
    positive definiteness (Gershgorin), mimicking the inertia-stiffened
    diagonal of the time-stepped DDA system.
    """
    check_positive("coupling", coupling)
    rng = make_rng(seed)
    rows, cols = slope_like_sparsity(n, n_offdiag, rng)
    m = rows.size
    blocks = rng.normal(0.0, coupling, size=(m, BS, BS))
    diag = rng.normal(0.0, coupling, size=(n, BS, BS))
    diag = 0.5 * (diag + diag.transpose(0, 2, 1))
    # Gershgorin dominance: row sums of absolute off-diagonal couplings
    row_weight = np.zeros(n)
    if m:
        absrow = np.abs(blocks).sum(axis=(1, 2))
        np.add.at(row_weight, rows, absrow)
        np.add.at(row_weight, cols, absrow)
    bump = row_weight + np.abs(diag).sum(axis=(1, 2)) + 1.0
    diag[:, np.arange(BS), np.arange(BS)] += bump[:, None]
    return BlockMatrix(n, diag, rows, cols, blocks)
