"""GPU-pipeline Discontinuous Deformation Analysis (DDA) reproduction.

This package reproduces *"Architecting the Discontinuous Deformation
Analysis Method Pipeline on the GPU"* (Xiao et al., 2017) in pure Python:

* :mod:`repro.gpu` — a virtual GPU substrate (device profiles, SIMT warp
  model, memory coalescing / bank-conflict model, perf counters) standing in
  for the paper's Tesla K20/K40 hardware,
* :mod:`repro.primitives` — GPU data-parallel primitives (scan, radix sort,
  stream compaction, sorted search) the paper's pipeline is built from,
* :mod:`repro.spmv` — the paper's HSBCSR sparse block-symmetric SpMV plus
  CSR / BCSR / ELL reference formats,
* :mod:`repro.solvers` — PCG with Block-Jacobi, SSOR approximate-inverse and
  ILU(0) preconditioners,
* :mod:`repro.core`, :mod:`repro.assembly`, :mod:`repro.contact`,
  :mod:`repro.engine` — the full 2-D DDA method (Shi, 1988): block
  kinematics, stiffness assembly, contact detection, open–close iteration,
  and the two pipelines (serial Fig-1 and GPU Fig-2),
* :mod:`repro.meshing` — joint-set block cutting and the slope /
  falling-rock workload generators used by the paper's two cases.

Quickstart::

    from repro import build_slope_model, GpuEngine, SimulationControls

    system = build_slope_model(rows=8, cols=12, seed=0)
    engine = GpuEngine(system, SimulationControls(time_step=1e-3))
    result = engine.run(steps=50)
    print(result.module_times)
"""

from typing import TYPE_CHECKING

__version__ = "1.0.0"

# Lazy exports (PEP 562): importing `repro` stays cheap, and subpackages
# load only when their symbols are touched.
_EXPORTS = {
    "Block": "repro.core.blocks",
    "BlockSystem": "repro.core.blocks",
    "BlockMaterial": "repro.core.materials",
    "JointMaterial": "repro.core.materials",
    "SimulationControls": "repro.core.state",
    "ResilienceControls": "repro.core.state",
    "SimulationError": "repro.engine.resilience",
    "StepRejected": "repro.engine.resilience",
    "SolverBreakdown": "repro.engine.resilience",
    "NumericalBlowup": "repro.engine.resilience",
    "CheckpointCorrupt": "repro.engine.resilience",
    "FailureReport": "repro.engine.resilience",
    "Checkpoint": "repro.engine.resilience",
    "ContractViolation": "repro.engine.contracts",
    "StageContracts": "repro.engine.contracts",
    "FaultInjector": "repro.engine.chaos",
    "FAULT_REGISTRY": "repro.engine.chaos",
    "corrupt_checkpoint_file": "repro.engine.chaos",
    "Tolerances": "repro.geometry.tolerances",
    "ModelValidationError": "repro.util.validation",
    "save_checkpoint": "repro.io.model_io",
    "load_checkpoint": "repro.io.model_io",
    "SerialEngine": "repro.engine.serial_engine",
    "GpuEngine": "repro.engine.gpu_engine",
    "DeviceProfile": "repro.gpu.device",
    "K20": "repro.gpu.device",
    "K40": "repro.gpu.device",
    "E5620": "repro.gpu.device",
    "VirtualDevice": "repro.gpu.kernel",
    "build_slope_model": "repro.meshing.slope_models",
    "build_falling_rocks_model": "repro.meshing.slope_models",
    "build_voronoi_rubble": "repro.meshing.voronoi",
    "HybridEngine": "repro.engine.hybrid_engine",
    "run_until_static": "repro.engine.drivers",
    "render_system": "repro.io.ascii_art",
    "save_system": "repro.io.model_io",
    "load_system": "repro.io.model_io",
    "Tracer": "repro.obs.tracer",
    "SpanRecord": "repro.obs.tracer",
    "MetricsRegistry": "repro.obs.metrics",
    "merge_snapshots": "repro.obs.metrics",
    "render_snapshot": "repro.obs.metrics",
    "BatchClient": "repro.service",
    "JobSpec": "repro.service",
    "JobRecord": "repro.service",
    "JobState": "repro.service",
    "JobQueue": "repro.service",
    "ResultStore": "repro.service",
    "WorkerPool": "repro.service",
}

__all__ = sorted(_EXPORTS) + ["__version__"]


def __getattr__(name: str):
    if name in _EXPORTS:
        import importlib

        module = importlib.import_module(_EXPORTS[name])
        value = getattr(module, name)
        globals()[name] = value  # cache for subsequent lookups
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return __all__


if TYPE_CHECKING:  # pragma: no cover - static typing aid only
    from repro.core.blocks import Block, BlockSystem
    from repro.core.materials import BlockMaterial, JointMaterial
    from repro.core.state import SimulationControls
    from repro.engine.serial_engine import SerialEngine
    from repro.engine.gpu_engine import GpuEngine
    from repro.gpu.device import DeviceProfile, K20, K40, E5620
    from repro.gpu.kernel import VirtualDevice
    from repro.meshing.slope_models import (
        build_slope_model,
        build_falling_rocks_model,
    )
