"""Shared utilities: validation, deterministic RNG, tables, timing."""

from repro.util.validation import (
    check_array,
    check_positive,
    check_in_range,
    validate_model_arrays,
    validate_system,
    ModelValidationError,
    ReproError,
    ShapeError,
)
from repro.util.rng import make_rng
from repro.util.tables import Table
from repro.util.timing import WallTimer, ModuleTimes

__all__ = [
    "check_array",
    "check_positive",
    "check_in_range",
    "validate_model_arrays",
    "validate_system",
    "ModelValidationError",
    "ReproError",
    "ShapeError",
    "make_rng",
    "Table",
    "WallTimer",
    "ModuleTimes",
]
