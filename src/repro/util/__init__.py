"""Shared utilities: validation, deterministic RNG, tables, timing."""

from repro.util.validation import (
    check_array,
    check_positive,
    check_in_range,
    validate_model_arrays,
    validate_system,
    ModelValidationError,
    ReproError,
    ShapeError,
)
from repro.util.hashing import canonical_json, content_hash, short_hash
from repro.util.rng import make_rng
from repro.util.tables import Table
from repro.util.timing import WallTimer, ModuleTimes

__all__ = [
    "check_array",
    "check_positive",
    "check_in_range",
    "validate_model_arrays",
    "validate_system",
    "ModelValidationError",
    "ReproError",
    "ShapeError",
    "canonical_json",
    "content_hash",
    "short_hash",
    "make_rng",
    "Table",
    "WallTimer",
    "ModuleTimes",
]
