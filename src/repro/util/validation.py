"""Input validation helpers used across the package.

All public entry points validate their inputs eagerly so that misuse fails
with a clear message at the API boundary instead of deep inside a kernel.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ShapeError(ReproError, ValueError):
    """An array argument had the wrong shape, dtype, or contents."""


def check_array(
    name: str,
    value: object,
    *,
    dtype: type | None = None,
    ndim: int | None = None,
    shape: Sequence[int | None] | None = None,
    finite: bool = False,
    allow_empty: bool = True,
) -> np.ndarray:
    """Coerce ``value`` to an ndarray and validate it.

    Parameters
    ----------
    name:
        Argument name used in error messages.
    dtype:
        If given, the array is converted to this dtype (safe casting).
    ndim:
        Required number of dimensions.
    shape:
        Required shape; ``None`` entries are wildcards.
    finite:
        Require all entries to be finite (no NaN/inf).
    allow_empty:
        If false, reject zero-size arrays.

    Returns
    -------
    numpy.ndarray
        The validated (possibly converted) array.
    """
    try:
        arr = np.asarray(value)
    except Exception as exc:  # pragma: no cover - numpy raises rarely here
        raise ShapeError(f"{name}: cannot convert to ndarray: {exc}") from exc
    if dtype is not None:
        try:
            arr = arr.astype(dtype, casting="safe", copy=False)
        except TypeError as exc:
            raise ShapeError(
                f"{name}: dtype {arr.dtype} not safely castable to {np.dtype(dtype)}"
            ) from exc
    if ndim is not None and arr.ndim != ndim:
        raise ShapeError(f"{name}: expected {ndim} dimensions, got {arr.ndim}")
    if shape is not None:
        if arr.ndim != len(shape):
            raise ShapeError(
                f"{name}: expected shape {tuple(shape)}, got {arr.shape}"
            )
        for axis, (want, got) in enumerate(zip(shape, arr.shape)):
            if want is not None and want != got:
                raise ShapeError(
                    f"{name}: axis {axis} expected length {want}, got {got}"
                )
    if not allow_empty and arr.size == 0:
        raise ShapeError(f"{name}: must not be empty")
    if finite and arr.size and not np.all(np.isfinite(arr)):  # lint: sync-ok[validation-gate] -- raises on non-finite input before kernels run
        raise ShapeError(f"{name}: contains non-finite values")
    return arr


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate a scalar is positive (or non-negative when ``strict=False``)."""
    value = float(value)
    if not np.isfinite(value):
        raise ShapeError(f"{name}: must be finite, got {value}")
    if strict and value <= 0.0:
        raise ShapeError(f"{name}: must be > 0, got {value}")
    if not strict and value < 0.0:
        raise ShapeError(f"{name}: must be >= 0, got {value}")
    return value


class ModelValidationError(ReproError, ValueError):
    """A model failed structural validation at load time.

    Carries the offending block index (``block``, or ``None`` when the
    problem is not attributable to one block) so callers and error
    messages can point at the exact culprit instead of "somewhere in
    the npz".
    """

    def __init__(self, message: str, *, block: int | None = None) -> None:
        prefix = f"block {block}: " if block is not None else ""
        super().__init__(prefix + message)
        self.block = block


def _segments_properly_cross(a1, b1, a2, b2, eps_area: float) -> bool:
    """True if segments (a1,b1) and (a2,b2) cross at interior points.

    Orientation-sign test; crossings within ``eps_area`` (an absolute
    twice-area tolerance, pre-scaled by the caller) of an endpoint do
    not count, so shared polygon vertices are not flagged.
    """

    def cross(o, p, q):
        return (p[0] - o[0]) * (q[1] - o[1]) - (q[0] - o[0]) * (p[1] - o[1])

    d1 = cross(a2, b2, a1)
    d2 = cross(a2, b2, b1)
    d3 = cross(a1, b1, a2)
    d4 = cross(a1, b1, b2)
    if min(abs(d1), abs(d2), abs(d3), abs(d4)) <= eps_area:
        return False
    return (d1 > 0) != (d2 > 0) and (d3 > 0) != (d4 > 0)


def polygon_is_simple(poly: np.ndarray, *, eps_area: float) -> bool:
    """True if no two non-adjacent edges of ``poly`` properly cross."""
    n = poly.shape[0]
    a = poly
    b = np.roll(poly, -1, axis=0)
    for i in range(n):
        for j in range(i + 2, n):
            if i == 0 and j == n - 1:
                continue  # adjacent through the wrap-around edge
            if _segments_properly_cross(a[i], b[i], a[j], b[j], eps_area):
                return False
    return True


def _canonical_polygon_key(poly: np.ndarray, eps_length: float) -> bytes:
    """Rotation-invariant hash key for duplicate-block detection.

    Vertices are quantised to the length tolerance and the cycle is
    rotated to start at the lexicographically smallest vertex, so two
    blocks tracing the same polygon from different start vertices (or
    differing below tolerance) collide.
    """
    q = np.round(poly / max(eps_length, 1e-300)).astype(np.int64)
    start = int(np.lexsort((q[:, 1], q[:, 0]))[0])
    return np.roll(q, -start, axis=0).tobytes()


def validate_model_arrays(
    vertices: np.ndarray,
    offsets: np.ndarray,
    material_id: np.ndarray | None = None,
    *,
    n_materials: int | None = None,
    fixed_points=(),
    load_points=(),
) -> None:
    """Validate flattened model arrays before block construction.

    Checks, in order: offsets structure, vertex-array shape, finite
    coordinates, per-block vertex counts, material-id bounds,
    (scale-relative) non-zero polygon area, polygon simplicity,
    duplicate blocks, and boundary-condition block indices. Raises
    :class:`ModelValidationError` naming the first offending block.
    """
    # lazy import: geometry.tolerances is a leaf, but keep this module
    # importable without dragging geometry in at import time
    from repro.geometry.tolerances import Tolerances

    offsets = np.asarray(offsets)
    if offsets.ndim != 1 or offsets.size < 2:
        raise ModelValidationError(
            f"offsets must be 1-D with >= 2 entries, got shape {offsets.shape}"
        )
    if offsets[0] != 0:
        raise ModelValidationError(
            f"offsets must start at 0, got {offsets[0]}"
        )
    counts = np.diff(offsets)
    n_blocks = counts.size
    bad = np.flatnonzero(counts <= 0)
    if bad.size:
        raise ModelValidationError(
            "empty vertex range (non-increasing offsets)",
            block=int(bad[0]),
        )
    vertices = np.asarray(vertices)
    if vertices.ndim != 2 or vertices.shape[1] != 2:
        raise ModelValidationError(
            f"vertices must have shape (V, 2), got {vertices.shape}"
        )
    if int(offsets[-1]) != vertices.shape[0]:
        raise ModelValidationError(
            f"offsets end at {int(offsets[-1])} but there are "
            f"{vertices.shape[0]} vertices"
        )
    bad = np.flatnonzero(counts < 3)
    if bad.size:
        raise ModelValidationError(
            f"polygon has {int(counts[bad[0]])} vertices (need >= 3)",
            block=int(bad[0]),
        )
    nonfinite = ~np.isfinite(vertices).all(axis=1)
    if nonfinite.any():
        vidx = int(np.flatnonzero(nonfinite)[0])
        block = int(np.searchsorted(offsets, vidx, side="right") - 1)
        raise ModelValidationError(
            f"non-finite vertex coordinates at vertex {vidx}", block=block
        )
    if material_id is not None:
        material_id = np.asarray(material_id)
        if material_id.shape != (n_blocks,):
            raise ModelValidationError(
                f"material_id must have shape ({n_blocks},), "
                f"got {material_id.shape}"
            )
        if n_materials is not None:
            bad = np.flatnonzero(
                (material_id < 0) | (material_id >= n_materials)
            )
            if bad.size:
                raise ModelValidationError(
                    f"material_id {int(material_id[bad[0]])} out of range "
                    f"[0, {n_materials})",
                    block=int(bad[0]),
                )
    tol = Tolerances.from_points(vertices, rel=1e-12)
    seen: dict[bytes, int] = {}
    for b in range(n_blocks):
        poly = vertices[offsets[b] : offsets[b + 1]]
        x, y = poly[:, 0], poly[:, 1]
        area2 = float(np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y))
        span = poly.max(axis=0) - poly.min(axis=0)
        if abs(area2) <= max(2e-14, 2e-12 * float(span @ span)):
            raise ModelValidationError(
                "polygon has (near-)zero area", block=b
            )
        if not polygon_is_simple(poly, eps_area=tol.eps_area):
            raise ModelValidationError(
                "polygon is non-simple (self-intersecting)", block=b
            )
        key = _canonical_polygon_key(poly, tol.eps_length)
        if key in seen:
            raise ModelValidationError(
                f"duplicate of block {seen[key]} "
                "(coincident geometry within tolerance)",
                block=b,
            )
        seen[key] = b
    for entry in fixed_points:
        b = int(entry[0])
        if not (0 <= b < n_blocks):
            raise ModelValidationError(
                f"fixed point references block {b} out of range "
                f"[0, {n_blocks})"
            )
    for entry in load_points:
        b = int(entry[0])
        if not (0 <= b < n_blocks):
            raise ModelValidationError(
                f"load point references block {b} out of range "
                f"[0, {n_blocks})"
            )


def validate_system(system) -> None:
    """Run :func:`validate_model_arrays` against a built ``BlockSystem``."""
    validate_model_arrays(
        system.vertices,
        system.offsets,
        system.material_id,
        n_materials=len(system.materials),
        fixed_points=system.fixed_points,
        load_points=system.load_points,
    )


def check_in_range(
    name: str, value: float, low: float, high: float, *, inclusive: bool = True
) -> float:
    """Validate a scalar lies in ``[low, high]`` (or the open interval)."""
    value = float(value)
    ok = low <= value <= high if inclusive else low < value < high
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ShapeError(
            f"{name}: must be in {bracket[0]}{low}, {high}{bracket[1]}, got {value}"
        )
    return value
