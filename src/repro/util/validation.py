"""Input validation helpers used across the package.

All public entry points validate their inputs eagerly so that misuse fails
with a clear message at the API boundary instead of deep inside a kernel.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ShapeError(ReproError, ValueError):
    """An array argument had the wrong shape, dtype, or contents."""


def check_array(
    name: str,
    value: object,
    *,
    dtype: type | None = None,
    ndim: int | None = None,
    shape: Sequence[int | None] | None = None,
    finite: bool = False,
    allow_empty: bool = True,
) -> np.ndarray:
    """Coerce ``value`` to an ndarray and validate it.

    Parameters
    ----------
    name:
        Argument name used in error messages.
    dtype:
        If given, the array is converted to this dtype (safe casting).
    ndim:
        Required number of dimensions.
    shape:
        Required shape; ``None`` entries are wildcards.
    finite:
        Require all entries to be finite (no NaN/inf).
    allow_empty:
        If false, reject zero-size arrays.

    Returns
    -------
    numpy.ndarray
        The validated (possibly converted) array.
    """
    try:
        arr = np.asarray(value)
    except Exception as exc:  # pragma: no cover - numpy raises rarely here
        raise ShapeError(f"{name}: cannot convert to ndarray: {exc}") from exc
    if dtype is not None:
        try:
            arr = arr.astype(dtype, casting="safe", copy=False)
        except TypeError as exc:
            raise ShapeError(
                f"{name}: dtype {arr.dtype} not safely castable to {np.dtype(dtype)}"
            ) from exc
    if ndim is not None and arr.ndim != ndim:
        raise ShapeError(f"{name}: expected {ndim} dimensions, got {arr.ndim}")
    if shape is not None:
        if arr.ndim != len(shape):
            raise ShapeError(
                f"{name}: expected shape {tuple(shape)}, got {arr.shape}"
            )
        for axis, (want, got) in enumerate(zip(shape, arr.shape)):
            if want is not None and want != got:
                raise ShapeError(
                    f"{name}: axis {axis} expected length {want}, got {got}"
                )
    if not allow_empty and arr.size == 0:
        raise ShapeError(f"{name}: must not be empty")
    if finite and arr.size and not np.all(np.isfinite(arr)):
        raise ShapeError(f"{name}: contains non-finite values")
    return arr


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate a scalar is positive (or non-negative when ``strict=False``)."""
    value = float(value)
    if not np.isfinite(value):
        raise ShapeError(f"{name}: must be finite, got {value}")
    if strict and value <= 0.0:
        raise ShapeError(f"{name}: must be > 0, got {value}")
    if not strict and value < 0.0:
        raise ShapeError(f"{name}: must be >= 0, got {value}")
    return value


def check_in_range(
    name: str, value: float, low: float, high: float, *, inclusive: bool = True
) -> float:
    """Validate a scalar lies in ``[low, high]`` (or the open interval)."""
    value = float(value)
    ok = low <= value <= high if inclusive else low < value < high
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ShapeError(
            f"{name}: must be in {bracket[0]}{low}, {high}{bracket[1]}, got {value}"
        )
    return value
