"""Deterministic content hashing for declarative job specs.

The batch service keys its result cache on the *content* of a
:class:`~repro.service.spec.JobSpec`: two processes serialising the same
spec must produce byte-identical JSON, so the canonical form pins key
order, strips insignificant whitespace, and rejects NaN/Infinity (whose
textual form is not portable JSON).
"""

from __future__ import annotations

import hashlib
import json


def canonical_json(obj) -> str:
    """Serialise ``obj`` to canonical JSON (sorted keys, no whitespace).

    The output is stable across processes and platforms for any
    JSON-representable value; non-finite floats raise ``ValueError``
    instead of emitting the non-standard ``NaN``/``Infinity`` tokens.
    """
    return json.dumps(
        obj,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def content_hash(obj) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def short_hash(obj, length: int = 12) -> str:
    """Truncated :func:`content_hash` for human-facing identifiers."""
    return content_hash(obj)[:length]
