"""Wall-clock timing helpers and the per-module time ledger.

The paper reports per-module times for the six pipeline stages (Tables II
and III). :class:`ModuleTimes` is the ledger both engines fill in — once
with real wall-clock seconds and once with virtual-device modelled seconds.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

#: Canonical module names, in the paper's Table II/III row order.
PIPELINE_MODULES = (
    "contact_detection",
    "diagonal_matrix_building",
    "nondiagonal_matrix_building",
    "equation_solving",
    "interpenetration_checking",
    "data_updating",
)


class WallTimer:
    """A context-manager stopwatch accumulating into ``.seconds``."""

    def __init__(self) -> None:
        self.seconds = 0.0
        self._t0: float | None = None

    def __enter__(self) -> "WallTimer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._t0 is not None
        self.seconds += time.perf_counter() - self._t0
        self._t0 = None


@dataclass
class ModuleTimes:
    """Accumulated per-pipeline-module times, in seconds.

    Two instances are kept per run: measured wall-clock and modelled
    device time (the virtual GPU / CPU cost model).
    """

    times: dict[str, float] = field(
        default_factory=lambda: {m: 0.0 for m in PIPELINE_MODULES}
    )

    def add(self, module: str, seconds: float) -> None:
        """Accumulate ``seconds`` into ``module`` (must be a known module)."""
        if module not in self.times:
            raise KeyError(
                f"unknown pipeline module {module!r}; known: {PIPELINE_MODULES}"
            )
        self.times[module] += float(seconds)

    @contextmanager
    def measure(self, module: str) -> Iterator[None]:
        """Context manager that wall-clock-times a block into ``module``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(module, time.perf_counter() - t0)

    @property
    def total(self) -> float:
        """Sum over all modules."""
        return sum(self.times.values())

    def speedup_over(self, other: "ModuleTimes") -> dict[str, float]:
        """Per-module ``other/self`` time ratios (``self`` is the faster one).

        Modules where self took zero time map to ``float('inf')`` if the
        baseline spent time there, else ``1.0``.
        """
        out: dict[str, float] = {}
        for m in PIPELINE_MODULES:
            mine, theirs = self.times[m], other.times[m]
            if mine == 0.0:
                out[m] = float("inf") if theirs > 0.0 else 1.0
            else:
                out[m] = theirs / mine
        out["total"] = (
            other.total / self.total if self.total > 0 else float("inf")
        )
        return out

    def as_rows(self) -> list[tuple[str, float]]:
        """Rows in the paper's table order plus a total row."""
        rows = [(m, self.times[m]) for m in PIPELINE_MODULES]
        rows.append(("total", self.total))
        return rows
