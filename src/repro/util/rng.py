"""Deterministic random-number-generator construction.

Every stochastic component of the package (workload generators, property
tests, synthetic matrices) takes a seed and builds its generator through
:func:`make_rng` so that runs are exactly reproducible.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | np.random.Generator | None = 0) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` for OS entropy. Components should pass generators downward so a
    single top-level seed controls an entire experiment.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators.

    Used when a workload generator hands independent streams to sub-tasks
    (e.g. per-joint-set perturbations) so adding a joint set never perturbs
    the randomness of the others.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
