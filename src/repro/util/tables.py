"""Plain-text table rendering for benchmark reports.

The benchmark harness prints paper-vs-measured tables in the same row layout
as the paper's Tables I–III; this module does the formatting.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _fmt(cell: object, precision: int) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 10 ** (precision + 2) or abs(cell) < 10 ** (-precision):
            return f"{cell:.{precision}e}"
        return f"{cell:.{precision}g}"
    return str(cell)


class Table:
    """An ASCII table with a title, a header row, and typed cells.

    Example
    -------
    >>> t = Table("Demo", ["name", "value"])
    >>> t.add_row(["x", 1.5])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(
        self,
        title: str,
        header: Sequence[str],
        *,
        precision: int = 4,
    ) -> None:
        if not header:
            raise ValueError("header must have at least one column")
        self.title = title
        self.header = [str(h) for h in header]
        self.rows: list[list[str]] = []
        self.precision = precision

    def add_row(self, row: Iterable[object]) -> None:
        """Append one row; floats are formatted with the table precision."""
        cells = [_fmt(c, self.precision) for c in row]
        if len(cells) != len(self.header):
            raise ValueError(
                f"row has {len(cells)} cells, header has {len(self.header)}"
            )
        self.rows.append(cells)

    def render(self) -> str:
        """Render the table to a string with aligned columns."""
        widths = [len(h) for h in self.header]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"

        def line(cells: Sequence[str]) -> str:
            return (
                "|"
                + "|".join(f" {c:<{w}} " for c, w in zip(cells, widths))
                + "|"
            )

        out = [self.title, sep, line(self.header), sep]
        out.extend(line(r) for r in self.rows)
        out.append(sep)
        return "\n".join(out)

    def to_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table."""
        out = [f"### {self.title}", ""]
        out.append("| " + " | ".join(self.header) + " |")
        out.append("|" + "|".join("---" for _ in self.header) + "|")
        for row in self.rows:
            out.append("| " + " | ".join(row) + " |")
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()
