"""Distance kernels for narrow-phase contact detection.

DDA's narrow phase computes, for every block pair that survived the broad
phase, the distances between each vertex of one block and each edge (and
vertex) of the other; pairs within the contact threshold are recorded as
vertex–edge (VE) or vertex–vertex (VV) candidates. These kernels are fully
vectorised: one call handles an entire candidate batch.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.tolerances import Tolerances
from repro.util.validation import check_array


def point_point_distance(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Euclidean distance between paired points, vectorised over rows."""
    p = check_array("p", p, dtype=np.float64, shape=(None, 2))
    q = check_array("q", q, dtype=np.float64, shape=(None, 2))
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    return np.hypot(p[:, 0] - q[:, 0], p[:, 1] - q[:, 1])


def point_segment_distance(
    p: np.ndarray, a: np.ndarray, b: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Distance from points ``p`` to segments ``a–b`` (paired rows).

    Returns
    -------
    (dist, t)
        ``dist[i]`` is the distance from ``p[i]`` to segment ``a[i]b[i]``;
        ``t[i] in [0, 1]`` is the clamped projection parameter — the
        "contact edge ratio" DDA stores per contact.
    """
    p = check_array("p", p, dtype=np.float64, shape=(None, 2))
    a = check_array("a", a, dtype=np.float64, shape=(None, 2))
    b = check_array("b", b, dtype=np.float64, shape=(None, 2))
    if not (p.shape == a.shape == b.shape):
        raise ValueError("p, a, b must have identical shapes")
    ab = b - a
    ap = p - a
    denom = np.einsum("ij,ij->i", ab, ab)
    with np.errstate(divide="ignore", invalid="ignore"):
        t = np.where(denom > 0.0, np.einsum("ij,ij->i", ap, ab) / denom, 0.0)
    t = np.clip(t, 0.0, 1.0)
    closest = a + t[:, None] * ab
    return np.hypot(*(p - closest).T), t


def signed_triangle_area2(
    p1: np.ndarray, p2: np.ndarray, p3: np.ndarray
) -> np.ndarray:
    """Twice the signed area of triangles ``(p1, p2, p3)``, vectorised.

    This is the determinant

        | x1 y1 1 |
        | x2 y2 1 |
        | x3 y3 1 |

    that DDA linearises to obtain the normal penetration distance of vertex
    ``p1`` against edge ``p2–p3``. Positive when ``p1`` lies to the *left*
    of the directed edge ``p2 -> p3`` (i.e. ``(p1, p2, p3)`` is CCW). For a
    CCW target block the interior is left of its boundary edges, so contact
    code passes the edge *reversed* (``p3 -> p2`` order) to obtain the DDA
    convention: positive outside, negative penetrating.
    """
    p1 = check_array("p1", p1, dtype=np.float64, shape=(None, 2))
    p2 = check_array("p2", p2, dtype=np.float64, shape=(None, 2))
    p3 = check_array("p3", p3, dtype=np.float64, shape=(None, 2))
    return (p2[:, 0] - p1[:, 0]) * (p3[:, 1] - p1[:, 1]) - (
        p3[:, 0] - p1[:, 0]
    ) * (p2[:, 1] - p1[:, 1])


def edge_penetration(
    p1: np.ndarray, p2: np.ndarray, p3: np.ndarray, *,
    tol: Tolerances | None = None,
) -> np.ndarray:
    """Signed vertex–edge distance ``S0 / l`` for paired rows.

    ``S0`` is :func:`signed_triangle_area2` and ``l`` the edge length;
    the ratio is the perpendicular signed distance of vertex ``p1`` from
    the (infinite) line through ``p2–p3``. Negative values mean the vertex
    has crossed to the material side — an interpenetration.

    Degenerate edges (length below ``tol.eps_length``, scale-relative)
    fall back to the unsigned point–point distance ``|p1 - p2|`` — the
    vertex cannot be "inside" an edge that has no extent. Without ``tol``
    a zero-length edge raises, preserving the strict historical contract.
    """
    s0 = signed_triangle_area2(p1, p2, p3)
    length = np.hypot(p3[:, 0] - p2[:, 0], p3[:, 1] - p2[:, 1])
    if tol is None:
        if np.any(length <= 0.0):
            raise ValueError("degenerate contact edge (zero length)")
        return s0 / length
    degenerate = length <= tol.eps_length
    safe = np.where(degenerate, 1.0, length)
    d = s0 / safe
    if np.any(degenerate):
        d = np.where(degenerate, point_point_distance(p1, p2), d)
    return d
