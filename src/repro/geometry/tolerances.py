"""Scale-relative geometric tolerances.

Every geometric predicate in the pipeline needs an epsilon somewhere —
"is this edge degenerate", "are these segments parallel", "is this area
zero". Absolute constants silently assume metre-scale models: a
millimetre-scale block has edge lengths around ``1e-3`` and areas around
``1e-6``, so an absolute ``1e-9`` area cut-off is six orders of magnitude
looser (relatively) than for a kilometre-scale model, where the same
constant is absurdly strict. :class:`Tolerances` derives every epsilon
from one *length scale* — by convention the model bounding-box diagonal —
so millimetre- and kilometre-scale models behave identically.

Dimensional conventions:

* ``eps_length`` — compares lengths (``rel * length_scale``);
* ``eps_area`` — compares areas (``rel * length_scale ** 2``);
* ``eps_param`` — compares dimensionless parameters (projection ratios,
  normalised cross products): just ``rel``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Default relative tolerance (dimensionless).
DEFAULT_REL = 1e-9


@dataclass(frozen=True)
class Tolerances:
    """Scale-relative epsilons derived from one model length scale.

    Attributes
    ----------
    length_scale:
        Characteristic length of the model, conventionally the bounding-
        box diagonal (see :meth:`from_points`). Must be positive.
    rel:
        Relative tolerance all epsilons are multiples of.
    """

    length_scale: float = 1.0
    rel: float = DEFAULT_REL

    def __post_init__(self) -> None:
        if not (np.isfinite(self.length_scale) and self.length_scale > 0.0):
            raise ValueError(
                f"length_scale must be finite and > 0, got {self.length_scale}"
            )
        if not (np.isfinite(self.rel) and 0.0 < self.rel < 1.0):
            raise ValueError(f"rel must be in (0, 1), got {self.rel}")

    # ------------------------------------------------------------------
    @property
    def eps_length(self) -> float:
        """Lengths below this are "zero" [model length units]."""
        return self.rel * self.length_scale

    @property
    def eps_area(self) -> float:
        """Areas below this are "zero" [length units squared]."""
        return self.rel * self.length_scale**2

    @property
    def eps_param(self) -> float:
        """Dimensionless comparisons (ratios, normalised cross products)."""
        return self.rel

    def scaled(self, factor: float) -> "Tolerances":
        """The same relative tolerance at ``factor`` times the length scale."""
        return Tolerances(self.length_scale * factor, self.rel)

    # ------------------------------------------------------------------
    @classmethod
    def from_points(
        cls, points: np.ndarray, rel: float = DEFAULT_REL
    ) -> "Tolerances":
        """Tolerances scaled to the bounding-box diagonal of ``points``.

        ``points`` is any ``(..., d)`` coordinate array. Degenerate
        inputs (empty, a single repeated point) fall back to the largest
        coordinate magnitude, and finally to ``1.0``, so the result is
        always usable.
        """
        coords = np.asarray(points, dtype=np.float64)
        if coords.ndim == 0 or coords.size == 0:
            return cls(1.0, rel)
        coords = coords.reshape(-1, coords.shape[-1])
        good = coords[np.isfinite(coords).all(axis=1)]
        if good.shape[0] == 0:  # lint: sync-ok[setup] -- one-time host-side tolerance derivation
            return cls(1.0, rel)
        span = good.max(axis=0) - good.min(axis=0)
        diag = float(np.sqrt(np.sum(span * span)))
        if not (np.isfinite(diag) and diag > 0.0):
            diag = float(np.max(np.abs(good)))  # lint: sync-ok[setup] -- one-time host-side tolerance derivation
        if not (np.isfinite(diag) and diag > 0.0):
            diag = 1.0
        return cls(diag, rel)

    @classmethod
    def from_segments(
        cls, segments: np.ndarray, rel: float = DEFAULT_REL
    ) -> "Tolerances":
        """Tolerances scaled to the extent of ``(n, 4)`` segment rows."""
        segs = np.asarray(segments, dtype=np.float64).reshape(-1, 4)
        return cls.from_points(segs.reshape(-1, 2), rel)
