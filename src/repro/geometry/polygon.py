"""Simple-polygon kernels: area, centroid, moments, orientation, AABB.

Vertices are ``(n, 2)`` float arrays in order (no repeated closing vertex).
All integral formulas are the exact Green's-theorem identities, so the
DDA stiffness/inertia integrals computed from them are exact for polygons.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import ShapeError, check_array


def _vertices(poly: np.ndarray) -> np.ndarray:
    poly = check_array("polygon", poly, dtype=np.float64, shape=(None, 2), finite=True)
    if poly.shape[0] < 3:
        raise ShapeError(f"polygon needs >= 3 vertices, got {poly.shape[0]}")
    return poly


def polygon_area(poly: np.ndarray) -> float:
    """Signed area via the shoelace formula (positive for CCW order)."""
    p = _vertices(poly)
    x, y = p[:, 0], p[:, 1]
    xn, yn = np.roll(x, -1), np.roll(y, -1)
    return 0.5 * float(np.sum(x * yn - xn * y))


def is_ccw(poly: np.ndarray) -> bool:
    """True if the polygon is counter-clockwise (positive signed area)."""
    return polygon_area(poly) > 0.0


def ensure_ccw(poly: np.ndarray) -> np.ndarray:
    """Return the polygon with CCW orientation (reversed copy if needed)."""
    p = _vertices(poly)
    return p if is_ccw(p) else p[::-1].copy()


def polygon_centroid(poly: np.ndarray) -> np.ndarray:
    """Centroid of a simple polygon (exact).

    Degeneracy is judged scale-relatively: the area must exceed a tiny
    fraction of the squared bounding-box diagonal, so the same sliver
    shape is accepted or rejected identically at any model scale.
    """
    p = _vertices(poly)
    x, y = p[:, 0], p[:, 1]
    xn, yn = np.roll(x, -1), np.roll(y, -1)
    cross = x * yn - xn * y
    a = 0.5 * np.sum(cross)
    span = p.max(axis=0) - p.min(axis=0)
    if abs(a) <= 1e-14 * float(span @ span):
        raise ShapeError("polygon is degenerate (zero area)")
    cx = np.sum((x + xn) * cross) / (6.0 * a)
    cy = np.sum((y + yn) * cross) / (6.0 * a)
    return np.array([cx, cy])


def polygon_second_moments(poly: np.ndarray) -> tuple[float, float, float]:
    """Second *central* area moments ``(Sxx, Syy, Sxy)``.

    ``Sxx = ∫(x - cx)^2 dA``, ``Syy = ∫(y - cy)^2 dA``,
    ``Sxy = ∫(x - cx)(y - cy) dA`` — the integrals appearing in the DDA
    inertia sub-matrix (Shi 1988, Ch. 2). Sign conventions assume CCW
    orientation; CW polygons are normalised first.
    """
    p = ensure_ccw(poly)
    x, y = p[:, 0], p[:, 1]
    xn, yn = np.roll(x, -1), np.roll(y, -1)
    cross = x * yn - xn * y
    a = 0.5 * np.sum(cross)
    cx = np.sum((x + xn) * cross) / (6.0 * a)
    cy = np.sum((y + yn) * cross) / (6.0 * a)
    # moments about the origin
    sxx_o = np.sum((x * x + x * xn + xn * xn) * cross) / 12.0
    syy_o = np.sum((y * y + y * yn + yn * yn) * cross) / 12.0
    sxy_o = np.sum((x * yn + 2.0 * x * y + 2.0 * xn * yn + xn * y) * cross) / 24.0
    # shift to centroid (parallel-axis)
    return (
        float(sxx_o - a * cx * cx),
        float(syy_o - a * cy * cy),
        float(sxy_o - a * cx * cy),
    )


def polygon_aabb(poly: np.ndarray) -> np.ndarray:
    """Axis-aligned bounding box ``[xmin, ymin, xmax, ymax]``."""
    p = _vertices(poly)
    return np.concatenate([p.min(axis=0), p.max(axis=0)])


def point_in_polygon(poly: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Even–odd (crossing-number) point-in-polygon test, vectorised.

    Parameters
    ----------
    poly:
        ``(n, 2)`` polygon vertices.
    points:
        ``(m, 2)`` query points.

    Returns
    -------
    ndarray of bool, shape ``(m,)``
        Points exactly on an edge may land on either side (standard
        crossing-number caveat); callers needing boundary semantics should
        test distances explicitly.
    """
    p = _vertices(poly)
    q = check_array("points", points, dtype=np.float64, shape=(None, 2))
    x1, y1 = p[:, 0], p[:, 1]
    x2, y2 = np.roll(x1, -1), np.roll(y1, -1)
    px = q[:, 0][:, None]
    py = q[:, 1][:, None]
    # edge straddles the horizontal ray?
    cond = (y1[None, :] > py) != (y2[None, :] > py)
    with np.errstate(divide="ignore", invalid="ignore"):
        t = (py - y1[None, :]) / (y2[None, :] - y1[None, :])
        xint = x1[None, :] + t * (x2[None, :] - x1[None, :])
    crossings = np.sum(cond & (px < xint), axis=1)
    return crossings % 2 == 1
