"""Computational geometry kernels for polygonal blocks.

DDA blocks are simple polygons; every pipeline stage leans on a small set
of geometric primitives: signed area / centroid / second moments (stiffness
and inertia integrals), point–segment distance (narrow-phase contact),
segment intersection (block cutting), and axis-aligned bounding boxes
(broad-phase contact). All kernels are vectorised over their first axis.
"""

from repro.geometry.polygon import (
    polygon_area,
    polygon_centroid,
    polygon_second_moments,
    ensure_ccw,
    is_ccw,
    polygon_aabb,
    point_in_polygon,
)
from repro.geometry.distance import (
    point_segment_distance,
    point_point_distance,
    signed_triangle_area2,
    edge_penetration,
)
from repro.geometry.segments import (
    segment_intersections,
    split_segments_at_points,
)
from repro.geometry.tolerances import Tolerances

__all__ = [
    "Tolerances",
    "polygon_area",
    "polygon_centroid",
    "polygon_second_moments",
    "ensure_ccw",
    "is_ccw",
    "polygon_aabb",
    "point_in_polygon",
    "point_segment_distance",
    "point_point_distance",
    "signed_triangle_area2",
    "edge_penetration",
    "segment_intersections",
    "split_segments_at_points",
]
