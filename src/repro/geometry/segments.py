"""Segment-intersection kernels for the block cutter.

DDA preprocessing turns a set of joint traces (line segments) into a block
system by computing the planar arrangement of the segments and extracting
its faces. The arrangement step needs all pairwise proper intersections
and the ability to split each segment at the points that fall on it.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.tolerances import Tolerances
from repro.util.validation import check_array

#: Relative tolerance used to snap near-coincident intersection parameters.
PARAM_EPS = 1e-9


def segment_intersections(
    segments: np.ndarray, *, eps: float = PARAM_EPS
) -> list[tuple[int, int, float, float]]:
    """All pairwise interior/endpoint intersections among ``segments``.

    Parameters
    ----------
    segments:
        ``(n, 4)`` array of ``[x1, y1, x2, y2]`` rows.
    eps:
        *Relative* tolerance: parallelism and collinearity tests compare
        normalised cross products (sines of angles) against ``eps``, and
        intersections within ``eps`` of an endpoint (in parameter space)
        snap to the endpoint. Length comparisons use ``eps`` scaled by
        the segment set's bounding-box diagonal, so millimetre- and
        kilometre-scale inputs classify identically.

    Returns
    -------
    list of (i, j, ti, tj)
        Segment indices and the parameters along each where they cross.
        Collinear overlaps contribute their overlapping endpoints.
    """
    segs = check_array("segments", segments, dtype=np.float64, shape=(None, 4))
    n = segs.shape[0]
    if n < 2:
        return []
    eps_len2 = Tolerances.from_segments(segs, rel=eps).eps_length ** 2
    p = segs[:, 0:2]
    r = segs[:, 2:4] - segs[:, 0:2]
    ii, jj = np.triu_indices(n, k=1)
    pi, ri = p[ii], r[ii]
    pj, rj = p[jj], r[jj]
    norm_i = np.hypot(ri[:, 0], ri[:, 1])
    norm_j = np.hypot(rj[:, 0], rj[:, 1])
    cross_rr = ri[:, 0] * rj[:, 1] - ri[:, 1] * rj[:, 0]
    qp = pj - pi
    norm_qp = np.hypot(qp[:, 0], qp[:, 1])
    cross_qp_r = qp[:, 0] * ri[:, 1] - qp[:, 1] * ri[:, 0]
    out: list[tuple[int, int, float, float]] = []

    # near-parallel judgment on the *sine of the angle* between the pair
    # (|ri x rj| / |ri||rj|), not the raw cross product, which carries
    # units of area and would make the cut-off scale-dependent
    parallel = np.abs(cross_rr) <= eps * np.maximum(norm_i * norm_j, eps_len2)
    with np.errstate(divide="ignore", invalid="ignore"):
        t = (qp[:, 0] * rj[:, 1] - qp[:, 1] * rj[:, 0]) / cross_rr
        u = (qp[:, 0] * ri[:, 1] - qp[:, 1] * ri[:, 0]) / cross_rr
    proper = (
        ~parallel
        & (t >= -eps)
        & (t <= 1 + eps)
        & (u >= -eps)
        & (u <= 1 + eps)
    )
    for k in np.flatnonzero(proper):
        ti = min(1.0, max(0.0, float(t[k])))
        tj = min(1.0, max(0.0, float(u[k])))
        out.append((int(ii[k]), int(jj[k]), ti, tj))

    # Collinear overlaps: project j's endpoints onto i (the offset test is
    # likewise normalised: |qp x ri| / |qp||ri| against eps).
    collinear = parallel & (
        np.abs(cross_qp_r) <= eps * np.maximum(norm_qp * norm_i, eps_len2)
    )
    for k in np.flatnonzero(collinear):
        i, j = int(ii[k]), int(jj[k])
        riri = float(ri[k] @ ri[k])
        if riri <= eps_len2:
            continue
        t0 = float((pj[k] - pi[k]) @ ri[k]) / riri
        t1 = float((pj[k] + rj[k] - pi[k]) @ ri[k]) / riri
        for tj_end, t_on_i in ((0.0, t0), (1.0, t1)):
            if -eps <= t_on_i <= 1 + eps:
                out.append(
                    (i, j, min(1.0, max(0.0, t_on_i)), tj_end)
                )
        # and i's endpoints onto j
        rjrj = float(rj[k] @ rj[k])
        if rjrj <= eps_len2:
            continue
        s0 = float((pi[k] - pj[k]) @ rj[k]) / rjrj
        s1 = float((pi[k] + ri[k] - pj[k]) @ rj[k]) / rjrj
        for ti_end, s_on_j in ((0.0, s0), (1.0, s1)):
            if -eps <= s_on_j <= 1 + eps:
                out.append(
                    (i, j, ti_end, min(1.0, max(0.0, s_on_j)))
                )
    return out


def split_segments_at_points(
    segments: np.ndarray,
    cut_params: list[list[float]],
    *,
    eps: float = PARAM_EPS,
) -> np.ndarray:
    """Split each segment at the given parameter values.

    Parameters
    ----------
    segments:
        ``(n, 4)`` array of ``[x1, y1, x2, y2]``.
    cut_params:
        For each segment, parameters in ``[0, 1]`` where it must be split
        (unsorted, may contain duplicates/endpoints — both are dropped).

    Returns
    -------
    ndarray ``(m, 4)``
        The sub-segments; every input segment contributes at least itself.
    """
    segs = check_array("segments", segments, dtype=np.float64, shape=(None, 4))
    if len(cut_params) != segs.shape[0]:
        raise ValueError(
            f"cut_params has {len(cut_params)} entries for {segs.shape[0]} segments"
        )
    pieces: list[np.ndarray] = []
    for k in range(segs.shape[0]):
        ts = sorted(set([0.0, 1.0] + [float(t) for t in cut_params[k]]))
        # drop params equal within eps
        kept = [ts[0]]
        for t in ts[1:]:
            if t - kept[-1] > eps:
                kept.append(t)
        if kept[-1] < 1.0 - eps:
            kept.append(1.0)
        p = segs[k, 0:2]
        r = segs[k, 2:4] - segs[k, 0:2]
        for t0, t1 in zip(kept[:-1], kept[1:]):
            a = p + t0 * r
            b = p + t1 * r
            pieces.append(np.concatenate([a, b]))
    return np.asarray(pieces).reshape(-1, 4)
