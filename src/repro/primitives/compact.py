"""Stream compaction and label partitioning.

The paper's data-classification framework repeatedly "abandons" contact
candidates that fail a judgment and packs the survivors into successive
arrays ("Valid data will be stored in a successive array"). On the GPU this
is mask -> exclusive scan -> scatter; :func:`stream_compact` models exactly
that launch sequence.

:func:`partition_by_label` is the multi-way version used for the
VE / VV1 / VV2 split and the C1..C5 category split: a radix sort on the
small label key, which both compacts and groups in one pass.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.counters import KernelCounters
from repro.gpu.kernel import VirtualDevice
from repro.gpu.memory import coalesced_transactions, gather_transactions
from repro.gpu.warp import WARP_SIZE
from repro.lint.sanitize import scatter_check
from repro.primitives.radix_sort import radix_sort_pairs
from repro.primitives.scan import exclusive_scan
from repro.util.validation import check_array


def stream_compact(
    mask: np.ndarray,
    device: VirtualDevice | None = None,
    *,
    payload_bytes: int = 8,
) -> np.ndarray:
    """Indices of true entries, via the scan + scatter construction.

    ``mask`` is a 1-D boolean array of shape ``(n,)``; returns the 1-D
    gather indices (``np.flatnonzero(mask)``) of the ``k`` survivors.
    Callers apply them to however many payload arrays they carry.
    ``payload_bytes`` sizes the modelled scatter traffic per surviving
    element.
    """
    mask = check_array("mask", mask, ndim=1).astype(bool)
    positions = exclusive_scan(mask.astype(np.int64), device)
    keep = np.flatnonzero(mask)
    scatter_check("compact.scatter", positions[keep])
    if device is not None and mask.size:
        n, k = mask.size, keep.size
        device.launch(
            "compact_scatter",
            KernelCounters(
                flops=float(n),
                global_bytes_read=n * (1 + 8) + k * payload_bytes,
                global_bytes_written=k * (8 + payload_bytes),
                global_txn_read=coalesced_transactions(n, 9),
                global_txn_written=float(
                    gather_transactions(positions[keep], payload_bytes)
                )
                if k
                else 0.0,
                threads=n,
                warps=max(1, n // WARP_SIZE),
                branch_regions=max(1, n // WARP_SIZE),
            ),
        )
    return keep


def partition_by_label(
    labels: np.ndarray,
    n_labels: int,
    device: VirtualDevice | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Group element indices by small integer label.

    Parameters
    ----------
    labels:
        Per-element label in ``[0, n_labels)``. Use a reserved label (e.g.
        ``n_labels - 1``) for "abandoned" data and drop its group.
    n_labels:
        Number of distinct labels.

    Returns
    -------
    (perm, offsets)
        ``perm`` reorders elements so equal labels are adjacent (stable);
        ``offsets`` has length ``n_labels + 1`` with group ``g`` occupying
        ``perm[offsets[g]:offsets[g+1]]``.
    """
    labels = check_array("labels", labels, ndim=1)
    if not np.issubdtype(labels.dtype, np.integer):
        raise TypeError(f"labels must be integers, got {labels.dtype}")
    if n_labels <= 0:
        raise ValueError(f"n_labels must be positive, got {n_labels}")
    if labels.size and (labels.min() < 0 or labels.max() >= n_labels):  # lint: sync-ok[validation-gate] -- label range check, raises before any launch
        raise ValueError(f"labels out of range [0, {n_labels})")
    bits = max(1, (n_labels - 1).bit_length())
    sorted_labels, perm = radix_sort_pairs(
        labels.astype(np.int64), np.zeros(1), device, key_bits=bits,
        digit_bits=min(8, bits),
    )
    counts = np.bincount(sorted_labels, minlength=n_labels)
    offsets = np.zeros(n_labels + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return perm, offsets
