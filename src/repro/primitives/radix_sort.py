"""LSD radix sort (keys, or key/value pairs).

Models Merrill & Grimshaw's GPU radix sort: for each ``digit_bits``-wide
digit, a histogram kernel, a digit-bin scan, and a scatter kernel. The
scatter's write coalescing is computed from the *actual* destination
positions of the pass, so sorting nearly-sorted data (the common case in
contact transfer, where block order changes slowly) is modelled cheaper
than sorting random data — the same behaviour the hardware shows.

The digit passes themselves are performed as genuine stable counting sorts,
so the returned permutation is exactly what the GPU algorithm produces.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.counters import KernelCounters
from repro.gpu.kernel import VirtualDevice
from repro.gpu.memory import coalesced_transactions, gather_transactions
from repro.gpu.warp import WARP_SIZE
from repro.lint.sanitize import active_sanitizer, scatter_check
from repro.util.validation import check_array

#: Digit width used by the launch model (Kepler-era sorts use 4–8 bits).
DEFAULT_DIGIT_BITS = 8


def _key_bits(keys: np.ndarray, key_bits: int | None) -> int:
    if key_bits is not None:
        if key_bits <= 0:
            raise ValueError(f"key_bits must be positive, got {key_bits}")
        return key_bits
    if keys.size == 0:
        return 1
    # pass count is launch configuration, decided on the host
    m = int(keys.max())  # lint: sync-ok[launch-config] -- pass count is host launch configuration
    return max(1, m.bit_length())


def _pass_counters(
    keys: np.ndarray,
    dest: np.ndarray,
    value_bytes: int,
    digit_bits: int,
) -> list[KernelCounters]:
    """Counters for one radix pass: histogram, bin scan, scatter."""
    n = keys.size
    kb = keys.itemsize
    bins = 1 << digit_bits
    hist = KernelCounters(
        flops=1.0 * n,
        global_bytes_read=n * kb,
        global_txn_read=coalesced_transactions(n, kb),
        shared_accesses=2.0 * n,  # per-block bin counters
        threads=n,
        warps=max(1, n // WARP_SIZE),
    )
    scan = KernelCounters(
        flops=2.0 * bins,
        global_bytes_read=bins * 4,
        global_bytes_written=bins * 4,
        global_txn_read=coalesced_transactions(bins, 4),
        global_txn_written=coalesced_transactions(bins, 4),
        threads=bins,
        warps=max(1, bins // WARP_SIZE),
    )
    scatter = KernelCounters(
        flops=2.0 * n,
        global_bytes_read=n * (kb + value_bytes),
        global_bytes_written=n * (kb + value_bytes),
        global_txn_read=coalesced_transactions(n, kb + value_bytes),
        global_txn_written=float(
            gather_transactions(dest, kb)
            + (gather_transactions(dest, value_bytes) if value_bytes else 0)
        ),
        shared_accesses=2.0 * n,  # local ranking
        threads=n,
        warps=max(1, n // WARP_SIZE),
    )
    return [hist, scan, scatter]


def radix_sort_pairs(
    keys: np.ndarray,
    values: np.ndarray | None = None,
    device: VirtualDevice | None = None,
    *,
    key_bits: int | None = None,
    digit_bits: int = DEFAULT_DIGIT_BITS,
) -> tuple[np.ndarray, np.ndarray]:
    """Stable LSD radix sort; returns ``(sorted_keys, permutation)``.

    Parameters
    ----------
    keys:
        Non-negative integer keys (any integer dtype).
    values:
        Optional payload; only its item size matters for the cost model —
        apply the returned permutation to reorder any number of payloads.
    device:
        Optional virtual device to record the pass launch sequence on.
    key_bits:
        Significant key bits; inferred from ``keys.max()`` when omitted.
        Fewer bits means fewer passes (the paper sorts small block ids).
    digit_bits:
        Digit width per pass.

    Returns
    -------
    (ndarray, ndarray)
        The sorted keys and the permutation ``p`` with
        ``sorted_keys == keys[p]``.
    """
    keys = check_array("keys", keys, ndim=1)
    if not np.issubdtype(keys.dtype, np.integer):
        raise TypeError(f"keys must be an integer array, got {keys.dtype}")
    # input validation happens on the host before any launch
    if keys.size and int(keys.min()) < 0:  # lint: sync-ok[validation-gate] -- host validates keys before any launch
        raise ValueError("keys must be non-negative")
    if digit_bits <= 0:
        raise ValueError(f"digit_bits must be positive, got {digit_bits}")
    value_bytes = 0 if values is None else np.asarray(values).itemsize

    perm = np.arange(keys.size, dtype=np.int64)
    cur = keys.copy()
    bits = _key_bits(keys, key_bits)
    mask = (1 << digit_bits) - 1
    for shift in range(0, bits, digit_bits):
        digits = (cur >> shift) & mask
        order = np.argsort(digits, kind="stable")
        if device is not None or active_sanitizer() is not None:
            # the pass's actual scatter destinations feed both the
            # coalescing model and the race sanitizer
            dest = np.empty_like(order)
            dest[order] = np.arange(order.size)
            scatter_check(f"radix_pass{shift // digit_bits}.scatter", dest)
            if device is not None:
                for i, c in enumerate(
                    _pass_counters(cur, dest, value_bytes, digit_bits)
                ):
                    device.launch(f"radix_pass{shift // digit_bits}[{i}]", c)
        cur = cur[order]
        perm = perm[order]
    return cur, perm


def radix_sort_keys(
    keys: np.ndarray,
    device: VirtualDevice | None = None,
    *,
    key_bits: int | None = None,
    digit_bits: int = DEFAULT_DIGIT_BITS,
) -> np.ndarray:
    """Keys-only radix sort (see :func:`radix_sort_pairs`).

    ``keys`` is 1-D non-negative integers; returns the sorted 1-D array.
    """
    sorted_keys, _ = radix_sort_pairs(
        keys, None, device, key_bits=key_bits, digit_bits=digit_bits
    )
    return sorted_keys
