"""Reductions: full and segmented.

Full reductions model the two-kernel tree (per-block shuffle reduction,
then a single-block pass over block partials). Segmented reduction is the
work-horse of the paper's Fig.-4 assembly scheme: after sorting sub-matrix
contributions by block index, entries of each segment are summed. The
boundary-flag + scan construction used there is provided by
:func:`segment_boundaries`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gpu.counters import KernelCounters
from repro.gpu.kernel import VirtualDevice
from repro.gpu.memory import coalesced_transactions
from repro.gpu.warp import WARP_SIZE
from repro.primitives.scatter import segment_sum
from repro.util.validation import check_array

REDUCE_BLOCK = 256


def device_reduce(
    values: np.ndarray,
    device: VirtualDevice | None = None,
) -> float:
    """Sum-reduce a 1-D array; models the two-kernel shuffle tree."""
    values = check_array("values", values, ndim=1)
    n = values.size
    if device is not None and n:
        blocks = math.ceil(n / REDUCE_BLOCK)
        device.launch(
            "reduce[block]",
            KernelCounters(
                flops=float(n),
                global_bytes_read=n * values.itemsize,
                global_bytes_written=blocks * values.itemsize,
                global_txn_read=coalesced_transactions(n, values.itemsize),
                global_txn_written=coalesced_transactions(blocks, values.itemsize),
                shared_accesses=2.0 * blocks * (REDUCE_BLOCK // WARP_SIZE),
                threads=blocks * REDUCE_BLOCK,
                warps=blocks * (REDUCE_BLOCK // WARP_SIZE),
            ),
        )
        if blocks > 1:
            device.launch(
                "reduce[final]",
                KernelCounters(
                    flops=float(blocks),
                    global_bytes_read=blocks * values.itemsize,
                    global_bytes_written=values.itemsize,
                    global_txn_read=coalesced_transactions(blocks, values.itemsize),
                    global_txn_written=1,
                    threads=REDUCE_BLOCK,
                    warps=REDUCE_BLOCK // WARP_SIZE,
                ),
            )
    # device_reduce returns a host scalar by contract (its callers are
    # host-side convergence checks)
    return float(values.sum()) if n else 0.0  # lint: sync-ok[host-scalar-contract] -- device_reduce's contract is a host scalar


def segment_boundaries(sorted_keys: np.ndarray) -> np.ndarray:
    """Start offsets of each run in a sorted key array.

    This is the ``di[i] = (SD[i] - SD[i-1] == 0) ? 1 : 0`` flag + scan
    construction of the paper's Fig. 4, returning the segment start indices
    (the scan of the negated flags compacted).

    ``sorted_keys`` is 1-D; returns a 1-D int64 array ``starts`` with
    ``starts[0] == 0`` and one entry per distinct run; append
    ``len(sorted_keys)`` to close the last segment.
    """
    keys = check_array("sorted_keys", sorted_keys, ndim=1)
    if keys.size == 0:
        return np.zeros(0, dtype=np.int64)
    new_seg = np.ones(keys.size, dtype=bool)
    new_seg[1:] = keys[1:] != keys[:-1]
    return np.flatnonzero(new_seg).astype(np.int64)


def segmented_reduce(
    values: np.ndarray,
    starts: np.ndarray,
    device: VirtualDevice | None = None,
) -> np.ndarray:
    """Sum each segment of ``values``; segments start at ``starts``.

    ``values`` may be 1-D (scalar entries) or 2-D (one row per entry, e.g.
    flattened 6x6 sub-matrices in the Fig.-4 assembler); rows within a
    segment are summed element-wise.
    """
    values = np.asarray(values)
    if values.ndim not in (1, 2):
        raise ValueError(f"values must be 1-D or 2-D, got ndim={values.ndim}")
    starts = check_array("starts", starts, ndim=1, dtype=np.int64)
    if starts.size == 0:
        return values[:0]
    if starts[0] != 0:  # lint: sync-ok[validation-gate] -- segment layout check, raises before launch
        raise ValueError("starts[0] must be 0")
    if np.any(np.diff(starts) <= 0) or starts[-1] >= max(1, values.shape[0]):  # lint: sync-ok[validation-gate] -- segment layout check, raises before launch
        # lint: sync-ok[validation-gate] -- segment layout check, raises before launch
        if values.shape[0] > 0 and (
            np.any(np.diff(starts) <= 0) or starts[-1] >= values.shape[0]
        ):
            raise ValueError("starts must be strictly increasing and in range")
    if device is not None and values.size:
        row_bytes = values.itemsize * (values.shape[1] if values.ndim == 2 else 1)
        n = values.shape[0]
        device.launch(
            "segmented_reduce",
            KernelCounters(
                flops=float(values.size),
                global_bytes_read=n * row_bytes + starts.size * 8,
                global_bytes_written=starts.size * row_bytes,
                global_txn_read=coalesced_transactions(n, row_bytes),
                global_txn_written=coalesced_transactions(starts.size, row_bytes),
                shared_accesses=2.0 * n,
                threads=n,
                warps=max(1, n // WARP_SIZE),
            ),
        )
    return segment_sum(values, starts, axis=0)
