"""GPU data-parallel primitives.

The paper combines its pipeline stages with scan and radix-sort primitives
(Merrill & Grimshaw) whose reductions use Kepler warp-shuffle instructions,
plus stream compaction (classify/abandon contact data), segmented reduction
(sub-matrix assembly, Fig. 4) and sorted search (contact transfer).

Each primitive here performs the *real* computation with NumPy and, when
given a :class:`~repro.gpu.kernel.VirtualDevice`, records the modelled work
of the corresponding CUDA implementation (launch structure, memory traffic,
scatter coalescing) into the device ledger.
"""

from repro.primitives.scan import exclusive_scan, inclusive_scan
from repro.primitives.radix_sort import radix_sort_pairs, radix_sort_keys
from repro.primitives.reduce import device_reduce, segmented_reduce
from repro.primitives.compact import stream_compact, partition_by_label
from repro.primitives.sorted_search import sorted_search, lower_bound
from repro.primitives.scatter import (
    scatter_add,
    segment_max,
    segment_min,
    segment_sum,
)

__all__ = [
    "exclusive_scan",
    "inclusive_scan",
    "radix_sort_pairs",
    "radix_sort_keys",
    "device_reduce",
    "segmented_reduce",
    "stream_compact",
    "partition_by_label",
    "sorted_search",
    "lower_bound",
    "scatter_add",
    "segment_sum",
    "segment_min",
    "segment_max",
]
