"""The blessed scatter / segmented-reduction seam (rule DDA006).

NumPy's ufunc methods (``np.add.at``, ``np.add.reduceat``,
``np.minimum.reduceat``...) are exactly where a NumPy→CuPy backend port
gets subtle: CuPy covers them partially (``cupyx.scatter_add`` instead
of ``np.add.at``), and on a real device an unordered atomic scatter is
*not* bit-identical to NumPy's left-to-right semantics for
non-associative float addition. Rule DDA006 therefore bans the raw
ufunc methods on the device path and points every caller here — one
reviewed module that a backend shim can swap wholesale.

Every wrapper is a **pure pass-through**: no virtual-device launches,
no counter updates, no copies — the call sites' modelled costs and
bit-exact results (the ``diag_mode`` replay contract, the domain
bit-identity pins) are unchanged by routing through this seam.
"""

from __future__ import annotations

import numpy as np

__all__ = ["scatter_add", "segment_sum", "segment_min", "segment_max"]


def scatter_add(target: np.ndarray, index, values) -> None:
    """Unbuffered in-place scatter-add: ``target[index] += values``
    with repeated-index accumulation.

    ``target``: the destination array, any shape; ``index``: integer
    index array (or tuple of them, e.g. ``(rows, cols)``) selecting
    destinations; ``values``: scalar or array broadcastable to the
    selection. Equivalent to ``np.add.at`` (a CuPy backend maps it to
    ``cupyx.scatter_add``); NumPy's in-order accumulation is preserved
    bit-exactly.
    """
    np.add.at(target, index, values)


def segment_sum(
    values: np.ndarray, starts: np.ndarray, axis: int = 0
) -> np.ndarray:
    """Sum of each segment of ``values`` along ``axis``.

    ``values``: the concatenated per-segment data, shape ``(n, ...)``;
    ``starts``: 1-D segment start offsets into the reduced axis (the
    CSR-style ``indptr[:-1]`` convention of ``np.add.reduceat``).
    Returns one row per segment, shape ``(len(starts), ...)``, summed
    in NumPy's deterministic left-to-right order.
    """
    return np.add.reduceat(values, starts, axis=axis)


def segment_min(
    values: np.ndarray, starts: np.ndarray, axis: int = 0
) -> np.ndarray:
    """Minimum of each segment of ``values`` along ``axis``.

    Same shape conventions and ``starts`` as :func:`segment_sum`.
    """
    return np.minimum.reduceat(values, starts, axis=axis)


def segment_max(
    values: np.ndarray, starts: np.ndarray, axis: int = 0
) -> np.ndarray:
    """Maximum of each segment of ``values`` along ``axis``.

    Same shape conventions and ``starts`` as :func:`segment_sum`.
    """
    return np.maximum.reduceat(values, starts, axis=axis)
