"""Sorted search: vectorised binary search over a sorted array.

The paper's contact-transfer stage assigns one half-warp (16 threads) per
previous-step contact, which then searches the current step's contacts
inside the index range of its minor block number. :func:`sorted_search`
models that access pattern: queries read through the texture path (cached,
irregular) and each query costs ``log2`` probes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gpu.counters import KernelCounters
from repro.gpu.kernel import VirtualDevice
from repro.gpu.memory import coalesced_transactions
from repro.util.validation import check_array

#: Threads cooperating per query in the paper's contact transfer.
HALF_WARP = 16


def lower_bound(
    haystack: np.ndarray,
    needles: np.ndarray,
    device: VirtualDevice | None = None,
) -> np.ndarray:
    """First position where each needle could be inserted keeping order.

    ``haystack`` and ``needles`` are 1-D; returns one index per needle.
    """
    return sorted_search(haystack, needles, device, side="left")


def sorted_search(
    haystack: np.ndarray,
    needles: np.ndarray,
    device: VirtualDevice | None = None,
    *,
    side: str = "left",
) -> np.ndarray:
    """``np.searchsorted`` with the half-warp-per-query cost model.

    Parameters
    ----------
    haystack:
        Sorted 1-D array being searched.
    needles:
        Query values.
    side:
        ``"left"`` or ``"right"`` (as in :func:`numpy.searchsorted`).
    """
    haystack = check_array("haystack", haystack, ndim=1)
    needles = check_array("needles", needles, ndim=1)
    if side not in ("left", "right"):
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    if haystack.size > 1 and np.any(haystack[1:] < haystack[:-1]):  # lint: sync-ok[validation-gate] -- sortedness check, raises before any launch
        raise ValueError("haystack must be sorted ascending")
    if device is not None and needles.size:
        probes = max(1, math.ceil(math.log2(max(2, haystack.size))))
        q = needles.size
        device.launch(
            "sorted_search",
            KernelCounters(
                flops=float(q * probes),
                global_bytes_read=q * needles.itemsize,
                global_txn_read=coalesced_transactions(q, needles.itemsize),
                texture_bytes=float(q * probes * haystack.itemsize),
                threads=q * HALF_WARP,
                warps=max(1, q * HALF_WARP // 32),
                branch_regions=float(q * probes) / 32.0 * HALF_WARP,
                divergent_branch_regions=float(q * probes) / 64.0 * HALF_WARP,
            ),
        )
    return np.searchsorted(haystack, needles, side=side)
