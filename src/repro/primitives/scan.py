"""Prefix-sum (scan) primitives.

Models the three-kernel chained scan of Merrill & Grimshaw (block-local
scan, scan of block sums, uniform add), with the block-local reduction
done through warp shuffles as the paper adopts ("the reduction algorithms
in the scan and radix sort methods were replaced by a shuffle instruction").
Shuffle-based reductions exchange registers directly, so the modelled
shared-memory traffic is zero for the warp stage and one word per warp for
the cross-warp stage.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gpu.counters import KernelCounters
from repro.gpu.kernel import VirtualDevice
from repro.gpu.memory import coalesced_transactions
from repro.gpu.warp import WARP_SIZE
from repro.util.validation import check_array

#: Threads per CUDA block assumed by the scan launch model.
SCAN_BLOCK = 256


def _scan_counters(n: int, elem_bytes: int, use_shuffle: bool) -> list[KernelCounters]:
    """Counter sets for the scan launch sequence over ``n`` elements."""
    if n == 0:
        return []
    blocks = math.ceil(n / SCAN_BLOCK)
    warps_per_block = SCAN_BLOCK // WARP_SIZE
    # Kernel 1: block-local scans. Each element read+written once; the
    # intra-block tree does ~2 add per element.
    k1 = KernelCounters(
        flops=2.0 * n,
        global_bytes_read=n * elem_bytes,
        global_bytes_written=n * elem_bytes + blocks * elem_bytes,
        global_txn_read=coalesced_transactions(n, elem_bytes),
        global_txn_written=coalesced_transactions(n + blocks, elem_bytes),
        threads=blocks * SCAN_BLOCK,
        warps=blocks * warps_per_block,
    )
    if use_shuffle:
        # cross-warp exchange: one shared word per warp, no bank conflicts
        k1.shared_accesses = 2.0 * blocks * warps_per_block
    else:
        # classic shared-memory tree: ~2 accesses per element per level pair
        k1.shared_accesses = 4.0 * n
        k1.shared_bank_conflict_extra = 0.25 * n  # typical tree conflicts
    out = [k1]
    if blocks > 1:
        # Kernel 2: scan of block sums (small; recurse one level is enough
        # for every size this repo launches).
        out.extend(_scan_counters(blocks, elem_bytes, use_shuffle))
        # Kernel 3: uniform add of block offsets.
        out.append(
            KernelCounters(
                flops=1.0 * n,
                global_bytes_read=n * elem_bytes + blocks * elem_bytes,
                global_bytes_written=n * elem_bytes,
                global_txn_read=coalesced_transactions(n + blocks, elem_bytes),
                global_txn_written=coalesced_transactions(n, elem_bytes),
                threads=blocks * SCAN_BLOCK,
                warps=blocks * warps_per_block,
            )
        )
    return out


def _record(device: VirtualDevice | None, name: str, counters: list[KernelCounters]) -> None:
    if device is not None:
        for i, c in enumerate(counters):
            device.launch(f"{name}[{i}]", c)


def inclusive_scan(
    values: np.ndarray,
    device: VirtualDevice | None = None,
    *,
    use_shuffle: bool = True,
) -> np.ndarray:
    """Inclusive prefix sum of a 1-D array.

    Parameters
    ----------
    values:
        Numeric 1-D array.
    device:
        Optional virtual device; when given, the launch sequence of the
        chained-scan CUDA implementation is recorded.
    use_shuffle:
        Model the Kepler shuffle-based reduction (the paper's choice)
        instead of the classic shared-memory tree. Affects only the
        modelled cost, never the result.
    """
    values = check_array("values", values, ndim=1)
    _record(device, "inclusive_scan", _scan_counters(values.size, values.itemsize, use_shuffle))
    return np.cumsum(values)


def exclusive_scan(
    values: np.ndarray,
    device: VirtualDevice | None = None,
    *,
    use_shuffle: bool = True,
) -> np.ndarray:
    """Exclusive prefix sum of a 1-D array.

    ``out[i] = sum(values[:i])``, ``out[0] = 0``; same shape as the input.
    """
    values = check_array("values", values, ndim=1)
    _record(device, "exclusive_scan", _scan_counters(values.size, values.itemsize, use_shuffle))
    out = np.zeros(values.size, dtype=np.result_type(values.dtype, np.int64)
                   if np.issubdtype(values.dtype, np.integer) else values.dtype)
    if values.size > 1:
        np.cumsum(values[:-1], out=out[1:])
    return out
