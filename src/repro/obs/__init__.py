"""Unified observability: structured tracing, metrics, trace export.

The paper's entire evaluation is per-module timing (Tables II/III report
the six pipeline stages; Figs 5/10 report solver and SpMV behaviour), so
measurement is a first-class subsystem here, shared by all three
engines, the solvers, and the batch service:

* :class:`Tracer` (:mod:`repro.obs.tracer`) — per-step, per-module span
  records (wall seconds, modelled device seconds, solver/contact
  extras) with near-zero overhead when disabled, exportable as
  JSON-lines or Chrome ``chrome://tracing`` / Perfetto trace-event
  JSON;
* :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) — counters,
  gauges, and histograms (contact classes, CG iteration distribution,
  solver-rung escalations, contract violations, rollbacks, batch cache
  hit/miss) with a JSON-safe ``snapshot()`` and text renderer;
* :mod:`repro.obs.report` — the ``python -m repro report`` subcommand:
  a paper-style per-module table (measured vs modelled, speedup
  column) rendered from a trace file.

The engines accept ``tracer=`` / ``metrics=`` keyword arguments; the
CLI exposes ``--trace out.json --metrics`` on ``run`` and
``batch run``. See ``docs/usage.md`` ("Observability") for the guide.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    render_snapshot,
)
from repro.obs.tracer import NULL_TRACER, SpanRecord, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "SpanRecord",
    "Tracer",
    "merge_snapshots",
    "render_snapshot",
]
