"""``python -m repro report`` — paper-style tables from traces and dirs.

Given a trace file written by ``--trace`` (either format), renders the
Table-II/III-style per-module report: measured wall seconds, modelled
device seconds, and the measured/modelled speedup column, plus the
step-level aggregates (steps, CG iterations, open–close iterations,
contacts) carried on the ``"step"`` summary spans.

Given a *batch directory* (the root a :class:`BatchClient` manages),
renders the service operator view instead: queue depths and per-state
job counts, journal event tallies, cache hit rates, and the merged
counters of every scheduler and HTTP-server process that persisted a
metrics snapshot under ``<dir>/metrics/`` — storage faults injected
and absorbed (``batch.io_faults.*``), lease expiries and fenced zombie
writes, HTTP request/shed/rate-limit/drain tallies and injected
network faults (``http.*``).

::

    python -m repro --model slope --steps 25 --trace trace.json
    python -m repro report trace.json [--json]
    python -m repro report results/soak [--json]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.obs.tracer import Tracer
from repro.util.tables import Table
from repro.util.timing import PIPELINE_MODULES


def build_report(tracer: Tracer) -> dict:
    """Aggregate a trace into the report payload (JSON-safe)."""
    summary = tracer.module_summary()
    ordered = [m for m in PIPELINE_MODULES if m in summary]
    ordered += [m for m in sorted(summary) if m not in PIPELINE_MODULES]
    modules = {}
    for name in ordered:
        d = summary[name]
        ratio = d["wall_s"] / d["device_s"] if d["device_s"] > 0.0 else None
        modules[name] = {
            "spans": d["spans"],
            "wall_s": d["wall_s"],
            "modelled_s": d["device_s"],
            # the measured-wall over modelled-device ratio; ``speedup``
            # is the historical key, kept for consumers that pin it
            "speedup": ratio,
            "wall_modelled_ratio": ratio,
        }
    total_wall = sum(d["wall_s"] for d in summary.values())
    total_dev = sum(d["device_s"] for d in summary.values())
    steps = tracer.step_spans()
    step_totals = {
        "steps": len(steps),
        "cg_iterations": sum(
            int(s.extras.get("cg_iterations", 0)) for s in steps
        ),
        "open_close_iterations": sum(
            int(s.extras.get("open_close_iterations", 0)) for s in steps
        ),
        "max_contacts": max(
            (int(s.extras.get("n_contacts", 0)) for s in steps), default=0
        ),
    }
    total_ratio = total_wall / total_dev if total_dev > 0.0 else None
    return {
        "meta": dict(tracer.meta),
        "modules": modules,
        "total": {
            "wall_s": total_wall,
            "modelled_s": total_dev,
            "speedup": total_ratio,
            "wall_modelled_ratio": total_ratio,
        },
        **step_totals,
    }


def render_report(report: dict) -> str:
    """Text-render a :func:`build_report` payload as the module table."""
    meta = report.get("meta", {})
    title_bits = [
        str(meta[k]) for k in ("engine", "model", "profile") if k in meta
    ]
    title = (
        f"per-module trace report ({', '.join(title_bits)})"
        if title_bits else "per-module trace report"
    )
    table = Table(
        title,
        ["module", "spans", "measured s", "modelled s",
         "speedup (wall/modelled)"],
    )

    def speedup_cell(value):
        return f"{value:.4g}x" if value is not None else "-"

    for name, row in report["modules"].items():
        table.add_row([
            name, row["spans"], row["wall_s"], row["modelled_s"],
            speedup_cell(row["speedup"]),
        ])
    total = report["total"]
    table.add_row([
        "total", sum(r["spans"] for r in report["modules"].values()),
        total["wall_s"], total["modelled_s"], speedup_cell(total["speedup"]),
    ])
    lines = [table.render()]
    lines.append(
        f"steps: {report['steps']}; "
        f"CG iterations: {report['cg_iterations']}; "
        f"open-close iterations: {report['open_close_iterations']}; "
        f"max contacts: {report['max_contacts']}"
    )
    return "\n".join(lines)


def build_service_report(root: str | Path) -> dict:
    """Aggregate a batch directory into the operator view (JSON-safe).

    Merges the metrics snapshots every scheduler (``sched-<pid>.json``)
    and HTTP server (``http-<pid>.json``) persisted under
    ``<root>/metrics/`` — the processes are gone, their counters
    remain — and pairs them with the live queue/journal/cache state.
    """
    from repro.io.batch_io import read_json
    from repro.obs.metrics import merge_snapshots
    from repro.service.queue import JobQueue
    from repro.service.store import ResultStore

    root = Path(root)
    queue = JobQueue(root / "queue", recover=False)
    store = ResultStore(root / "store")
    snap_paths = sorted((root / "metrics").glob("*.json"))
    snaps = [read_json(p) or {} for p in snap_paths]
    merged = merge_snapshots(*snaps) if snaps else {}
    events, torn = queue.journal.events()
    event_counts: dict[str, int] = {}
    for event in events:
        name = event.get("event", "?")
        event_counts[name] = event_counts.get(name, 0) + 1
    return {
        "root": str(root),
        "counts": queue.counts(),
        "queue": queue.depths(),
        "cache": store.stats(),
        "journal": {
            "events": len(events),
            "torn_lines": torn,
            "event_counts": dict(sorted(event_counts.items())),
        },
        "metrics_files": [p.name for p in snap_paths],
        "counters": merged.get("counters", {}),
        "gauges": merged.get("gauges", {}),
    }


def render_service_report(report: dict) -> str:
    """Text-render a :func:`build_service_report` payload."""
    lines = [f"batch service report: {report['root']}"]
    counts = ", ".join(
        f"{state}={n}" for state, n in report["counts"].items() if n
    ) or "empty"
    depths = report["queue"]
    cache = report["cache"]
    lines.append(f"jobs   : {counts}")
    age = depths.get("oldest_queued_age_s")
    lines.append(
        f"queue  : {depths['queued']} queued "
        f"({depths['deferred']} in backoff), "
        f"{depths['claimed']} claimed, {depths['unreadable']} unreadable"
        + (f", oldest waiting {age:.1f}s" if age is not None else "")
    )
    lines.append(
        f"cache  : {cache.get('hits', 0)} hits, "
        f"{cache.get('misses', 0)} misses"
    )
    journal = report["journal"]
    lines.append(
        f"journal: {journal['events']} events"
        + (f" ({journal['torn_lines']} torn line(s))"
           if journal["torn_lines"] else "")
    )
    for name, count in journal["event_counts"].items():
        lines.append(f"  {name:<16}: {count}")
    counters = report["counters"]
    if counters:
        table = Table(
            f"service counters (merged from {len(report['metrics_files'])} "
            "process snapshot(s))",
            ["counter", "value"],
        )
        for prefix in ("batch.", "http."):
            for name in sorted(c for c in counters if c.startswith(prefix)):
                table.add_row([name, counters[name]])
        for name in sorted(
            c for c in counters
            if not c.startswith(("batch.", "http."))
        ):
            table.add_row([name, counters[name]])
        lines.append(table.render())
    else:
        lines.append(
            "no metrics snapshots under <dir>/metrics/ — run a scheduler "
            "or HTTP server against this directory first"
        )
    return "\n".join(lines)


def report_main(argv: list[str] | None = None) -> int:
    """The ``report`` subcommand entry point."""
    p = argparse.ArgumentParser(
        prog="python -m repro report",
        description="Render a per-module table from a --trace file, or "
                    "the service operator view from a batch directory.",
    )
    p.add_argument("trace", metavar="TRACE_OR_DIR",
                   help="trace file written by --trace (.json or .jsonl), "
                        "or a batch directory (queue + store + metrics)")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit the report as JSON instead of a table")
    args = p.parse_args(argv)
    if Path(args.trace).is_dir():
        report = build_service_report(args.trace)
        if args.as_json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(render_service_report(report))
        return 0
    try:
        tracer = Tracer.load(args.trace)
    except (OSError, ValueError, KeyError) as err:
        print(f"cannot read trace {args.trace!r}: {err}")
        return 1
    report = build_report(tracer)
    if not report["modules"]:
        print(f"trace {args.trace!r} contains no module spans")
        return 1
    if args.as_json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_report(report))
    return 0
