"""``python -m repro report`` — a paper-style table from a trace file.

Reads a trace written by ``--trace`` (either format) and renders the
Table-II/III-style per-module report: measured wall seconds, modelled
device seconds, and the measured/modelled speedup column, plus the
step-level aggregates (steps, CG iterations, open–close iterations,
contacts) carried on the ``"step"`` summary spans.

::

    python -m repro --model slope --steps 25 --trace trace.json
    python -m repro report trace.json [--json]
"""

from __future__ import annotations

import argparse
import json

from repro.obs.tracer import Tracer
from repro.util.tables import Table
from repro.util.timing import PIPELINE_MODULES


def build_report(tracer: Tracer) -> dict:
    """Aggregate a trace into the report payload (JSON-safe)."""
    summary = tracer.module_summary()
    ordered = [m for m in PIPELINE_MODULES if m in summary]
    ordered += [m for m in sorted(summary) if m not in PIPELINE_MODULES]
    modules = {}
    for name in ordered:
        d = summary[name]
        modules[name] = {
            "spans": d["spans"],
            "wall_s": d["wall_s"],
            "modelled_s": d["device_s"],
            "speedup": (
                d["wall_s"] / d["device_s"] if d["device_s"] > 0.0 else None
            ),
        }
    total_wall = sum(d["wall_s"] for d in summary.values())
    total_dev = sum(d["device_s"] for d in summary.values())
    steps = tracer.step_spans()
    step_totals = {
        "steps": len(steps),
        "cg_iterations": sum(
            int(s.extras.get("cg_iterations", 0)) for s in steps
        ),
        "open_close_iterations": sum(
            int(s.extras.get("open_close_iterations", 0)) for s in steps
        ),
        "max_contacts": max(
            (int(s.extras.get("n_contacts", 0)) for s in steps), default=0
        ),
    }
    return {
        "meta": dict(tracer.meta),
        "modules": modules,
        "total": {
            "wall_s": total_wall,
            "modelled_s": total_dev,
            "speedup": total_wall / total_dev if total_dev > 0.0 else None,
        },
        **step_totals,
    }


def render_report(report: dict) -> str:
    """Text-render a :func:`build_report` payload as the module table."""
    meta = report.get("meta", {})
    title_bits = [
        str(meta[k]) for k in ("engine", "model", "profile") if k in meta
    ]
    title = (
        f"per-module trace report ({', '.join(title_bits)})"
        if title_bits else "per-module trace report"
    )
    table = Table(
        title, ["module", "spans", "measured s", "modelled s", "speedup"]
    )

    def speedup_cell(value):
        return f"{value:.4g}x" if value is not None else "-"

    for name, row in report["modules"].items():
        table.add_row([
            name, row["spans"], row["wall_s"], row["modelled_s"],
            speedup_cell(row["speedup"]),
        ])
    total = report["total"]
    table.add_row([
        "total", sum(r["spans"] for r in report["modules"].values()),
        total["wall_s"], total["modelled_s"], speedup_cell(total["speedup"]),
    ])
    lines = [table.render()]
    lines.append(
        f"steps: {report['steps']}; "
        f"CG iterations: {report['cg_iterations']}; "
        f"open-close iterations: {report['open_close_iterations']}; "
        f"max contacts: {report['max_contacts']}"
    )
    return "\n".join(lines)


def report_main(argv: list[str] | None = None) -> int:
    """The ``report`` subcommand entry point."""
    p = argparse.ArgumentParser(
        prog="python -m repro report",
        description="Render a per-module table from a --trace file.",
    )
    p.add_argument("trace", metavar="TRACE",
                   help="trace file written by --trace (.json or .jsonl)")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit the report as JSON instead of a table")
    args = p.parse_args(argv)
    try:
        tracer = Tracer.load(args.trace)
    except (OSError, ValueError, KeyError) as err:
        print(f"cannot read trace {args.trace!r}: {err}")
        return 1
    report = build_report(tracer)
    if not report["modules"]:
        print(f"trace {args.trace!r} contains no module spans")
        return 1
    if args.as_json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_report(report))
    return 0
