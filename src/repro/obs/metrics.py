"""Counters, gauges, and histograms with a JSON-safe snapshot.

The :class:`MetricsRegistry` is the shared ledger of *countable*
behaviour: contact classes detected (VE/VV1/VV2), contact-transfer
hits/misses, CG iteration distribution, solver-rung escalations,
contract violations, checkpoint rollbacks, and the batch service's
cache hits/misses. Every engine owns one (``engine.metrics``); the
batch worker pool owns a scheduler-side one and rolls each job's
snapshot into the job's ticket record.

Design constraints:

* **cheap** — an increment is a dict lookup and an add; the engines
  increment a handful of counters per accepted step, never per contact;
* **JSON-safe** — :meth:`MetricsRegistry.snapshot` returns pure-Python
  ints/floats/strings so it can be embedded in batch outcomes, cached
  result entries, and ``--json`` CLI output without custom encoders;
* **mergeable** — :func:`merge_snapshots` folds many snapshots into one
  (the scheduler aggregates per-job metrics this way).
"""

from __future__ import annotations

import json
import math

#: Default histogram bucket upper bounds (inclusive), tuned for CG
#: iteration counts (the paper caps PCG at 200) and open–close loops.
DEFAULT_EDGES = (1, 2, 5, 10, 20, 50, 100, 200)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Bucketed distribution with count/sum/min/max.

    ``edges`` are inclusive upper bounds; one overflow bucket catches
    everything above the last edge.
    """

    __slots__ = ("edges", "buckets", "count", "sum", "min", "max")

    def __init__(self, edges: tuple = DEFAULT_EDGES) -> None:
        self.edges = tuple(edges)
        self.buckets = [0] * (len(self.edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, edge in enumerate(self.edges):
            if value <= edge:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def bucket_labels(self) -> list[str]:
        labels = [f"<={edge:g}" for edge in self.edges]
        labels.append(f">{self.edges[-1]:g}")
        return labels


class MetricsRegistry:
    """Get-or-create registry of named counters/gauges/histograms."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter()
        return c

    def inc(self, name: str, n: int | float = 1) -> None:
        """Shorthand: ``registry.counter(name).inc(n)``."""
        self.counter(name).inc(n)

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge()
        return g

    def histogram(self, name: str, edges: tuple = DEFAULT_EDGES) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(edges)
        return h

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Pure-Python dict of everything recorded (JSON-serialisable)."""
        def num(v):
            f = float(v)
            return int(f) if f.is_integer() else f

        hists = {}
        for name, h in sorted(self.histograms.items()):
            hists[name] = {
                "count": int(h.count),
                "sum": num(h.sum),
                "min": num(h.min) if h.count else None,
                "max": num(h.max) if h.count else None,
                "mean": float(h.mean),
                "buckets": {
                    label: int(n)
                    for label, n in zip(h.bucket_labels(), h.buckets)
                },
            }
        return {
            "counters": {
                name: num(c.value) for name, c in sorted(self.counters.items())
            },
            "gauges": {
                name: num(g.value) for name, g in sorted(self.gauges.items())
            },
            "histograms": hists,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Human-readable text rendering of :meth:`snapshot`."""
        return render_snapshot(self.snapshot())


def _bucket_key(label: str) -> float:
    """Numeric sort key for a ``<=N`` / ``>N`` bucket label.

    Bucket dicts lose insertion order on a ``sort_keys=True`` JSON
    round-trip (batch outcomes), so renderers re-sort numerically.
    """
    if label.startswith("<="):
        return float(label[2:])
    if label.startswith(">"):
        return math.inf
    return math.inf


def render_snapshot(snapshot: dict) -> str:
    """Text-render a snapshot dict (shared by CLI surfaces)."""
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(n) for n in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        width = max(len(n) for n in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}}  {gauges[name]:g}")
    for name, h in sorted(snapshot.get("histograms", {}).items()):
        lines.append(
            f"histogram {name}: count={h['count']} mean={h['mean']:.2f} "
            f"min={h['min']} max={h['max']}"
        )
        buckets = h.get("buckets", {})
        peak = max(buckets.values(), default=0)
        for label in sorted(buckets, key=_bucket_key):
            n = buckets[label]
            bar = "#" * (round(30 * n / peak) if peak else 0)
            lines.append(f"  {label:>8}  {n:>8}  {bar}")
    return "\n".join(lines) if lines else "(no metrics recorded)"


def merge_snapshots(*snapshots: dict) -> dict:
    """Fold snapshots into one: counters/buckets add, gauges last-write.

    Histogram ``min``/``max`` combine; ``mean`` is recomputed from the
    merged count and sum. Accepts (and skips) empty dicts so callers
    can fold outcome records that carried no metrics.
    """
    out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for snap in snapshots:
        if not snap:
            continue
        for name, v in snap.get("counters", {}).items():
            out["counters"][name] = out["counters"].get(name, 0) + v
        for name, v in snap.get("gauges", {}).items():
            out["gauges"][name] = v
        for name, h in snap.get("histograms", {}).items():
            into = out["histograms"].get(name)
            if into is None:
                out["histograms"][name] = {
                    "count": h["count"], "sum": h["sum"],
                    "min": h["min"], "max": h["max"], "mean": h["mean"],
                    "buckets": dict(h["buckets"]),
                }
                continue
            into["count"] += h["count"]
            into["sum"] += h["sum"]
            if h["min"] is not None and (
                into["min"] is None or h["min"] < into["min"]
            ):
                into["min"] = h["min"]
            if h["max"] is not None and (
                into["max"] is None or h["max"] > into["max"]
            ):
                into["max"] = h["max"]
            into["mean"] = into["sum"] / into["count"] if into["count"] else 0.0
            for label, n in h["buckets"].items():
                into["buckets"][label] = into["buckets"].get(label, 0) + n
    return out
