"""Structured tracing: per-step, per-module span records.

A :class:`Tracer` collects :class:`SpanRecord` rows — one per pipeline
stage per step (plus one ``"step"`` span per accepted step carrying the
solver/contact diagnostics). Each span records both the measured wall
seconds and the virtual-device *modelled* seconds charged inside it, so
one trace answers both of the paper's questions: where does the wall
clock go, and where would the device clock go.

Two export formats:

* **JSON-lines** (``*.jsonl``) — one ``{"type": "span", ...}`` object
  per line after a ``{"type": "meta", ...}`` header; trivially
  greppable and streamable;
* **Chrome trace-event JSON** (anything else, conventionally
  ``*.json``) — loads directly in ``chrome://tracing`` or
  `Perfetto <https://ui.perfetto.dev>`_. Wall-clock spans render on one
  track and the modelled device time on a second track (a synthetic
  clock accumulated from the modelled seconds), so the two timelines
  can be compared visually.

Overhead discipline: the engines consult ``tracer.enabled`` *before*
doing any per-span work, and the shared :data:`NULL_TRACER` singleton
is what an un-instrumented run carries — a disabled tracer never
allocates a record (pinned by ``tests/obs/test_overhead.py``).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator


def _json_safe(value):
    """Coerce numpy scalars (and anything with ``.item()``) to Python."""
    item = getattr(value, "item", None)
    if item is not None and not isinstance(value, (str, bytes)):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return value


@dataclass
class SpanRecord:
    """One traced interval.

    Attributes
    ----------
    name:
        Pipeline module name (one of
        :data:`repro.util.timing.PIPELINE_MODULES`) or ``"step"`` for
        the per-accepted-step summary span.
    step:
        The step index the span belongs to (-1 when not step-scoped).
    start:
        Seconds since the tracer's epoch at which the span began.
    wall_s:
        Measured wall-clock duration in seconds.
    device_s:
        Modelled virtual-device seconds charged during the span.
    extras:
        Free-form diagnostics (CG iterations, contact counts,
        open–close iterations, ...), JSON-safe.
    """

    name: str
    step: int
    start: float
    wall_s: float
    device_s: float = 0.0
    extras: dict = field(default_factory=dict)


class Tracer:
    """Collects spans; export with :meth:`write`, read back with :meth:`load`."""

    __slots__ = ("enabled", "spans", "meta", "_epoch")

    def __init__(self, enabled: bool = True, meta: dict | None = None) -> None:
        self.enabled = enabled
        self.spans: list[SpanRecord] = []
        self.meta: dict = dict(meta or {})
        self._epoch = time.perf_counter()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Seconds since the tracer's epoch (the span ``start`` clock)."""
        return time.perf_counter() - self._epoch

    def add(
        self,
        name: str,
        *,
        step: int = -1,
        start: float,
        wall_s: float,
        device_s: float = 0.0,
        **extras,
    ) -> None:
        """Record one finished span (no-op when disabled)."""
        if not self.enabled:
            return
        self.spans.append(
            SpanRecord(
                name=name,
                step=int(step),
                start=float(start),
                wall_s=float(wall_s),
                device_s=float(device_s),
                extras={k: _json_safe(v) for k, v in extras.items()},
            )
        )

    @contextmanager
    def span(
        self, name: str, *, step: int = -1, device=None, **extras
    ) -> Iterator[None]:
        """Context manager measuring a block into one span.

        With ``device`` (a :class:`~repro.gpu.kernel.VirtualDevice`),
        the modelled seconds of every kernel launched inside the block
        are charged to the span's ``device_s``.
        """
        if not self.enabled:
            yield
            return
        n0 = len(device.records) if device is not None else 0
        start = self.now()
        t0 = time.perf_counter()
        try:
            yield
        finally:
            wall = time.perf_counter() - t0
            device_s = (
                sum(r.seconds for r in device.records[n0:])
                if device is not None
                else 0.0
            )
            self.add(
                name, step=step, start=start, wall_s=wall,
                device_s=device_s, **extras,
            )

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def module_summary(self) -> dict[str, dict]:
        """Per-module totals: ``{name: {spans, wall_s, device_s}}``.

        ``"step"`` summary spans are excluded — they wrap the module
        spans and would double-count.
        """
        out: dict[str, dict] = {}
        for s in self.spans:
            if s.name == "step":
                continue
            d = out.setdefault(
                s.name, {"spans": 0, "wall_s": 0.0, "device_s": 0.0}
            )
            d["spans"] += 1
            d["wall_s"] += s.wall_s
            d["device_s"] += s.device_s
        return out

    def step_spans(self) -> list[SpanRecord]:
        """The per-accepted-step summary spans, in order."""
        return [s for s in self.spans if s.name == "step"]

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def write(self, path: str | Path) -> Path:
        """Write the trace; ``*.jsonl`` → JSON-lines, else trace-event JSON."""
        path = Path(path)
        if path.suffix == ".jsonl":
            return self.to_jsonl(path)
        return self.to_chrome(path)

    def to_jsonl(self, path: str | Path) -> Path:
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as fh:
            fh.write(json.dumps(
                {"type": "meta", **self.meta}, default=_json_safe
            ) + "\n")
            for s in self.spans:
                fh.write(json.dumps(
                    {
                        "type": "span",
                        "name": s.name,
                        "step": s.step,
                        "start": s.start,
                        "wall_s": s.wall_s,
                        "device_s": s.device_s,
                        "extras": s.extras,
                    },
                    default=_json_safe,
                ) + "\n")
        return path

    def to_chrome_dict(self) -> dict:
        """The trace as a ``chrome://tracing`` / Perfetto event dict.

        Wall-clock spans go on ``tid 1``; the modelled device time is
        laid out back-to-back on ``tid 2`` as a synthetic clock, so the
        measured and modelled timelines sit one above the other.
        """
        events: list[dict] = [
            {"name": "process_name", "ph": "M", "pid": 1,
             "args": {"name": "repro pipeline"}},
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
             "args": {"name": "wall clock"}},
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": 2,
             "args": {"name": "modelled device"}},
        ]
        device_clock = 0.0
        for s in self.spans:
            args = {"step": s.step, "device_s": s.device_s}
            args.update(s.extras)
            events.append({
                "name": s.name,
                "cat": "step" if s.name == "step" else "module",
                "ph": "X", "pid": 1, "tid": 1,
                "ts": round(s.start * 1e6, 3),
                "dur": round(s.wall_s * 1e6, 3),
                "args": args,
            })
            if s.name != "step" and s.device_s > 0.0:
                events.append({
                    "name": s.name, "cat": "device",
                    "ph": "X", "pid": 1, "tid": 2,
                    "ts": round(device_clock * 1e6, 3),
                    "dur": round(s.device_s * 1e6, 3),
                    "args": {"step": s.step},
                })
                device_clock += s.device_s
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": dict(self.meta),
        }

    def to_chrome(self, path: str | Path) -> Path:
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(self.to_chrome_dict(), fh, default=_json_safe)
        return path

    # ------------------------------------------------------------------
    # import (the `report` subcommand reads traces back)
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str | Path) -> "Tracer":
        """Read a trace written by :meth:`write` (either format)."""
        path = Path(path)
        text = path.read_text()
        first = text.lstrip()[:1]
        if first == "{" and '"traceEvents"' in text[:4096]:
            return cls._from_chrome(json.loads(text))
        return cls._from_jsonl(text)

    @classmethod
    def _from_jsonl(cls, text: str) -> "Tracer":
        tracer = cls()
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            kind = obj.get("type")
            if kind == "meta":
                tracer.meta = {k: v for k, v in obj.items() if k != "type"}
            elif kind == "span":
                tracer.spans.append(SpanRecord(
                    name=obj["name"],
                    step=int(obj.get("step", -1)),
                    start=float(obj.get("start", 0.0)),
                    wall_s=float(obj.get("wall_s", 0.0)),
                    device_s=float(obj.get("device_s", 0.0)),
                    extras=dict(obj.get("extras", {})),
                ))
            else:
                raise ValueError(f"unrecognised trace line type {kind!r}")
        return tracer

    @classmethod
    def _from_chrome(cls, obj: dict) -> "Tracer":
        tracer = cls()
        tracer.meta = dict(obj.get("otherData", {}))
        for ev in obj.get("traceEvents", []):
            # only the wall-clock track carries the authoritative spans;
            # tid 2 re-renders the same modelled time on a synthetic clock
            if ev.get("ph") != "X" or ev.get("tid") != 1:
                continue
            args = dict(ev.get("args", {}))
            step = int(args.pop("step", -1))
            device_s = float(args.pop("device_s", 0.0))
            tracer.spans.append(SpanRecord(
                name=ev["name"],
                step=step,
                start=float(ev.get("ts", 0.0)) / 1e6,
                wall_s=float(ev.get("dur", 0.0)) / 1e6,
                device_s=device_s,
                extras=args,
            ))
        return tracer


#: The shared disabled tracer un-instrumented runs carry: one allocation
#: for the whole process, every hook reduced to an attribute check.
NULL_TRACER = Tracer(enabled=False)
