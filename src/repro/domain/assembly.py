"""Per-domain submatrix extraction from a global :class:`BlockMatrix`.

Assembly stays global (bit-identical to the serial engine by
construction); this module *splits* the assembled matrix into one
:class:`DomainMatrix` per domain:

* the diagonal blocks of the owned rows;
* the **up phase** — every stored upper entry whose row is owned, kept
  in the global (row, col) sort order, slice-packed exactly like the
  HSBCSR layout;
* the **low phase** — every stored upper entry whose column is owned
  (its transpose contributes to an owned row), with the (col, row)
  gather permutation of the HSBCSR SpMV;
* a local owned x owned :class:`BlockMatrix` plus an extended
  (owned + ghost) one — the operands of the domain-decomposed
  preconditioners (block-Jacobi across domains, overlapping additive
  Schwarz).

Because each phase's entries are an order-preserving subset of the
global HSBCSR traversal and the accumulation order (up, low, diagonal)
is identical, ``domain_spmv`` reproduces
:func:`repro.spmv.hsbcsr.hsbcsr_spmv` bit-for-bit on the owned rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.assembly.global_matrix import BS, BlockMatrix, _canonical_offdiag
from repro.domain.halo import DomainMap, ExchangePlan
from repro.gpu.counters import KernelCounters
from repro.gpu.memory import coalesced_transactions
from repro.primitives.scatter import segment_sum
from repro.gpu.warp import WARP_SIZE


@dataclass(frozen=True)
class DomainMatrix:
    """One domain's operands for the distributed SpMV and solves.

    Attributes
    ----------
    domain:
        Domain index (scalar).
    n_local, n_ext:
        Owned / owned+ghost block counts (scalars).
    diag_v:
        ``(6, n_local, 6)`` slice view of the owned diagonal blocks.
    up_v:
        ``(6, m_up, 6)`` slices of entries with owned row, global
        (row, col) order.
    up_slots:
        ``(m_up,)`` extended-vector slots of each entry's column.
    up_starts, up_targets:
        ``(k_up,)`` reduceat starts / destination local rows.
    low_v:
        ``(6, m_low, 6)`` slices of entries with owned column, storage
        order.
    low_slots:
        ``(m_low,)`` extended-vector slots of each entry's row.
    low_perm:
        ``(m_low,)`` gather permutation into (col, row) order.
    low_starts, low_targets:
        ``(k_low,)`` reduceat starts / destination local rows.
    local:
        Owned x owned coupling as a local-index :class:`BlockMatrix`.
    extended:
        Owned+ghost coupling (slot indices) — the overlapping-Schwarz
        operand.
    """

    domain: int
    n_local: int
    n_ext: int
    diag_v: np.ndarray
    up_v: np.ndarray
    up_slots: np.ndarray
    up_starts: np.ndarray
    up_targets: np.ndarray
    low_v: np.ndarray
    low_slots: np.ndarray
    low_perm: np.ndarray
    low_starts: np.ndarray
    low_targets: np.ndarray
    local: BlockMatrix
    extended: BlockMatrix


def _segment_starts(
    targets_local: np.ndarray, n_local: int
) -> tuple[np.ndarray, np.ndarray]:
    """Reduceat ``(k,)`` starts and nonempty rows for sorted targets."""
    indptr = np.zeros(n_local + 1, dtype=np.int64)
    np.cumsum(np.bincount(targets_local, minlength=n_local), out=indptr[1:])
    nonempty = np.flatnonzero(np.diff(indptr) > 0)
    return indptr[:-1][nonempty], nonempty


def _submatrix(
    n: int,
    diag: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    blocks: np.ndarray,
) -> BlockMatrix:
    """Canonicalised :class:`BlockMatrix` from relabelled ``(m,)`` entries."""
    strict = rows != cols
    r, c, b = _canonical_offdiag(rows[strict], cols[strict], blocks[strict])
    order = np.argsort(r * n + c, kind="stable")
    return BlockMatrix(
        n=n, diag=diag.copy(), rows=r[order], cols=c[order],
        blocks=b[order],
    )


def split_matrix(
    matrix: BlockMatrix, dmap: DomainMap, plan: ExchangePlan
) -> list:
    """Split a global matrix into per-domain operands (list, n_domains).

    Each phase keeps its entries as an order-preserving subset of the
    global HSBCSR traversal, so the distributed SpMV is bit-identical
    on owned rows.
    """
    rows, cols = matrix.rows, matrix.cols
    row_lab = dmap.labels[rows] if rows.size else rows
    col_lab = dmap.labels[cols] if cols.size else cols
    out = []
    for d in range(dmap.n_domains):
        own = dmap.owned[d]
        ghost = plan.ghosts[d]
        slot = plan.slots[d]
        n_local = own.size
        n_ext = n_local + ghost.size

        up_sel = np.flatnonzero(row_lab == d)
        up_blocks = matrix.blocks[up_sel]
        up_rows = dmap.local[rows[up_sel]]
        up_slots = slot[cols[up_sel]]
        up_starts, up_targets = _segment_starts(up_rows, n_local)

        low_sel = np.flatnonzero(col_lab == d)
        low_blocks = matrix.blocks[low_sel]
        low_slots = slot[rows[low_sel]]
        low_cols = dmap.local[cols[low_sel]]
        low_perm = np.lexsort((rows[low_sel], cols[low_sel]))
        low_starts, low_targets = _segment_starts(low_cols, n_local)

        both = np.flatnonzero((row_lab == d) & (col_lab == d))
        local = BlockMatrix(
            n=n_local,
            diag=matrix.diag[own],
            rows=dmap.local[rows[both]],
            cols=dmap.local[cols[both]],
            blocks=matrix.blocks[both],
        )
        halo_ids = np.concatenate([own, ghost])
        ext_sel = np.flatnonzero((slot[rows] >= 0) & (slot[cols] >= 0)) \
            if rows.size else rows
        extended = _submatrix(
            n_ext,
            matrix.diag[halo_ids],
            slot[rows[ext_sel]],
            slot[cols[ext_sel]],
            matrix.blocks[ext_sel],
        )
        out.append(DomainMatrix(
            domain=d,
            n_local=n_local,
            n_ext=n_ext,
            diag_v=matrix.diag[own].transpose(1, 0, 2).copy(),
            up_v=up_blocks.transpose(1, 0, 2).copy(),
            up_slots=up_slots,
            up_starts=up_starts,
            up_targets=up_targets,
            low_v=low_blocks.transpose(1, 0, 2).copy(),
            low_slots=low_slots,
            low_perm=low_perm,
            low_starts=low_starts,
            low_targets=low_targets,
            local=local,
            extended=extended,
        ))
    return out


def domain_spmv(dm: DomainMatrix, x_ext: np.ndarray, device=None) -> np.ndarray:
    """Owned rows of ``A @ x``: ``(n_local*6,)`` from ``(n_ext*6,)``.

    The einsum contractions, gather permutation, segment reductions and
    accumulation order (up, low, diagonal) replicate
    :func:`repro.spmv.hsbcsr.hsbcsr_spmv` exactly, so for refreshed
    ghosts the result equals the global SpMV restricted to owned rows,
    bit for bit.
    """
    xb = x_ext.reshape(dm.n_ext, BS)
    y = np.zeros((dm.n_local, BS))

    if dm.up_slots.size:
        up_res = np.einsum("skc,kc->ks", dm.up_v, xb[dm.up_slots])
        if dm.up_targets.size:
            y[dm.up_targets] += segment_sum(up_res, dm.up_starts, axis=0)
    if dm.low_slots.size:
        low_res = np.einsum("skc,ks->kc", dm.low_v, xb[dm.low_slots])
        gathered = low_res[dm.low_perm]
        if dm.low_targets.size:
            y[dm.low_targets] += segment_sum(
                gathered, dm.low_starts, axis=0
            )
    y += np.einsum("snc,nc->ns", dm.diag_v, xb[: dm.n_local])

    if device is not None:
        _record_cost(dm, device)
    return y.reshape(-1)


def _record_cost(dm: DomainMatrix, device) -> None:
    """Meter the per-domain SpMV with HSBCSR-style launches."""
    m = dm.up_slots.size + dm.low_slots.size
    n = dm.n_local
    if m:
        device.launch(
            "domain_spmv_offdiag",
            KernelCounters(
                flops=2.0 * m * BS * BS,
                global_bytes_read=m * BS * BS * 8.0 + m * 8.0,
                global_bytes_written=n * BS * 8.0,
                global_txn_read=coalesced_transactions(m * BS * BS, 8)
                + coalesced_transactions(m, 8),
                global_txn_written=coalesced_transactions(n * BS, 8),
                texture_bytes=2.0 * m * BS * 8.0,
                shared_accesses=2.0 * m * BS,
                threads=m * BS,
                warps=max(1, m * BS // WARP_SIZE),
            ),
            module="equation_solving",
        )
    device.launch(
        "domain_spmv_diag",
        KernelCounters(
            flops=2.0 * n * BS * BS,
            global_bytes_read=n * BS * BS * 8.0 + n * BS * 8.0,
            global_bytes_written=n * BS * 8.0,
            global_txn_read=coalesced_transactions(n * BS * BS, 8)
            + coalesced_transactions(n * BS, 8),
            global_txn_written=coalesced_transactions(n * BS, 8),
            texture_bytes=float(n * BS * 8),
            threads=n * BS,
            warps=max(1, n * BS // WARP_SIZE),
        ),
        module="equation_solving",
    )
