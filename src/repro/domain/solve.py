"""Distributed preconditioned CG across domains.

:func:`distributed_pcg` mirrors :func:`repro.solvers.cg.pcg` statement
for statement — same early returns, same breakdown test, same residual
series — with three distributed substitutions:

* the SpMV is the per-domain :func:`repro.domain.assembly.domain_spmv`
  preceded by one ghost (halo) exchange, its owned rows gathered back
  in canonical block order;
* every scalar reduction (the two CG dot products and the residual
  norm) is computed as an *ordered* reduction over the canonical
  global vector — the deterministic all-reduce — and metered as a
  latency-bound ``pcie_allreduce`` on every device;
* vector updates are metered per domain at their local lengths.

Because the canonical-order reductions see bit-identical operand
arrays and the distributed SpMV is bit-identical on owned rows, the
whole iteration — and therefore the returned solution, iteration
count, and residual series — equals the single-device solve exactly
for the block-local preconditioners (``none``/``jacobi``/``bj``) and
for the gathered cross-domain ones (``ssor``/``ilu``/``neumann``).

Two genuinely domain-decomposed preconditioners are additionally
available for iteration-count studies (they change the iteration, so
they are opt-in, never the bit-identical default):

``domain_bj``
    Block-Jacobi across domains — exact solve of each domain's
    owned x owned submatrix, no communication in the application.
``schwarz``
    Overlapping additive Schwarz (restricted variant) — exact solve of
    each domain's owned+ghost extended submatrix, one extra halo
    exchange per application.
"""

from __future__ import annotations

import numpy as np

from repro.assembly.global_matrix import BS, BlockMatrix
from repro.domain.assembly import domain_spmv
from repro.domain.halo import HaloExchanger
from repro.solvers.cg import CGResult, _observe, _vector_ops_counters
from repro.solvers.preconditioners import make_preconditioner
from repro.util.validation import check_array

#: Preconditioners whose application is block-local, hence identical
#: per domain: distributing them costs no communication.
BLOCK_LOCAL = ("none", "jacobi", "bj")

#: The domain-decomposed (non-bit-identical, opt-in) preconditioners.
DOMAIN_NAMES = ("domain_bj", "schwarz")


def _split(exchanger: HaloExchanger, x: np.ndarray) -> list:
    """Resident per-domain owned segments of ``(n_dof,)`` (no transfer)."""
    return [x[idx] for idx in exchanger._dof]


def _assemble(exchanger: HaloExchanger, segments: list) -> np.ndarray:
    """Canonical ``(n_dof,)`` vector from resident segments (no transfer)."""
    out = np.empty(exchanger.dmap.labels.size * BS)
    for d in range(exchanger.dmap.n_domains):
        out[exchanger._dof[d]] = segments[d]
    return out


def _dist_spmv(
    domains: list, exchanger: HaloExchanger, v: np.ndarray
) -> np.ndarray:
    """Distributed ``A @ v``: ``(n_dof,)``, one halo exchange."""
    extended = exchanger.exchange(_split(exchanger, v))
    return _assemble(exchanger, [
        domain_spmv(dm, extended[dm.domain], exchanger.devices[dm.domain])
        for dm in domains
    ])


class DistributedPreconditioner:
    """A single-device preconditioner running inside the distributed solve.

    Block-local bases (``none``/``jacobi``/``bj``) apply independently
    per domain — numerically unchanged, metered at local lengths. Cross-
    domain bases (``ssor``/``ilu``/``neumann``) are applied gathered:
    the canonical vector is collected, the base applied once, and the
    result redistributed — metered as a full gather+scatter per
    application. Either way the returned values are bit-identical to
    the base's single-device application.
    """

    def __init__(self, base, exchanger: HaloExchanger, local: bool) -> None:
        self.base = base
        self.exchanger = exchanger
        self.local = local
        self.name = getattr(base, "name", "?")

    def apply(self, r: np.ndarray, device=None) -> np.ndarray:
        """Apply to ``(n_dof,)`` and return the same shape."""
        z = self.base.apply(r, None)
        ex = self.exchanger
        for d in range(ex.dmap.n_domains):
            n_loc = ex.dmap.owned[d].size * BS
            if self.local:
                ex.devices[d].launch(
                    "precond_apply_local",
                    _vector_ops_counters(n_loc, 2),
                    module="equation_solving",
                )
            else:
                ex._launch(d, "pcie_precond_gather", float(n_loc * 8))
                ex._launch(d, "pcie_precond_scatter", float(n_loc * 8))
        return z


class DomainBlockJacobi:
    """Block-Jacobi across domains: exact owned x owned solves.

    Applies ``z_d = A_dd^{-1} r_d`` independently per domain on the
    ``(n_dof,)`` residual — no communication, but the dropped
    inter-domain coupling costs CG iterations as the cut grows.
    """

    name = "domain_bj"

    def __init__(self, domains: list, exchanger: HaloExchanger) -> None:
        self.exchanger = exchanger
        self._solve = [_factorize(dm.local) for dm in domains]

    def apply(self, r: np.ndarray, device=None) -> np.ndarray:
        """Apply to ``(n_dof,)`` and return the same shape."""
        ex = self.exchanger
        z = np.empty_like(r)
        for d in range(ex.dmap.n_domains):
            idx = ex._dof[d]
            z[idx] = self._solve[d](r[idx])
            ex.devices[d].launch(
                "domain_bj_solve",
                _vector_ops_counters(idx.size, 6),
                module="equation_solving",
            )
        return z


class AdditiveSchwarz:
    """Restricted overlapping additive Schwarz across domains.

    Each application refreshes the ghost halo of the residual (one
    metered exchange), solves every domain's owned+ghost extended
    submatrix exactly, and keeps the owned part (the restricted
    variant, which needs no weighting of the overlap).
    """

    name = "schwarz"

    def __init__(self, domains: list, exchanger: HaloExchanger) -> None:
        self.exchanger = exchanger
        self._solve = [_factorize(dm.extended) for dm in domains]
        self._n_local = [dm.n_local for dm in domains]

    def apply(self, r: np.ndarray, device=None) -> np.ndarray:
        """Apply to ``(n_dof,)`` and return the same shape."""
        ex = self.exchanger
        extended = ex.exchange(_split(ex, r))
        z = np.empty_like(r)
        for d in range(ex.dmap.n_domains):
            z_ext = self._solve[d](extended[d])
            z[ex._dof[d]] = z_ext[: self._n_local[d] * BS]
            ex.devices[d].launch(
                "schwarz_solve",
                _vector_ops_counters(extended[d].size, 8),
                module="equation_solving",
            )
        return z


def _factorize(a: BlockMatrix):
    """Exact solver ``f(rhs) -> x`` for one ``(6n x 6n)`` submatrix."""
    if a.n == 0:
        return lambda rhs: rhs.copy()
    from scipy.sparse.linalg import splu

    lu = splu(a.to_scipy_csr().tocsc())
    return lu.solve


def make_domain_preconditioner(
    name: str,
    matrix: BlockMatrix,
    domains: list,
    exchanger: HaloExchanger,
):
    """Preconditioner for the distributed solve, by ladder name.

    Returns an object with a scalar-free ``apply((n_dof,)) -> (n_dof,)``
    method. Single-device names wrap the registry construction
    (bit-identical application); :data:`DOMAIN_NAMES` build the
    domain-decomposed variants.
    """
    if name == "domain_bj":
        return DomainBlockJacobi(domains, exchanger)
    if name == "schwarz":
        return AdditiveSchwarz(domains, exchanger)
    base = make_preconditioner(name, matrix, None)
    return DistributedPreconditioner(base, exchanger, name in BLOCK_LOCAL)


def distributed_pcg(
    domains: list,
    exchanger: HaloExchanger,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    preconditioner=None,
    *,
    tol: float = 1e-8,
    max_iterations: int = 200,
    metrics=None,
) -> CGResult:
    """Solve ``A x = b`` by distributed PCG; ``b`` has shape ``(6 n,)``.

    Mirrors :func:`repro.solvers.cg.pcg` exactly (see module
    docstring); ``domains`` are the :class:`~repro.domain.assembly
    .DomainMatrix` splits of ``A`` and ``exchanger`` the matching
    :class:`~repro.domain.halo.HaloExchanger`.
    """
    n = exchanger.dmap.labels.size * BS
    b = check_array("b", b, dtype=np.float64, shape=(n,))
    if tol <= 0:
        raise ValueError(f"tol must be > 0, got {tol}")
    if max_iterations < 1:
        raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
    m = preconditioner
    if m is None:
        from repro.solvers.preconditioners import IdentityPreconditioner

        m = DistributedPreconditioner(
            IdentityPreconditioner(), exchanger, True
        )
    local_dof = [dm.n_local * BS for dm in domains]

    x = np.zeros(n) if x0 is None else check_array("x0", x0, dtype=np.float64,
                                                   shape=(n,)).copy()
    # initial distribution of the operands to the domain devices
    exchanger.scatter(b)
    exchanger.scatter(x)
    # CG's scalar coefficients live on the host by design: one word per
    # ordered (deterministic all-reduce) reduction per iteration
    b_norm = float(np.linalg.norm(b))  # lint: sync-ok[cg-convergence] -- one ordered all-reduce scalar per iteration
    exchanger.allreduce()
    if b_norm == 0.0:
        return _observe(metrics, CGResult(
            x=exchanger.gather(_split(exchanger, np.zeros(n)), solution=True),
            iterations=0, converged=True,
        ))

    r = b - _dist_spmv(domains, exchanger, x)
    residuals: list[float] = []
    rel = float(np.linalg.norm(r)) / b_norm  # lint: sync-ok[cg-convergence] -- one ordered all-reduce scalar per iteration
    exchanger.allreduce()
    if rel < tol:
        return _observe(metrics, CGResult(
            x=exchanger.gather(_split(exchanger, x), solution=True),
            iterations=0, converged=True, residuals=[],
        ))

    z = m.apply(r)
    p = z.copy()
    rz = float(r @ z)  # lint: sync-ok[cg-convergence] -- one ordered all-reduce scalar per iteration
    exchanger.allreduce()
    for it in range(1, max_iterations + 1):
        ap = _dist_spmv(domains, exchanger, p)
        pap = float(p @ ap)  # lint: sync-ok[cg-convergence] -- one ordered all-reduce scalar per iteration
        exchanger.allreduce()
        if pap <= 0.0:
            # matrix not SPD along p (defensive): report breakdown
            return _observe(metrics, CGResult(
                x=exchanger.gather(_split(exchanger, x), solution=True),
                iterations=it, converged=False, residuals=residuals,
                breakdown=True,
            ))
        alpha = rz / pap
        x += alpha * p
        r -= alpha * ap
        for d in range(exchanger.dmap.n_domains):
            exchanger.devices[d].launch(
                "cg_vector_ops", _vector_ops_counters(local_dof[d], 5),
                module="equation_solving",
            )
        rel = float(np.linalg.norm(r)) / b_norm  # lint: sync-ok[cg-convergence] -- one ordered all-reduce scalar per iteration
        exchanger.allreduce()
        residuals.append(rel)
        if rel < tol:
            return _observe(metrics, CGResult(
                x=exchanger.gather(_split(exchanger, x), solution=True),
                iterations=it, converged=True, residuals=residuals,
            ))
        z = m.apply(r)
        rz_new = float(r @ z)  # lint: sync-ok[cg-convergence] -- one ordered all-reduce scalar per iteration
        exchanger.allreduce()
        beta = rz_new / rz
        p = z + beta * p
        rz = rz_new
    return _observe(metrics, CGResult(
        x=exchanger.gather(_split(exchanger, x), solution=True),
        iterations=max_iterations, converged=False, residuals=residuals,
    ))
