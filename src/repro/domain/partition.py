"""Partition blocks across domains via the contact topology.

The single source of truth for block-to-domain assignment: both the
analytic projection (:func:`repro.gpu.multi.predict_multi_gpu_time`)
and the executable path (:class:`repro.engine.domain_engine
.DomainEngine`) call :func:`partition_blocks` here, so the projection
and the execution can never disagree on the partition.

Two methods are available:

``graph``
    Spectral (Fiedler) ordering of the contact-topology graph — blocks
    are sorted by the second Laplacian eigenvector and split into
    equal-count chunks, which minimises cut edges for mesh-like
    topologies far better than a coordinate sweep. The graph comes
    from a detected contact table when one is supplied (reusing
    :func:`repro.analysis.topology.contact_graph`), else from the
    broad-phase AABB adjacency.
``stripe``
    Equal-count spatial stripes along x (the historic
    ``gpu/multi.py`` logic) — the fallback when the contact graph is
    disconnected (isolated blocks would make the Fiedler vector
    meaningless per component) or too large for the dense eigensolve.

``method="auto"`` (the default) picks ``graph`` when the graph is
connected and small enough, else ``stripe``. Everything here is
host-side partition *planning*, executed once per run — the per-step
kernel work stays on the virtual devices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.blocks import BlockSystem

#: Largest block count for which the dense spectral ordering is used;
#: beyond this, ``auto`` falls back to spatial stripes.
FIEDLER_MAX_BLOCKS = 3000

#: Recognised values of the ``method`` argument.
METHODS = ("auto", "graph", "stripe")


@dataclass(frozen=True)
class PartitionStats:
    """Quality statistics of a block-to-domain partition.

    Attributes
    ----------
    counts:
        Blocks per domain, shape ``(n_domains,)``.
    cut_fraction:
        Fraction of contact-adjacent block pairs that cross a domain
        boundary (ghost-contact overhead).
    imbalance:
        ``max(counts) / mean(counts)``.
    """

    counts: np.ndarray
    cut_fraction: float
    imbalance: float


def adjacency_pairs(
    system: BlockSystem, *, margin: float = 0.0, contacts=None
) -> tuple[np.ndarray, np.ndarray]:
    """Contact-topology edges as two ``(p,)`` block-index arrays.

    With a detected contact table the edges come from
    :func:`repro.analysis.topology.contact_graph`; otherwise from the
    broad-phase AABB overlap test widened by ``margin`` (scalar).
    """
    if contacts is not None and contacts.m:
        from repro.analysis.topology import contact_graph

        g = contact_graph(system, contacts)
        edges = np.asarray(list(g.edges), dtype=np.int64).reshape(-1, 2)
        return edges[:, 0], edges[:, 1]
    from repro.contact.broad_phase import broad_phase_pairs

    return broad_phase_pairs(system.aabbs, margin or 0.0)


def _is_connected(n: int, i: np.ndarray, j: np.ndarray) -> bool:
    """Whether the ``n``-node graph with edges ``(i, j)`` is connected.

    Scalar result; uses the sparse union-find in scipy's csgraph.
    """
    if n <= 1:
        return True
    if i.size == 0:
        return False
    from scipy.sparse import coo_matrix
    from scipy.sparse.csgraph import connected_components

    adj = coo_matrix(
        (np.ones(i.size, dtype=np.float64), (i, j)), shape=(n, n)
    )
    n_components, _ = connected_components(adj, directed=False)
    return bool(n_components == 1)  # lint: host-ok[DDA002] -- scalar component count, host-side planning


def _fiedler_order(
    n: int, i: np.ndarray, j: np.ndarray, x: np.ndarray
) -> np.ndarray:
    """Spectral ordering of a connected graph: ``(n,)`` permutation.

    Sorts nodes by the Fiedler vector (second eigenvector of the graph
    Laplacian), tie-broken by the x coordinate then node index so the
    ordering is fully deterministic. Dense ``eigh`` — callers gate on
    :data:`FIEDLER_MAX_BLOCKS`.
    """
    if n < 2:
        return np.arange(n, dtype=np.int64)
    weights = np.zeros((n, n), dtype=np.float64)
    weights[i, j] = 1.0
    weights[j, i] = 1.0
    degree = weights.sum(axis=1)
    laplacian = np.diag(degree) - weights
    _, vecs = np.linalg.eigh(laplacian)
    fiedler = vecs[:, 1]
    # deterministic sign: the largest-magnitude entry is made positive
    k = np.argmax(np.abs(fiedler))
    fiedler = fiedler * np.where(fiedler[k] >= 0.0, 1.0, -1.0)
    return np.lexsort((np.arange(n, dtype=np.int64), x, fiedler))


def _labels_from_order(order: np.ndarray, n_domains: int) -> np.ndarray:
    """Equal-count chunk labels: ``(n_blocks,)`` int64 from an order."""
    out = np.empty(order.size, dtype=np.int64)
    for d, chunk in enumerate(np.array_split(order, n_domains)):
        out[chunk] = d
    return out


def partition_stats(
    labels: np.ndarray,
    n_domains: int,
    i: np.ndarray,
    j: np.ndarray,
) -> PartitionStats:
    """Quality statistics (scalar fields) of ``(n_blocks,)`` labels.

    ``i``/``j`` are the ``(p,)`` contact-adjacency edges the cut is
    measured over.
    """
    counts = np.bincount(labels, minlength=n_domains)
    # host-side partition-planning statistics, computed once per run
    if i.size:
        cut = float(np.count_nonzero(labels[i] != labels[j])) / i.size  # lint: sync-ok[partition-stats] -- scalar partition statistic
    else:
        cut = 0.0
    imbalance = float(counts.max()) / max(1.0, float(counts.mean()))  # lint: sync-ok[partition-stats] -- scalar partition statistic
    return PartitionStats(counts, cut, imbalance)


def partition_blocks(
    system: BlockSystem,
    n_domains: int,
    *,
    margin: float = 0.0,
    method: str = "auto",
    contacts=None,
) -> tuple[np.ndarray, PartitionStats]:
    """Partition blocks across ``n_domains`` devices.

    Returns the ``(n_blocks,)`` int64 domain labels and the
    :class:`PartitionStats`. Deterministic for a fixed system: the
    spectral path tie-breaks by coordinate and index, the stripe path
    is a stable coordinate sort.
    """
    if n_domains < 1:
        raise ValueError(f"n_domains must be >= 1, got {n_domains}")
    if method not in METHODS:
        raise ValueError(f"method must be one of {METHODS}, got {method!r}")
    n = system.n_blocks
    x = system.centroids[:, 0]
    i, j = adjacency_pairs(system, margin=margin, contacts=contacts)
    chosen = method
    if method == "auto":
        usable = (
            n_domains > 1
            and n <= FIEDLER_MAX_BLOCKS
            and _is_connected(n, i, j)
        )
        chosen = "graph" if usable else "stripe"
    if chosen == "graph":
        order = _fiedler_order(n, i, j, x)
    else:
        order = np.argsort(x, kind="stable")
    labels = _labels_from_order(order, n_domains)
    return labels, partition_stats(labels, n_domains, i, j)
