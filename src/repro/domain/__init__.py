"""Executable multi-device domain decomposition.

Turns the analytic multi-GPU projection of :mod:`repro.gpu.multi` into
a runnable path: :mod:`repro.domain.partition` splits blocks across
``n_domains`` virtual devices with a graph partition over the contact
topology; :mod:`repro.domain.halo` builds ownership maps, ghost lists
and the metered halo-exchange step; :mod:`repro.domain.assembly`
extracts per-domain submatrices (local block matrix + boundary coupling
entries) from the globally assembled :class:`~repro.assembly
.global_matrix.BlockMatrix`; and :mod:`repro.domain.solve` runs a
distributed preconditioned CG (all-reduced dot products, one ghost
exchange per iteration) that is bit-identical to the single-device
:func:`repro.solvers.cg.pcg` for the block-local preconditioners.

The engine-facing entry point is
:class:`repro.engine.domain_engine.DomainEngine`.
"""

from repro.domain.partition import PartitionStats, partition_blocks

__all__ = ["PartitionStats", "partition_blocks"]
