"""Ownership maps, ghost lists, and the metered halo exchange.

The distributed solve keeps one DOF segment per domain (the blocks that
domain owns, in ascending global order). Every stored off-diagonal
entry ``(i, j)`` of the global matrix couples two blocks; when they
live in different domains each side needs the other's DOF during SpMV,
so those blocks become *ghosts*: replicated read-only copies refreshed
by one halo exchange per CG iteration.

All data movement between the per-domain
:class:`~repro.gpu.kernel.VirtualDevice` ledgers is metered through
``pcie_*`` kernel launches on a dedicated transfer profile (the same
idiom as the hybrid engine's host<->device transfers), and the byte
totals accumulate into the ``domain.halo_bytes`` metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.assembly.global_matrix import BS
from repro.gpu.counters import KernelCounters
from repro.gpu.device import DeviceProfile
from repro.gpu.kernel import RoutedVirtualDevice
from repro.gpu.multi import PCIE_BANDWIDTH, PCIE_LATENCY

#: Inter-device transfer profile: PCIe 3.0 x16 peer-to-peer, matching
#: the bandwidth/latency constants the analytic projection uses.
TRANSFER = DeviceProfile(
    name="PCIe 3.0 x16 P2P",
    kind="gpu",
    peak_flops_dp=1e18,      # transfers do no arithmetic
    mem_bandwidth=PCIE_BANDWIDTH,
    shared_throughput=0.0,
    texture_bandwidth=PCIE_BANDWIDTH,
    transaction_bytes=128,
    launch_overhead=PCIE_LATENCY,
    warp_size=1,
    num_sms=1,
    efficiency=1.0,
)


def make_domain_devices(n_domains: int, profile: DeviceProfile) -> list:
    """One routed device per domain (scalar count ``n_domains``).

    ``pcie_*`` launches are priced on :data:`TRANSFER`; everything else
    on the domain's compute ``profile``.
    """
    return [
        RoutedVirtualDevice(profile, routes={"pcie_": TRANSFER})
        for _ in range(n_domains)
    ]


@dataclass(frozen=True)
class DomainMap:
    """Block ownership across domains.

    Attributes
    ----------
    labels:
        ``(n_blocks,)`` int64 owning domain per block.
    n_domains:
        Domain count (scalar).
    owned:
        Per-domain ``(n_d,)`` ascending global block ids.
    local:
        ``(n_blocks,)`` local index of each block within its owner.
    """

    labels: np.ndarray
    n_domains: int
    owned: tuple
    local: np.ndarray

    @classmethod
    def from_labels(cls, labels: np.ndarray, n_domains: int) -> "DomainMap":
        """Build the map from ``(n_blocks,)`` labels."""
        owned = tuple(
            np.flatnonzero(labels == d) for d in range(n_domains)
        )
        local = np.empty(labels.size, dtype=np.int64)
        for d in range(n_domains):
            local[owned[d]] = np.arange(owned[d].size, dtype=np.int64)
        return cls(labels, n_domains, owned, local)


@dataclass(frozen=True)
class ExchangePlan:
    """Ghost lists and send lists for one matrix sparsity pattern.

    Attributes
    ----------
    ghosts:
        Per-domain sorted ``(g_d,)`` global ids of ghost blocks.
    slots:
        Per-domain ``(n_blocks,)`` map from global block id to the slot
        in that domain's extended vector (owned first, then ghosts;
        ``-1`` where absent).
    sends:
        Directed transfers ``(src, dst, (k,) global ids)`` — the owned
        blocks ``src`` ships to ``dst`` every exchange.
    """

    ghosts: tuple
    slots: tuple
    sends: tuple


def build_exchange_plan(
    dmap: DomainMap, rows: np.ndarray, cols: np.ndarray
) -> ExchangePlan:
    """Plan the exchange for ``(m,)`` off-diagonal coordinate arrays.

    A domain's ghosts are the off-domain partners of its owned blocks
    over the stored entries: the up-phase SpMV reads ``x[col]`` for
    owned rows, the low-phase reads ``x[row]`` for owned cols.
    """
    labels = dmap.labels
    row_lab = labels[rows] if rows.size else rows
    col_lab = labels[cols] if cols.size else cols
    ghosts, slots, sends = [], [], []
    for d in range(dmap.n_domains):
        if rows.size:
            need = np.concatenate([
                cols[(row_lab == d) & (col_lab != d)],
                rows[(col_lab == d) & (row_lab != d)],
            ])
        else:
            need = np.empty(0, dtype=np.int64)
        ghost = np.unique(need)
        own = dmap.owned[d]
        slot = np.full(labels.size, -1, dtype=np.int64)
        slot[own] = np.arange(own.size, dtype=np.int64)
        slot[ghost] = own.size + np.arange(ghost.size, dtype=np.int64)
        ghosts.append(ghost)
        slots.append(slot)
        ghost_lab = labels[ghost]
        for src in range(dmap.n_domains):
            ids = ghost[ghost_lab == src] if ghost.size else ghost  # lint: sync-ok[empty-batch] -- per-source ghost selection, empty exchange skipped
            if ids.size:
                sends.append((src, d, ids))
    return ExchangePlan(tuple(ghosts), tuple(slots), tuple(sends))


def ghost_contacts(
    dmap: DomainMap, block_i: np.ndarray, block_j: np.ndarray
) -> tuple[tuple, int]:
    """Per-domain contact lists with cut contacts duplicated.

    ``block_i``/``block_j`` are the ``(m,)`` contact endpoints. Returns
    ``(per_domain, n_cut)``: ``per_domain[d]`` holds the ascending
    indices of contacts touching domain ``d`` (a contact crossing a
    boundary appears on both owners — the ghost-contact duplication the
    projection charges for), and ``n_cut`` is the scalar count of
    crossing contacts.
    """
    lab_i = dmap.labels[block_i]
    lab_j = dmap.labels[block_j]
    per_domain = tuple(
        np.flatnonzero((lab_i == d) | (lab_j == d))
        for d in range(dmap.n_domains)
    )
    n_cut = int(np.count_nonzero(lab_i != lab_j))  # lint: sync-ok[partition-stats] -- scalar partition statistic
    return per_domain, n_cut


@dataclass
class HaloExchanger:
    """Moves boundary DOF segments between per-domain devices.

    Owns the per-solve communication: ``scatter`` splits a global
    ``(n_dof,)`` vector into per-domain owned segments, ``exchange``
    refreshes ghost values (one call per CG iteration), ``gather``
    collects owned segments back into global order, and ``allreduce``
    meters the latency-bound scalar reductions. ``inject`` is the chaos
    hook applied to the gathered solution buffer.
    """

    dmap: DomainMap
    plan: ExchangePlan
    devices: list
    metrics: object = None
    inject: object = None
    _dof: tuple = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._dof = tuple(
            (self.dmap.owned[d][:, None] * BS
             + np.arange(BS, dtype=np.int64)).reshape(-1)
            for d in range(self.dmap.n_domains)
        )

    # ------------------------------------------------------------------
    def _launch(self, d: int, name: str, nbytes: float) -> None:
        self.devices[d].launch(
            name,
            KernelCounters(
                global_bytes_read=float(nbytes),
                global_txn_read=float(nbytes) / 128.0,
            ),
            module="halo_exchange",
        )

    # ------------------------------------------------------------------
    def scatter(self, x: np.ndarray) -> list:
        """Split ``(n_dof,)`` into per-domain owned ``(n_d*6,)`` segments."""
        segments = []
        for d in range(self.dmap.n_domains):
            seg = x[self._dof[d]]
            self._launch(d, "pcie_scatter_owned", float(seg.nbytes))
            segments.append(seg)
        return segments

    def gather(self, segments: list, *, solution: bool = False) -> np.ndarray:
        """Collect owned segments into the ``(n_dof,)`` global vector.

        With ``solution=True`` the chaos hook sees the assembled buffer
        (the ``halo_corrupt`` fault corrupts exactly this transfer).
        """
        out = np.empty(self.dmap.labels.size * BS)
        for d in range(self.dmap.n_domains):
            out[self._dof[d]] = segments[d]
            self._launch(d, "pcie_gather_owned", float(segments[d].nbytes))
        if solution and self.inject is not None:
            out = self.inject(out)
        return out

    def exchange(self, segments: list) -> list:
        """Refresh ghosts: per-domain extended ``(n_ext_d*6,)`` vectors.

        The owned segment fills the front of each extended vector;
        every planned send copies boundary DOF from owner to ghost slot,
        metered on both devices and in ``domain.halo_bytes``.
        """
        extended = []
        for d in range(self.dmap.n_domains):
            own = self.dmap.owned[d]
            ghost = self.plan.ghosts[d]
            ext = np.empty((own.size + ghost.size) * BS)
            ext[: own.size * BS] = segments[d]
            extended.append(ext)
        for src, dst, ids in self.plan.sends:
            buf = segments[src].reshape(-1, BS)[self.dmap.local[ids]]
            nbytes = float(buf.nbytes)
            self._launch(src, "pcie_halo_send", nbytes)
            self._launch(dst, "pcie_halo_recv", nbytes)
            if self.metrics is not None:
                self.metrics.inc("domain.halo_bytes", nbytes)
            target = self.plan.slots[dst][ids]
            extended[dst].reshape(-1, BS)[target] = buf
        return extended

    def allreduce(self, n_scalars: int = 1) -> None:
        """Meter one latency-bound all-reduce of ``n_scalars`` doubles."""
        nbytes = float(n_scalars * 8)
        for d in range(self.dmap.n_domains):
            self._launch(d, "pcie_allreduce", nbytes)
