"""Failure-injection tests: wrong inputs fail loudly at the API boundary.

Production numerical code must reject garbage before it reaches a kernel;
these tests drive representative bad inputs through every public layer.
"""

import numpy as np
import pytest

from repro.assembly.global_matrix import BS, BlockMatrix
from repro.core.blocks import Block, BlockSystem
from repro.core.materials import BlockMaterial
from repro.solvers.cg import pcg
from repro.spmv.hsbcsr import HSBCSRMatrix, hsbcsr_spmv
from repro.spmv.synthetic import synthetic_block_matrix
from repro.util.validation import ShapeError

SQ = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])


class TestSolverFailures:
    def test_pcg_indefinite_matrix_reports_not_converged(self, rng):
        a = synthetic_block_matrix(4, 4, seed=0)
        # flip the sign of one diagonal block: no longer SPD
        a.diag[0] = -a.diag[0]
        b = rng.normal(size=a.n * BS)
        res = pcg(a, b, tol=1e-10, max_iterations=50)
        assert not res.converged

    def test_pcg_wrong_rhs_length(self):
        a = synthetic_block_matrix(4, 4, seed=0)
        with pytest.raises(ShapeError):
            pcg(a, np.ones(7))

    def test_pcg_nan_rhs_does_not_hang(self):
        a = synthetic_block_matrix(4, 4, seed=0)
        b = np.full(a.n * BS, np.nan)
        res = pcg(a, b, max_iterations=10)
        assert not res.converged or not np.isfinite(res.x).all()

    def test_spmv_wrong_vector_length(self):
        a = synthetic_block_matrix(4, 4, seed=0)
        h = HSBCSRMatrix.from_block_matrix(a)
        with pytest.raises(ShapeError):
            hsbcsr_spmv(h, np.ones(5))


class TestGeometryFailures:
    def test_block_with_nan_vertices(self):
        bad = SQ.copy()
        bad[0, 0] = np.nan
        with pytest.raises(ShapeError, match="non-finite"):
            Block(bad)

    def test_block_with_two_vertices(self):
        with pytest.raises(ShapeError):
            Block(np.array([[0.0, 0.0], [1.0, 1.0]]))

    def test_self_intersecting_polygon_cutter(self):
        # a bow-tie "polygon" has (near-)zero signed area
        bowtie = np.array([[0, 0], [1, 1], [1, 0], [0, 1.0]])
        from repro.geometry.polygon import polygon_area

        assert abs(polygon_area(bowtie)) < 1.0  # degenerate, not a crash

    def test_block_matrix_nan_rejected_downstream(self):
        a = synthetic_block_matrix(3, 2, seed=0)
        a.blocks[0, 0, 0] = np.inf
        # matvec carries the inf; pcg must not report convergence
        res = pcg(a, np.ones(a.n * BS), max_iterations=5)
        assert not res.converged


class TestEngineFailures:
    def test_engine_rejects_bad_controls(self):
        from repro.core.state import SimulationControls

        with pytest.raises(ValueError):
            SimulationControls(time_step=-1.0)

    def test_system_index_errors(self):
        s = BlockSystem([Block(SQ)])
        with pytest.raises(IndexError):
            s.fix_point(3, 0.0, 0.0)
        with pytest.raises(IndexError):
            s.add_point_load(-2, 0, 0, 1, 1)

    def test_overlapping_initial_blocks_resolve_not_crash(self):
        # deliberately overlapping blocks: the engine must push them
        # apart (or at least not crash / blow up)
        from repro.core.state import SimulationControls
        from repro.engine.gpu_engine import GpuEngine

        mat = BlockMaterial(young=1e9)
        s = BlockSystem(
            [Block(SQ, mat), Block(SQ + np.array([0.9, 0.0]), mat)]
        )
        c = SimulationControls(time_step=1e-3, dynamic=True,
                               max_displacement_ratio=0.05)
        engine = GpuEngine(s, c)
        engine.run(steps=30)
        # blocks separated (or at least moved apart), velocities finite
        assert np.isfinite(s.velocities).all()
        gap = s.centroids[1, 0] - s.centroids[0, 0]
        assert gap > 0.9  # pushed apart from the 0.9 overlap start

    def test_single_fixed_block_is_stable_forever(self):
        from repro.core.state import SimulationControls
        from repro.engine.gpu_engine import GpuEngine

        s = BlockSystem([Block(SQ)])
        s.fix_block(0)
        engine = GpuEngine(
            s, SimulationControls(time_step=1e-3, dynamic=True)
        )
        r = engine.run(steps=100)
        assert r.max_total_displacement() < 1e-4


class TestResilienceFaultInjection:
    """Injected faults exercising the resilience layer end to end."""

    @staticmethod
    def _stacked():
        base = np.array([[0, 0], [3, 0], [3, 1], [0, 1.0]])
        mat = BlockMaterial(young=1e9)
        s = BlockSystem(
            [Block(base, mat), Block(SQ + np.array([1.0, 1.0]), mat)]
        )
        s.fix_block(0)
        return s

    @staticmethod
    def _controls(**resilience_kwargs):
        from repro.core.state import ResilienceControls, SimulationControls

        return SimulationControls(
            time_step=1e-3, dynamic=True, max_displacement_ratio=0.05,
            resilience=ResilienceControls(**resilience_kwargs),
        )

    def test_forced_breakdown_triggers_fallback_ladder(self, monkeypatch):
        # a pap <= 0 breakdown on the configured preconditioner must
        # escalate through the ladder instead of burning a dt-halving
        import repro.engine.base as engine_base
        from repro.engine.gpu_engine import GpuEngine
        from repro.solvers.cg import CGResult, pcg as real_pcg

        seen = []

        def breaking(a, b, x0=None, preconditioner=None, **kwargs):
            seen.append((getattr(preconditioner, "name", "none"), x0 is not None))
            if len(seen) == 1:  # first solve: simulate pap <= 0
                return CGResult(x=np.zeros(b.size), iterations=1,
                                converged=False, residuals=[], breakdown=True)
            return real_pcg(a, b, x0=x0, preconditioner=preconditioner,
                            **kwargs)

        monkeypatch.setattr(engine_base, "pcg", breaking)
        engine = GpuEngine(self._stacked(), self._controls())
        result = engine.run(steps=2)
        assert result.steps[0].solver_rung == 1
        assert result.steps[0].retries == 0
        assert seen[0] == ("bj", True)
        assert seen[1] == ("ssor", True)  # the escalation rung

    def test_nan_in_velocities_triggers_rollback(self, monkeypatch):
        from repro.engine.gpu_engine import GpuEngine

        engine = GpuEngine(
            self._stacked(),
            self._controls(checkpoint_every=1, max_rollbacks=2,
                           guard_finite="rollback"),
        )
        original = engine._update_data
        armed = {"on": True}

        def poison_once(d):
            original(d)
            if armed["on"] and engine.sim_time > 2e-3:
                armed["on"] = False
                engine.system.velocities[1, 1] = np.nan

        monkeypatch.setattr(engine, "_update_data", poison_once)
        result = engine.run(steps=6)
        assert result.failure is None
        assert result.rollbacks == 1
        assert np.isfinite(engine.system.velocities).all()

    def test_corrupted_checkpoint_raises_checkpoint_corrupt(self, tmp_path):
        from repro.core.state import SimulationControls
        from repro.engine.gpu_engine import GpuEngine
        from repro.engine.resilience import CheckpointCorrupt
        from repro.io.model_io import load_checkpoint, save_checkpoint

        engine = GpuEngine(
            self._stacked(),
            SimulationControls(time_step=1e-3, dynamic=True,
                               max_displacement_ratio=0.05),
        )
        engine.run(steps=2)
        path = save_checkpoint(engine.checkpoint(step=2), tmp_path / "cp")

        # flip a payload byte: unreadable or checksum-mismatched either way
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        bad = tmp_path / "cp_bad.npz"
        bad.write_bytes(bytes(blob))
        with pytest.raises(CheckpointCorrupt):
            load_checkpoint(bad)

        # tampered payload behind a stale checksum: digest must catch it
        with np.load(path, allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["velocities"] = arrays["velocities"] + 1.0
        tampered = tmp_path / "cp_tampered.npz"
        np.savez_compressed(tampered, **arrays)
        with pytest.raises(CheckpointCorrupt, match="integrity"):
            load_checkpoint(tampered)

        # truncated write (killed mid-save)
        half = tmp_path / "cp_half.npz"
        half.write_bytes(path.read_bytes()[: len(blob) // 2])
        with pytest.raises(CheckpointCorrupt):
            load_checkpoint(half)

    def test_wrong_format_file_rejected(self, tmp_path):
        from repro.engine.resilience import CheckpointCorrupt
        from repro.io.model_io import load_checkpoint

        bogus = tmp_path / "bogus.npz"
        np.savez_compressed(bogus, vertices=np.zeros((3, 2)))
        with pytest.raises(CheckpointCorrupt):
            load_checkpoint(bogus)


class TestBlockMatrixValidation:
    def test_wrong_block_shape(self):
        with pytest.raises(ShapeError):
            BlockMatrix(
                2, np.zeros((2, 5, 6)),
                np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
                np.zeros((0, 6, 6)),
            )

    def test_mismatched_row_col_lengths(self):
        with pytest.raises(ShapeError):
            BlockMatrix(
                3, np.zeros((3, 6, 6)),
                np.array([0], dtype=np.int64),
                np.array([1, 2], dtype=np.int64),
                np.zeros((1, 6, 6)),
            )
