"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.gpu.device import K40, E5620
from repro.gpu.kernel import VirtualDevice


@pytest.fixture
def device() -> VirtualDevice:
    """A fresh K40 virtual device."""
    return VirtualDevice(K40)


@pytest.fixture
def cpu_device() -> VirtualDevice:
    """A fresh E5620 (serial CPU) virtual device."""
    return VirtualDevice(E5620)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)
