import numpy as np
import pytest

from repro.assembly.categories import (
    ABANDONED,
    C1,
    C2,
    C3,
    C4,
    C5,
    N_CATEGORIES,
    classify_categories,
    switch_indicators,
)
from repro.assembly.contact_springs import LOCK, OPEN, SLIDE


class TestSwitchIndicators:
    def test_open_to_lock(self):
        p1, p2 = switch_indicators(np.array([OPEN]), np.array([LOCK]))
        assert p1[0] == 1 and p2[0] == 1

    def test_lock_to_open(self):
        p1, p2 = switch_indicators(np.array([LOCK]), np.array([OPEN]))
        assert p1[0] == -1 and p2[0] == -1

    def test_lock_to_slide(self):
        p1, p2 = switch_indicators(np.array([LOCK]), np.array([SLIDE]))
        assert p1[0] == 0 and p2[0] == -1

    def test_steady(self):
        p1, p2 = switch_indicators(np.array([SLIDE]), np.array([SLIDE]))
        assert p1[0] == 0 and p2[0] == 0


class TestClassifyCategories:
    def test_ve_transitions(self):
        prev = np.array([OPEN, LOCK, SLIDE, OPEN])
        cur = np.array([LOCK, SLIDE, SLIDE, OPEN])
        vv2 = np.zeros(4, dtype=bool)
        cat = classify_categories(prev, cur, vv2)
        np.testing.assert_array_equal(cat, [C1, C2, C3, ABANDONED])

    def test_vv2_transitions(self):
        prev = np.array([OPEN, LOCK, SLIDE, OPEN])
        cur = np.array([LOCK, SLIDE, SLIDE, OPEN])
        vv2 = np.ones(4, dtype=bool)
        cat = classify_categories(prev, cur, vv2)
        np.testing.assert_array_equal(cat, [C4, C5, C5, ABANDONED])

    def test_partition(self):
        # every contact receives exactly one category code
        rng = np.random.default_rng(0)
        prev = rng.integers(0, 3, size=500)
        cur = rng.integers(0, 3, size=500)
        vv2 = rng.random(500) < 0.3
        cat = classify_categories(prev, cur, vv2)
        assert ((cat >= 0) & (cat < N_CATEGORIES)).all()

    def test_abandoned_only_for_steady_open(self):
        rng = np.random.default_rng(1)
        prev = rng.integers(0, 3, size=300)
        cur = rng.integers(0, 3, size=300)
        vv2 = rng.random(300) < 0.5
        cat = classify_categories(prev, cur, vv2)
        steady_open = (prev == OPEN) & (cur == OPEN)
        np.testing.assert_array_equal(cat == ABANDONED, steady_open)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(Exception):
            classify_categories(np.zeros(3), np.zeros(2), np.zeros(3, dtype=bool))
