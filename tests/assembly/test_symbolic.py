"""AssemblyPlan: bit-identity, launch replay, and invalidation."""

import numpy as np
import pytest

from repro.assembly.global_matrix import BS, assemble_gpu, assemble_serial
from repro.assembly.symbolic import AssemblyPlan
from repro.contact.contact_set import VE, ContactSet
from repro.contact.transfer import topology_changed
from repro.gpu.device import K40
from repro.gpu.kernel import VirtualDevice


def contribution_stream(seed, n=7, q=24, m=40):
    """A random assembly stream with plenty of duplicate (row, col) pairs."""
    rng = np.random.default_rng(seed)
    diag_idx = rng.integers(0, n, size=q)
    off_rows = rng.integers(0, n, size=m)
    # off-diagonal: j != i, both orientations present
    off_cols = (off_rows + 1 + rng.integers(0, n - 1, size=m)) % n
    diag_blocks = rng.standard_normal((q, BS, BS))
    off_blocks = rng.standard_normal((m, BS, BS))
    return n, diag_idx, diag_blocks, off_rows, off_cols, off_blocks


class TestPlanBitIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_both_assemblers(self, seed):
        """Each diag_mode reproduces its assembler bit-for-bit.

        The two assemblers themselves differ by ulps on the diagonal
        when indices repeat (scatter-add vs sorted segment reduction),
        which is exactly why the plan carries a mode.
        """
        n, diag_idx, diag_blocks, off_rows, off_cols, off_blocks = (
            contribution_stream(seed)
        )
        ref_serial = assemble_serial(
            n, diag_idx, diag_blocks, off_rows, off_cols, off_blocks
        )
        ref_gpu = assemble_gpu(
            n, diag_idx, diag_blocks, off_rows, off_cols, off_blocks,
            VirtualDevice(K40),
        )
        # off-diagonal path is shared: the assemblers agree bit-for-bit
        np.testing.assert_array_equal(ref_serial.blocks, ref_gpu.blocks)
        for mode, ref in (("scatter", ref_serial), ("segment", ref_gpu)):
            plan = AssemblyPlan.build(
                n, diag_idx, off_rows, off_cols, diag_mode=mode
            )
            out = plan.assemble(diag_blocks, off_blocks)
            np.testing.assert_array_equal(out.diag, ref.diag)
            np.testing.assert_array_equal(out.rows, ref.rows)
            np.testing.assert_array_equal(out.cols, ref.cols)
            np.testing.assert_array_equal(out.blocks, ref.blocks)

    def test_new_values_same_pattern(self):
        """A reused plan assembles fresh values exactly."""
        n, diag_idx, diag_blocks, off_rows, off_cols, off_blocks = (
            contribution_stream(0)
        )
        plan = AssemblyPlan.build(n, diag_idx, off_rows, off_cols)
        rng = np.random.default_rng(99)
        diag2 = rng.standard_normal(diag_blocks.shape)
        off2 = rng.standard_normal(off_blocks.shape)
        ref = assemble_serial(n, diag_idx, diag2, off_rows, off_cols, off2)
        out = plan.assemble(diag2, off2)
        np.testing.assert_array_equal(out.diag, ref.diag)
        np.testing.assert_array_equal(out.blocks, ref.blocks)

    def test_empty_offdiagonal(self):
        n, diag_idx, diag_blocks, _, _, _ = contribution_stream(0)
        z = np.zeros(0, dtype=np.int64)
        zb = np.zeros((0, BS, BS))
        plan = AssemblyPlan.build(n, diag_idx, z, z)
        out = plan.assemble(diag_blocks, zb)
        ref = assemble_serial(n, diag_idx, diag_blocks, z, z, zb)
        np.testing.assert_array_equal(out.diag, ref.diag)
        assert out.n_offdiag == 0


class TestLaunchReplay:
    def test_replay_reproduces_ledger(self):
        n, diag_idx, diag_blocks, off_rows, off_cols, off_blocks = (
            contribution_stream(1)
        )
        dev_a = VirtualDevice(K40)
        assemble_gpu(
            n, diag_idx, diag_blocks, off_rows, off_cols, off_blocks, dev_a
        )
        plan = AssemblyPlan.build(
            n, diag_idx, off_rows, off_cols,
            launches=tuple((r.name, r.counters) for r in dev_a.records),
        )
        dev_b = VirtualDevice(K40)
        plan.replay(dev_b)
        assert [r.name for r in dev_b.records] == [
            r.name for r in dev_a.records
        ]
        assert dev_b.total_time == dev_a.total_time


class TestInvalidation:
    def test_matches_is_exact(self):
        n, diag_idx, _, off_rows, off_cols, _ = contribution_stream(2)
        plan = AssemblyPlan.build(n, diag_idx, off_rows, off_cols)
        assert plan.matches(diag_idx, off_rows, off_cols)
        # shape change
        assert not plan.matches(diag_idx[:-1], off_rows, off_cols)
        assert not plan.matches(diag_idx, off_rows[:-1], off_cols[:-1])
        # value change
        bumped = diag_idx.copy()
        bumped[0] = (bumped[0] + 1) % n
        assert not plan.matches(bumped, off_rows, off_cols)
        swapped = off_rows.copy()
        swapped[0], swapped[1] = swapped[1], swapped[0]
        if not np.array_equal(swapped, off_rows):
            assert not plan.matches(diag_idx, swapped, off_cols)

    def test_topology_changed(self):
        def table(block_j, vertex_idx):
            m = len(block_j)
            return ContactSet(
                block_i=np.zeros(m, dtype=np.int64),
                block_j=np.asarray(block_j, dtype=np.int64),
                vertex_idx=np.asarray(vertex_idx, dtype=np.int64),
                e1_idx=np.arange(m, dtype=np.int64) + 10,
                e2_idx=np.arange(m, dtype=np.int64) + 20,
                kind=np.full(m, VE, dtype=np.int64),
            )

        a = table([1, 2], [3, 4])
        same = table([1, 2], [3, 4])
        assert not topology_changed(a, same, 100)
        # state flips alone are not topology
        same.state[:] = 2
        same.pn[:] = 5.0
        assert not topology_changed(a, same, 100)
        # different pair count
        assert topology_changed(a, table([1], [3]), 100)
        # different block pair
        assert topology_changed(a, table([1, 3], [3, 4]), 100)
        # same blocks, different contact data (vertex index)
        assert topology_changed(a, table([1, 2], [3, 5]), 100)
