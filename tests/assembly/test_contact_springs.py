import numpy as np
import pytest

from repro.assembly.contact_springs import (
    LOCK,
    OPEN,
    SLIDE,
    contact_contributions,
    normal_spring_vectors,
    shear_spring_vectors,
)

# Canonical setup: vertex of block i touching the top edge of block j.
# Block j occupies [0,2]x[-1,0] (CCW); its top edge CCW runs (2,0)->(0,0);
# contact convention reverses it: E1=(0,0), E2=(2,0); outside (y>0) positive.
P1 = np.array([[1.0, 0.1]])
E1 = np.array([[0.0, 0.0]])
E2 = np.array([[2.0, 0.0]])
CI = np.array([[1.0, 0.6]])  # centroid of the upper block
CJ = np.array([[1.0, -0.5]])
R = np.array([0.5])


class TestNormalSpringVectors:
    def test_gap_sign(self):
        _, _, d0, length = normal_spring_vectors(P1, E1, E2, CI, CJ)
        assert d0[0] == pytest.approx(0.1)  # above the edge -> positive
        assert length[0] == pytest.approx(2.0)

    def test_penetration_sign(self):
        p_pen = np.array([[1.0, -0.05]])
        _, _, d0, _ = normal_spring_vectors(p_pen, E1, E2, CI, CJ)
        assert d0[0] == pytest.approx(-0.05)

    def test_linearisation_matches_fd(self):
        # DDA linearises the determinant S with the edge length held at its
        # step-start value (exact up to terms bilinear in the increments):
        # S_new / l_old ~ d0 + e.d_i + g.d_j
        e, g, d0, length = normal_spring_vectors(P1, E1, E2, CI, CJ)
        rng = np.random.default_rng(0)
        di = rng.normal(0, 1e-6, 6)
        dj = rng.normal(0, 1e-6, 6)
        from repro.core.displacement import displace_points
        from repro.geometry.distance import signed_triangle_area2

        p1n = displace_points(P1, CI[0], di)
        e1n = displace_points(E1, CJ[0], dj)
        e2n = displace_points(E2, CJ[0], dj)
        s_new = signed_triangle_area2(p1n, e1n, e2n)[0]
        predicted = d0[0] + e[0] @ di + g[0] @ dj
        assert s_new / length[0] == pytest.approx(predicted, abs=1e-11)

    def test_normal_direction_unit(self):
        # moving P1 by +1 normal unit changes d_n by +1:
        # e's translational part is the unit normal
        e, _, _, _ = normal_spring_vectors(P1, E1, E2, CI, CJ)
        np.testing.assert_allclose(e[0, :2], [0.0, 1.0], atol=1e-12)

    def test_action_reaction_translation(self):
        # translating both blocks together leaves d_n unchanged:
        # e and g translational parts cancel
        e, g, _, _ = normal_spring_vectors(P1, E1, E2, CI, CJ)
        np.testing.assert_allclose(e[0, :2] + g[0, :2], 0.0, atol=1e-12)

    def test_degenerate_edge_rejected(self):
        with pytest.raises(ValueError, match="degenerate"):
            normal_spring_vectors(P1, E1, E1, CI, CJ)


class TestShearSpringVectors:
    def test_tangent_unit(self):
        _, _, t = shear_spring_vectors(P1, E1, E2, R, CI, CJ)
        np.testing.assert_allclose(t[0], [1.0, 0.0])

    def test_translation_relative(self):
        # translating block i by +x creates +1 shear; block j by +x cancels
        es, gs, _ = shear_spring_vectors(P1, E1, E2, R, CI, CJ)
        dx = np.array([1.0, 0, 0, 0, 0, 0])
        assert es[0] @ dx == pytest.approx(1.0)
        assert gs[0] @ dx == pytest.approx(-1.0)

    def test_linearisation_matches_fd(self):
        es, gs, t = shear_spring_vectors(P1, E1, E2, R, CI, CJ)
        rng = np.random.default_rng(1)
        di = rng.normal(0, 1e-6, 6)
        dj = rng.normal(0, 1e-6, 6)
        from repro.core.displacement import displace_points

        p1n = displace_points(P1, CI[0], di)[0]
        cp = E1[0] + R[0] * (E2[0] - E1[0])
        cpn = displace_points(cp[None, :], CJ[0], dj)[0]
        measured = t[0] @ ((p1n - P1[0]) - (cpn - cp))
        predicted = es[0] @ di + gs[0] @ dj
        assert measured == pytest.approx(predicted, abs=1e-14)


class TestContactContributions:
    def _contrib(self, states, fric=0.0, sgn=1.0, pn=100.0, ps=40.0):
        return contact_contributions(
            P1, E1, E2, R, CI, CJ,
            np.array([states]),
            np.array([pn]),
            np.array([ps]),
            np.array([fric]),
            np.array([sgn]),
        )

    def test_open_contributes_nothing(self):
        kii, kjj, kij, fi, fj = self._contrib(OPEN)
        for arr in (kii, kjj, kij, fi, fj):
            assert np.all(arr == 0.0)

    def test_lock_stiffness_symmetric_psd(self):
        kii, kjj, kij, _, _ = self._contrib(LOCK)
        np.testing.assert_allclose(kii[0], kii[0].T, atol=1e-12)
        np.testing.assert_allclose(kjj[0], kjj[0].T, atol=1e-12)
        # the 12x12 pair matrix must be PSD
        pair = np.block([[kii[0], kij[0]], [kij[0].T, kjj[0]]])
        assert (np.linalg.eigvalsh(pair) >= -1e-9).all()

    def test_lock_has_shear_stiffness_slide_does_not(self):
        kii_lock, *_ = self._contrib(LOCK)
        kii_slide, *_ = self._contrib(SLIDE)
        # tangential translational stiffness present only when locked
        assert kii_lock[0][0, 0] > kii_slide[0][0, 0]

    def test_penetration_load_pushes_apart(self):
        # penetrating vertex: load should push block i up (+y), block j down
        p_pen = np.array([[1.0, -0.02]])
        _, _, _, fi, fj = contact_contributions(
            p_pen, E1, E2, R, CI, CJ,
            np.array([LOCK]), np.array([100.0]), np.array([40.0]),
            np.array([0.0]), np.array([1.0]),
        )
        assert fi[0, 1] > 0  # upward on the penetrating block
        assert fj[0, 1] < 0

    def test_friction_force_pair_opposes_sliding(self):
        _, _, _, fi, fj = self._contrib(SLIDE, fric=5.0, sgn=1.0)
        # block i slides +x: friction pulls it -x, pushes j +x
        assert fi[0, 0] == pytest.approx(-5.0)
        assert fj[0, 0] == pytest.approx(5.0)

    def test_friction_sign_flips(self):
        # only the friction part of the load flips with the sliding sign;
        # subtract the zero-friction (normal-spring) load first
        _, _, _, fi_base, _ = self._contrib(SLIDE, fric=0.0, sgn=1.0)
        _, _, _, fi_pos, _ = self._contrib(SLIDE, fric=5.0, sgn=1.0)
        _, _, _, fi_neg, _ = self._contrib(SLIDE, fric=5.0, sgn=-1.0)
        np.testing.assert_allclose(
            fi_pos[0] - fi_base[0], -(fi_neg[0] - fi_base[0])
        )

    def test_empty_batch(self):
        out = contact_contributions(
            np.zeros((0, 2)), np.zeros((0, 2)), np.zeros((0, 2)),
            np.zeros(0), np.zeros((0, 2)), np.zeros((0, 2)),
            np.zeros(0, dtype=int), np.zeros(0), np.zeros(0),
            np.zeros(0), np.zeros(0),
        )
        assert all(a.shape[0] == 0 for a in out)

    def test_mixed_batch_matches_individual(self):
        p1 = np.vstack([P1, P1 + [0.3, 0.0]])
        e1 = np.vstack([E1, E1])
        e2 = np.vstack([E2, E2])
        r = np.array([0.5, 0.65])
        ci = np.vstack([CI, CI])
        cj = np.vstack([CJ, CJ])
        states = np.array([LOCK, SLIDE])
        out_batch = contact_contributions(
            p1, e1, e2, r, ci, cj, states,
            np.array([100.0, 100.0]), np.array([40.0, 40.0]),
            np.array([0.0, 2.0]), np.array([1.0, 1.0]),
        )
        for k in range(2):
            out_one = contact_contributions(
                p1[k : k + 1], e1[k : k + 1], e2[k : k + 1], r[k : k + 1],
                ci[k : k + 1], cj[k : k + 1], states[k : k + 1],
                np.array([100.0]), np.array([40.0]),
                np.array([0.0, 2.0])[k : k + 1], np.array([1.0]),
            )
            for a, b in zip(out_batch, out_one):
                np.testing.assert_allclose(a[k], b[0], atol=1e-12)
