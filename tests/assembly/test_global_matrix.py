import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assembly.global_matrix import (
    BS,
    BlockMatrix,
    assemble_gpu,
    assemble_serial,
)


def random_contributions(rng, n, q, m):
    diag_idx = rng.integers(0, n, size=q)
    diag_blocks = rng.normal(size=(q, BS, BS))
    pairs = []
    while len(pairs) < m:
        i, j = rng.integers(0, n, size=2)
        if i != j:
            pairs.append((i, j))
    off = np.array(pairs, dtype=np.int64)
    off_blocks = rng.normal(size=(m, BS, BS))
    return diag_idx.astype(np.int64), diag_blocks, off[:, 0], off[:, 1], off_blocks


def dense_reference(n, diag_idx, diag_blocks, off_rows, off_cols, off_blocks):
    a = np.zeros((n * BS, n * BS))
    for idx, blk in zip(diag_idx, diag_blocks):
        a[idx * BS : (idx + 1) * BS, idx * BS : (idx + 1) * BS] += blk
    for i, j, blk in zip(off_rows, off_cols, off_blocks):
        a[i * BS : (i + 1) * BS, j * BS : (j + 1) * BS] += blk
        a[j * BS : (j + 1) * BS, i * BS : (i + 1) * BS] += blk.T
    return a


class TestBlockMatrix:
    def _simple(self):
        diag = np.stack([np.eye(BS) * (k + 1) for k in range(3)])
        rows = np.array([0], dtype=np.int64)
        cols = np.array([2], dtype=np.int64)
        blocks = np.arange(36, dtype=float).reshape(1, BS, BS)
        return BlockMatrix(3, diag, rows, cols, blocks)

    def test_matvec_matches_dense(self, rng):
        bm = self._simple()
        x = rng.normal(size=3 * BS)
        np.testing.assert_allclose(bm.matvec(x), bm.to_dense() @ x)

    def test_dense_symmetric(self):
        a = self._simple().to_dense()
        np.testing.assert_allclose(a, a.T)

    def test_scipy_roundtrip(self, rng):
        bm = self._simple()
        x = rng.normal(size=3 * BS)
        np.testing.assert_allclose(bm.to_scipy_csr() @ x, bm.matvec(x))

    def test_nnz_scalar(self):
        bm = self._simple()
        assert bm.nnz_scalar == 3 * 36 + 2 * 36

    def test_rejects_lower_triangle(self):
        with pytest.raises(ValueError, match="row < col"):
            BlockMatrix(
                3,
                np.zeros((3, BS, BS)),
                np.array([2], dtype=np.int64),
                np.array([0], dtype=np.int64),
                np.zeros((1, BS, BS)),
            )

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError, match="sorted"):
            BlockMatrix(
                4,
                np.zeros((4, BS, BS)),
                np.array([1, 0], dtype=np.int64),
                np.array([2, 1], dtype=np.int64),
                np.zeros((2, BS, BS)),
            )

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="range"):
            BlockMatrix(
                2,
                np.zeros((2, BS, BS)),
                np.array([0], dtype=np.int64),
                np.array([5], dtype=np.int64),
                np.zeros((1, BS, BS)),
            )


class TestAssembleSerial:
    def test_matches_dense_reference(self, rng):
        args = random_contributions(rng, n=6, q=20, m=30)
        bm = assemble_serial(6, *args)
        np.testing.assert_allclose(bm.to_dense(), dense_reference(6, *args), atol=1e-12)

    def test_duplicate_pairs_summed(self):
        blk = np.ones((2, BS, BS))
        bm = assemble_serial(
            3,
            np.zeros(0, dtype=np.int64), np.zeros((0, BS, BS)),
            np.array([0, 0], dtype=np.int64),
            np.array([1, 1], dtype=np.int64),
            blk,
        )
        assert bm.n_offdiag == 1
        np.testing.assert_allclose(bm.blocks[0], 2.0)

    def test_lower_orientation_transposed(self, rng):
        blk = rng.normal(size=(1, BS, BS))
        bm = assemble_serial(
            3,
            np.zeros(0, dtype=np.int64), np.zeros((0, BS, BS)),
            np.array([2], dtype=np.int64),
            np.array([0], dtype=np.int64),
            blk,
        )
        assert bm.rows[0] == 0 and bm.cols[0] == 2
        np.testing.assert_allclose(bm.blocks[0], blk[0].T)

    def test_diag_only(self, rng):
        diag_idx = np.array([1, 1, 0], dtype=np.int64)
        diag_blocks = rng.normal(size=(3, BS, BS))
        bm = assemble_serial(
            2, diag_idx, diag_blocks,
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
            np.zeros((0, BS, BS)),
        )
        np.testing.assert_allclose(bm.diag[1], diag_blocks[0] + diag_blocks[1])
        assert bm.n_offdiag == 0

    def test_rejects_row_eq_col(self):
        with pytest.raises(ValueError, match="row == col"):
            assemble_serial(
                2,
                np.zeros(0, dtype=np.int64), np.zeros((0, BS, BS)),
                np.array([1], dtype=np.int64), np.array([1], dtype=np.int64),
                np.zeros((1, BS, BS)),
            )


class TestAssembleGpu:
    def test_matches_serial(self, rng, device):
        args = random_contributions(rng, n=8, q=25, m=40)
        serial = assemble_serial(8, *args)
        gpu = assemble_gpu(8, *args, device=device)
        np.testing.assert_allclose(gpu.to_dense(), serial.to_dense(), atol=1e-12)
        assert device.launches() > 0

    def test_works_without_device(self, rng):
        args = random_contributions(rng, n=5, q=10, m=12)
        gpu = assemble_gpu(5, *args)
        serial = assemble_serial(5, *args)
        np.testing.assert_allclose(gpu.to_dense(), serial.to_dense(), atol=1e-12)

    def test_empty_offdiag(self, rng):
        bm = assemble_gpu(
            3,
            np.array([0], dtype=np.int64), rng.normal(size=(1, BS, BS)),
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
            np.zeros((0, BS, BS)),
        )
        assert bm.n_offdiag == 0

    @given(st.integers(min_value=1, max_value=200), st.integers(min_value=0, max_value=9999))
    @settings(max_examples=25, deadline=None)
    def test_property_gpu_equals_serial(self, m, seed):
        rng = np.random.default_rng(seed)
        n = 7
        args = random_contributions(rng, n=n, q=n, m=m)
        a = assemble_serial(n, *args).to_dense()
        b = assemble_gpu(n, *args).to_dense()
        np.testing.assert_allclose(a, b, atol=1e-10)
