import numpy as np
import pytest

from repro.assembly.submatrices import (
    body_force_vector,
    elastic_submatrix,
    fixed_point_contribution,
    inertia_contribution,
    initial_stress_vector,
    mass_integral_matrix,
    point_load_vector,
)
from repro.core.displacement import displacement_matrix
from repro.core.materials import BlockMaterial
from repro.geometry.polygon import polygon_area, polygon_centroid, polygon_second_moments

SQ = np.array([[0.0, 0.0], [2.0, 0.0], [2.0, 2.0], [0.0, 2.0]])


def _mass_matrix_quadrature(poly, density=1.0, n=400):
    """Monte-Carlo-free quadrature reference for rho * int T^T T dS."""
    c = polygon_centroid(poly)
    lo = poly.min(axis=0)
    hi = poly.max(axis=0)
    xs = np.linspace(lo[0], hi[0], n)
    ys = np.linspace(lo[1], hi[1], n)
    gx, gy = np.meshgrid(xs, ys)
    pts = np.stack([gx.ravel(), gy.ravel()], axis=1)
    from repro.geometry.polygon import point_in_polygon

    inside = point_in_polygon(poly, pts)
    pts = pts[inside]
    da = (xs[1] - xs[0]) * (ys[1] - ys[0])
    t = displacement_matrix(pts, np.broadcast_to(c, pts.shape))
    return density * np.einsum("mki,mkj->ij", t, t) * da


class TestMassIntegralMatrix:
    def test_matches_quadrature(self):
        area = polygon_area(SQ)
        mom = polygon_second_moments(SQ)
        exact = mass_integral_matrix(area, mom)
        quad = _mass_matrix_quadrature(SQ)
        np.testing.assert_allclose(exact, quad, rtol=0.02, atol=0.02)

    def test_symmetric(self):
        m = mass_integral_matrix(4.0, (1.0, 2.0, 0.5))
        np.testing.assert_allclose(m, m.T)

    def test_positive_definite(self):
        m = mass_integral_matrix(4.0, polygon_second_moments(SQ))
        assert (np.linalg.eigvalsh(m) > 0).all()

    def test_translation_entries(self):
        m = mass_integral_matrix(3.0, (1.0, 1.0, 0.0))
        assert m[0, 0] == m[1, 1] == 3.0
        assert m[0, 1] == 0.0

    def test_rotation_entry_is_polar_moment(self):
        m = mass_integral_matrix(4.0, (2.0, 3.0, 0.0))
        assert m[2, 2] == pytest.approx(5.0)


class TestElastic:
    def test_strain_block_only(self):
        k = elastic_submatrix(2.0, BlockMaterial(young=1.0, poisson=0.0))
        assert np.all(k[:3, :] == 0.0)
        assert np.all(k[:, :3] == 0.0)
        np.testing.assert_allclose(k[3:, 3:], 2.0 * np.diag([1.0, 1.0, 0.5]))

    def test_symmetric_psd(self):
        k = elastic_submatrix(5.0, BlockMaterial())
        np.testing.assert_allclose(k, k.T)
        assert (np.linalg.eigvalsh(k) >= -1e-6).all()


class TestInertia:
    def test_stiffness_scales_inverse_dt2(self):
        mom = polygon_second_moments(SQ)
        v = np.zeros(6)
        k1, _ = inertia_contribution(4.0, mom, 1000.0, 0.01, v)
        k2, _ = inertia_contribution(4.0, mom, 1000.0, 0.005, v)
        np.testing.assert_allclose(k2, 4.0 * k1)

    def test_force_proportional_to_velocity(self):
        mom = polygon_second_moments(SQ)
        v = np.array([1.0, 0, 0, 0, 0, 0])
        _, f = inertia_contribution(4.0, mom, 1000.0, 0.01, v)
        # translational velocity -> momentum force 2*rho*S*v/dt
        assert f[0] == pytest.approx(2 * 1000.0 * 4.0 * 1.0 / 0.01)
        assert f[1] == pytest.approx(0.0)

    def test_smaller_dt_stiffer_diagonal(self):
        # the paper's conditioning argument: halving physical time
        # enlarges the diagonal blocks
        mom = polygon_second_moments(SQ)
        k_big, _ = inertia_contribution(4.0, mom, 1000.0, 0.01, np.zeros(6))
        k_small, _ = inertia_contribution(4.0, mom, 1000.0, 0.001, np.zeros(6))
        assert np.trace(k_small) > np.trace(k_big)


class TestLoads:
    def test_body_force_gravity(self):
        f = body_force_vector(4.0, 0.0, -9.81 * 1000.0)
        assert f[1] == pytest.approx(-39240.0)
        assert np.all(f[2:] == 0.0)

    def test_point_load_at_centroid_pure_translation(self):
        c = np.array([1.0, 1.0])
        f = point_load_vector(c, c, 3.0, -4.0)
        np.testing.assert_allclose(f, [3.0, -4.0, 0, 0, 0, 0])

    def test_point_load_off_centroid_has_moment(self):
        c = np.array([0.0, 0.0])
        p = np.array([1.0, 0.0])
        f = point_load_vector(p, c, 0.0, 1.0)
        assert f[2] == pytest.approx(1.0)  # torque = dx * fy

    def test_initial_stress(self):
        f = initial_stress_vector(2.0, (1.0, 2.0, 3.0))
        np.testing.assert_allclose(f, [0, 0, 0, -2.0, -4.0, -6.0])


class TestFixedPoint:
    def test_symmetric_psd(self):
        k = fixed_point_contribution(
            np.array([1.0, 2.0]), np.array([0.0, 0.0]), 1e6
        )
        np.testing.assert_allclose(k, k.T)
        assert (np.linalg.eigvalsh(k) >= -1e-6).all()

    def test_rank_two(self):
        # a single point spring constrains 2 directions
        k = fixed_point_contribution(
            np.array([1.0, 2.0]), np.array([0.0, 0.0]), 1.0
        )
        assert np.linalg.matrix_rank(k) == 2

    def test_penalty_scaling(self):
        p = np.array([1.0, 2.0])
        c = np.array([0.0, 0.0])
        np.testing.assert_allclose(
            fixed_point_contribution(p, c, 10.0),
            10.0 * fixed_point_contribution(p, c, 1.0),
        )
