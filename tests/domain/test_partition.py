"""Partition planning: determinism, balance, fallback behaviour."""

import numpy as np
import pytest

from repro.core.blocks import Block, BlockSystem
from repro.core.materials import BlockMaterial
from repro.domain.partition import (
    METHODS,
    PartitionStats,
    adjacency_pairs,
    partition_blocks,
    partition_stats,
)
from repro.meshing.slope_models import build_brick_wall

SQ = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
MAT = BlockMaterial(young=1e9)


def two_islands() -> BlockSystem:
    """Two contact clusters 100 units apart — a disconnected graph."""
    blocks = [Block(SQ + np.array([1.05 * k, 0.0]), MAT) for k in range(3)]
    blocks += [
        Block(SQ + np.array([100.0 + 1.05 * k, 0.0]), MAT) for k in range(3)
    ]
    return BlockSystem(blocks)


def chain_contacts(n: int):
    """Blocks in a row plus the detected 0-1, 1-2, ... contact table."""
    from repro.assembly.contact_springs import LOCK
    from repro.contact.contact_set import VE, ContactSet

    blocks = [Block(SQ + np.array([1.05 * k, 0.0]), MAT) for k in range(n)]
    system = BlockSystem(blocks)
    m = n - 1
    contacts = ContactSet(
        block_i=np.arange(m, dtype=np.int64),
        block_j=np.arange(1, n, dtype=np.int64),
        vertex_idx=np.arange(m, dtype=np.int64) * 4 + 1,
        e1_idx=np.arange(1, n, dtype=np.int64) * 4,
        e2_idx=np.arange(1, n, dtype=np.int64) * 4 + 3,
        kind=np.full(m, VE, dtype=np.int64),
    )
    contacts.state[:] = LOCK
    return system, contacts


class TestPartitionBlocks:
    def test_deterministic_across_calls(self):
        system = build_brick_wall(4, 6)
        labels_a, stats_a = partition_blocks(system, 3, margin=0.1)
        labels_b, stats_b = partition_blocks(system, 3, margin=0.1)
        np.testing.assert_array_equal(labels_a, labels_b)
        np.testing.assert_array_equal(stats_a.counts, stats_b.counts)
        assert stats_a.cut_fraction == stats_b.cut_fraction
        assert stats_a.imbalance == stats_b.imbalance

    def test_single_domain_is_trivial(self):
        system = build_brick_wall(2, 3)
        labels, stats = partition_blocks(system, 1, margin=0.1)
        np.testing.assert_array_equal(labels, 0)
        assert stats.cut_fraction == 0.0
        assert stats.imbalance == 1.0

    @pytest.mark.parametrize("method", METHODS)
    def test_every_method_covers_all_blocks(self, method):
        system = build_brick_wall(4, 6)
        labels, stats = partition_blocks(system, 4, margin=0.1, method=method)
        assert labels.shape == (system.n_blocks,)
        assert set(np.unique(labels)) == {0, 1, 2, 3}
        assert stats.counts.sum() == system.n_blocks

    def test_balanced_counts(self):
        system = build_brick_wall(4, 6)
        for method in ("graph", "stripe"):
            _, stats = partition_blocks(system, 4, margin=0.1, method=method)
            assert stats.counts.max() - stats.counts.min() <= 1
            assert stats.imbalance < 1.2

    def test_stripe_labels_are_spatial(self):
        system = build_brick_wall(4, 8)
        labels, _ = partition_blocks(system, 2, margin=0.1, method="stripe")
        x = system.centroids[:, 0]
        # every left-domain block sits left of every right-domain block
        assert x[labels == 0].max() <= x[labels == 1].min()

    def test_auto_falls_back_to_stripe_when_disconnected(self):
        system = two_islands()
        auto, _ = partition_blocks(system, 2, margin=0.1, method="auto")
        stripe, _ = partition_blocks(system, 2, margin=0.1, method="stripe")
        np.testing.assert_array_equal(auto, stripe)

    def test_graph_cut_no_worse_than_stripe_on_wall(self):
        system = build_brick_wall(4, 6)
        _, graph = partition_blocks(system, 2, margin=0.1, method="graph")
        _, stripe = partition_blocks(system, 2, margin=0.1, method="stripe")
        assert graph.cut_fraction <= stripe.cut_fraction

    def test_contacts_drive_the_graph(self):
        system, contacts = chain_contacts(6)
        labels, stats = partition_blocks(
            system, 2, method="graph", contacts=contacts
        )
        # a 6-chain split in two cuts exactly one of its five edges
        assert stats.cut_fraction == pytest.approx(1.0 / 5.0)
        np.testing.assert_array_equal(np.sort(stats.counts), [3, 3])
        # the split is contiguous along the chain
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]

    def test_validation(self):
        system = build_brick_wall(2, 2)
        with pytest.raises(ValueError, match="n_domains"):
            partition_blocks(system, 0)
        with pytest.raises(ValueError, match="method"):
            partition_blocks(system, 2, method="bogus")


class TestStatsAndAdjacency:
    def test_stats_without_edges(self):
        labels = np.array([0, 0, 1, 1])
        empty = np.empty(0, dtype=np.int64)
        stats = partition_stats(labels, 2, empty, empty)
        assert isinstance(stats, PartitionStats)
        assert stats.cut_fraction == 0.0
        np.testing.assert_array_equal(stats.counts, [2, 2])

    def test_adjacency_from_broad_phase(self):
        system = two_islands()
        i, j = adjacency_pairs(system, margin=0.1)
        # neighbours touch within each island; islands never couple
        assert i.size == 4
        labels_island = (system.centroids[:, 0] > 50.0).astype(int)
        np.testing.assert_array_equal(labels_island[i], labels_island[j])

    def test_adjacency_from_contacts_matches_graph(self):
        system, contacts = chain_contacts(4)
        i, j = adjacency_pairs(system, contacts=contacts)
        pairs = set(zip(i.tolist(), j.tolist()))
        assert pairs == {(0, 1), (1, 2), (2, 3)}

    def test_gpu_multi_reexport_is_same_object(self):
        import repro.domain as domain
        import repro.gpu.multi as multi

        assert multi.PartitionStats is domain.PartitionStats
