"""DomainEngine: the executable multi-device path.

The acceptance pin: a seeded, dtype-pinned run is **bit-identical** to
the single-device serial engine at every domain count.
"""

import numpy as np
import pytest

from repro.core.state import SimulationControls
from repro.engine.domain_engine import DomainEngine
from repro.engine.serial_engine import SerialEngine
from repro.meshing.slope_models import build_brick_wall

STEPS = 3


def controls() -> SimulationControls:
    return SimulationControls(time_step=1e-3, dynamic=True)


def run(engine_cls, **kw):
    system = build_brick_wall(3, 4)
    eng = engine_cls(system, controls(), **kw)
    result = eng.run(steps=STEPS)
    return eng, result


class TestBitIdenticalPin:
    @pytest.mark.parametrize("n_domains", [1, 2, 4])
    def test_identical_to_serial_engine(self, n_domains):
        serial, ref = run(SerialEngine)
        domain, res = run(DomainEngine, n_domains=n_domains)
        np.testing.assert_array_equal(
            domain.system.vertices, serial.system.vertices
        )
        np.testing.assert_array_equal(
            domain.system.velocities, serial.system.velocities
        )
        np.testing.assert_array_equal(
            domain.system.centroids, serial.system.centroids
        )
        assert res.total_cg_iterations == ref.total_cg_iterations
        assert res.n_steps == ref.n_steps == STEPS

    def test_stripe_partition_also_identical(self):
        serial, _ = run(SerialEngine)
        domain, _ = run(
            DomainEngine, n_domains=2, partition_method="stripe"
        )
        np.testing.assert_array_equal(
            domain.system.vertices, serial.system.vertices
        )

    def test_domain_runs_deterministic_across_calls(self):
        a, res_a = run(DomainEngine, n_domains=2)
        b, res_b = run(DomainEngine, n_domains=2)
        np.testing.assert_array_equal(a.system.vertices, b.system.vertices)
        assert res_a.total_cg_iterations == res_b.total_cg_iterations
        assert a.halo_bytes == b.halo_bytes


class TestObservability:
    def test_halo_bytes_metered(self):
        eng, _ = run(DomainEngine, n_domains=2)
        assert eng.halo_bytes > 0
        single, _ = run(DomainEngine, n_domains=1)
        assert single.halo_bytes == 0.0

    def test_partition_gauges_published(self):
        eng, _ = run(DomainEngine, n_domains=2)
        assert eng.metrics.gauge("domain.imbalance").value >= 1.0
        assert 0.0 <= eng.metrics.gauge("domain.cut_fraction").value <= 1.0
        assert eng.metrics.gauge("domain.cut_contacts").value >= 1.0

    def test_domain_device_times(self):
        eng, _ = run(DomainEngine, n_domains=3)
        times = eng.domain_device_times()
        assert len(times) == 3
        assert all(t > 0.0 for t in times)

    def test_partition_stats_exposed(self):
        eng, _ = run(DomainEngine, n_domains=2)
        assert eng.partition_stats.counts.sum() == eng.system.n_blocks
        assert eng.labels.shape == (eng.system.n_blocks,)


class TestRunnerIntegration:
    def test_make_engine_builds_domain_engine(self):
        from types import SimpleNamespace

        from repro.engine.runner import make_engine

        spec = SimpleNamespace(engine="domain", profile="k40", n_domains=3)
        system = build_brick_wall(2, 3)
        eng = make_engine(spec, system, controls())
        assert isinstance(eng, DomainEngine)
        assert eng.n_domains == 3
