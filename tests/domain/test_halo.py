"""Ownership maps, exchange plans, and the metered halo exchange."""

import numpy as np
import pytest

from repro.assembly.global_matrix import BS
from repro.domain.halo import (
    DomainMap,
    HaloExchanger,
    build_exchange_plan,
    ghost_contacts,
    make_domain_devices,
)
from repro.gpu.device import K40
from repro.obs.metrics import MetricsRegistry
from repro.spmv.synthetic import synthetic_block_matrix

N, M = 12, 20


@pytest.fixture
def matrix():
    return synthetic_block_matrix(N, M, seed=7)


def setup(matrix, n_domains, labels=None, metrics=None, inject=None):
    if labels is None:
        labels = np.arange(N, dtype=np.int64) * n_domains // N
    dmap = DomainMap.from_labels(labels, n_domains)
    plan = build_exchange_plan(dmap, matrix.rows, matrix.cols)
    exchanger = HaloExchanger(
        dmap, plan, make_domain_devices(n_domains, K40),
        metrics=metrics, inject=inject,
    )
    return dmap, plan, exchanger


class TestDomainMap:
    def test_owned_partitions_all_blocks(self, matrix):
        dmap, _, _ = setup(matrix, 3)
        all_owned = np.concatenate(dmap.owned)
        np.testing.assert_array_equal(np.sort(all_owned), np.arange(N))

    def test_local_indexes_into_owner(self, matrix):
        dmap, _, _ = setup(matrix, 3)
        for d in range(3):
            np.testing.assert_array_equal(
                dmap.local[dmap.owned[d]], np.arange(dmap.owned[d].size)
            )


class TestExchangePlan:
    def test_ghosts_are_cross_domain(self, matrix):
        dmap, plan, _ = setup(matrix, 3)
        for d in range(3):
            assert np.all(dmap.labels[plan.ghosts[d]] != d)

    def test_ghosts_cover_every_cut_entry(self, matrix):
        dmap, plan, _ = setup(matrix, 3)
        rows, cols = matrix.rows, matrix.cols
        for d in range(3):
            ghost = set(plan.ghosts[d].tolist())
            lab = dmap.labels
            for r, c in zip(rows.tolist(), cols.tolist()):
                if lab[r] == d and lab[c] != d:
                    assert c in ghost
                if lab[c] == d and lab[r] != d:
                    assert r in ghost

    def test_slots_owned_first_then_ghosts(self, matrix):
        dmap, plan, _ = setup(matrix, 2)
        for d in range(2):
            own = dmap.owned[d]
            slot = plan.slots[d]
            np.testing.assert_array_equal(slot[own], np.arange(own.size))
            np.testing.assert_array_equal(
                slot[plan.ghosts[d]],
                own.size + np.arange(plan.ghosts[d].size),
            )

    def test_sends_ship_exactly_the_ghosts(self, matrix):
        dmap, plan, _ = setup(matrix, 3)
        for d in range(3):
            shipped = [ids for src, dst, ids in plan.sends if dst == d]
            got = np.sort(np.concatenate(shipped)) if shipped else \
                np.empty(0, dtype=np.int64)
            np.testing.assert_array_equal(got, plan.ghosts[d])
        for src, dst, ids in plan.sends:
            assert src != dst
            assert np.all(dmap.labels[ids] == src)


class TestGhostContacts:
    def test_cut_contacts_duplicated_on_both_owners(self):
        labels = np.array([0, 0, 1, 1], dtype=np.int64)
        dmap = DomainMap.from_labels(labels, 2)
        block_i = np.array([0, 1, 2], dtype=np.int64)
        block_j = np.array([1, 2, 3], dtype=np.int64)
        per_domain, n_cut = ghost_contacts(dmap, block_i, block_j)
        assert n_cut == 1  # only contact 1-2 crosses
        np.testing.assert_array_equal(per_domain[0], [0, 1])
        np.testing.assert_array_equal(per_domain[1], [1, 2])


class TestHaloExchanger:
    def test_scatter_gather_round_trip_bitwise(self, matrix):
        _, _, ex = setup(matrix, 3)
        rng = np.random.default_rng(0)
        x = rng.normal(size=N * BS)
        segments = ex.scatter(x)
        np.testing.assert_array_equal(ex.gather(segments), x)

    def test_exchange_refreshes_ghost_values(self, matrix):
        dmap, plan, ex = setup(matrix, 2)
        rng = np.random.default_rng(1)
        x = rng.normal(size=N * BS)
        extended = ex.exchange(ex.scatter(x))
        xb = x.reshape(N, BS)
        for d in range(2):
            ext = extended[d].reshape(-1, BS)
            np.testing.assert_array_equal(ext[: dmap.owned[d].size],
                                          xb[dmap.owned[d]])
            np.testing.assert_array_equal(
                ext[plan.slots[d][plan.ghosts[d]]], xb[plan.ghosts[d]]
            )

    def test_halo_bytes_metered(self, matrix):
        metrics = MetricsRegistry()
        dmap, plan, ex = setup(matrix, 2, metrics=metrics)
        x = np.ones(N * BS)
        ex.exchange(ex.scatter(x))
        expected = sum(
            ids.size * BS * 8 for _, _, ids in plan.sends
        )
        assert metrics.counter("domain.halo_bytes").value == expected
        assert expected > 0

    def test_transfers_priced_on_every_device(self, matrix):
        _, _, ex = setup(matrix, 2)
        ex.allreduce()
        for dev in ex.devices:
            times = dev.time_by_module()
            assert times.get("halo_exchange", 0.0) > 0.0

    def test_gather_solution_applies_chaos_hook(self, matrix):
        seen = []

        def inject(buf):
            seen.append(buf.copy())
            buf[0] = 42.0
            return buf

        _, _, ex = setup(matrix, 2, inject=inject)
        x = np.zeros(N * BS)
        out = ex.gather(ex.scatter(x), solution=True)
        assert len(seen) == 1
        assert out[0] == 42.0
        # the plain (non-solution) gather never invokes the hook
        ex.gather(ex.scatter(x))
        assert len(seen) == 1
