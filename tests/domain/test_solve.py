"""Distributed SpMV and PCG: bit-identity and the domain preconditioners."""

import numpy as np
import pytest

from repro.assembly.global_matrix import BS
from repro.domain.assembly import domain_spmv, split_matrix
from repro.domain.halo import (
    DomainMap,
    HaloExchanger,
    build_exchange_plan,
    make_domain_devices,
)
from repro.domain.solve import (
    distributed_pcg,
    make_domain_preconditioner,
)
from repro.gpu.device import K40
from repro.obs.metrics import MetricsRegistry
from repro.solvers.cg import pcg
from repro.solvers.preconditioners import make_preconditioner
from repro.spmv.hsbcsr import HSBCSRMatrix, hsbcsr_spmv
from repro.spmv.synthetic import synthetic_block_matrix

N, M = 14, 24


def setup(matrix, n_domains, metrics=None):
    labels = np.arange(matrix.n, dtype=np.int64) * n_domains // matrix.n
    dmap = DomainMap.from_labels(labels, n_domains)
    plan = build_exchange_plan(dmap, matrix.rows, matrix.cols)
    exchanger = HaloExchanger(
        dmap, plan, make_domain_devices(n_domains, K40), metrics=metrics
    )
    domains = split_matrix(matrix, dmap, plan)
    return domains, exchanger


class TestDomainSpmv:
    @pytest.mark.parametrize("n_domains", [1, 2, 3, 4])
    def test_bitwise_equal_to_global_spmv(self, n_domains):
        matrix = synthetic_block_matrix(N, M, seed=3)
        domains, ex = setup(matrix, n_domains)
        rng = np.random.default_rng(5)
        x = rng.normal(size=N * BS)
        ref = hsbcsr_spmv(HSBCSRMatrix.from_block_matrix(matrix), x)
        extended = ex.exchange(ex.scatter(x))
        y = np.empty_like(x)
        for dm in domains:
            y[ex._dof[dm.domain]] = domain_spmv(dm, extended[dm.domain])
        np.testing.assert_array_equal(y, ref)

    def test_empty_offdiag(self):
        matrix = synthetic_block_matrix(4, 0, seed=0)
        domains, ex = setup(matrix, 2)
        x = np.arange(4.0 * BS)
        ref = hsbcsr_spmv(HSBCSRMatrix.from_block_matrix(matrix), x)
        extended = ex.exchange(ex.scatter(x))
        y = np.empty_like(x)
        for dm in domains:
            y[ex._dof[dm.domain]] = domain_spmv(dm, extended[dm.domain])
        np.testing.assert_array_equal(y, ref)

    def test_cost_recorded_on_device(self):
        matrix = synthetic_block_matrix(N, M, seed=3)
        domains, ex = setup(matrix, 2)
        x = np.ones(N * BS)
        extended = ex.exchange(ex.scatter(x))
        domain_spmv(domains[0], extended[0], ex.devices[0])
        times = ex.devices[0].time_by_module()
        assert times.get("equation_solving", 0.0) > 0.0


class TestDistributedPcg:
    @pytest.mark.parametrize("n_domains", [1, 2, 4])
    def test_identity_bit_identical_to_serial(self, n_domains):
        matrix = synthetic_block_matrix(N, M, seed=11)
        domains, ex = setup(matrix, n_domains)
        rng = np.random.default_rng(2)
        b = rng.normal(size=N * BS)
        ref = pcg(HSBCSRMatrix.from_block_matrix(matrix), b, tol=1e-10)
        res = distributed_pcg(domains, ex, b, tol=1e-10)
        assert res.iterations == ref.iterations
        assert res.converged and ref.converged
        np.testing.assert_array_equal(res.x, ref.x)
        assert res.residuals == ref.residuals

    @pytest.mark.parametrize("name", ["jacobi", "bj", "ssor"])
    def test_wrapped_preconditioners_bit_identical(self, name):
        matrix = synthetic_block_matrix(N, M, seed=11)
        domains, ex = setup(matrix, 3)
        rng = np.random.default_rng(2)
        b = rng.normal(size=N * BS)
        ref = pcg(
            HSBCSRMatrix.from_block_matrix(matrix), b,
            preconditioner=make_preconditioner(name, matrix), tol=1e-10,
        )
        pre = make_domain_preconditioner(name, matrix, domains, ex)
        res = distributed_pcg(domains, ex, b, preconditioner=pre, tol=1e-10)
        assert res.iterations == ref.iterations
        np.testing.assert_array_equal(res.x, ref.x)
        assert res.residuals == ref.residuals

    def test_warm_start_bit_identical(self):
        matrix = synthetic_block_matrix(N, M, seed=11)
        domains, ex = setup(matrix, 2)
        rng = np.random.default_rng(4)
        b = rng.normal(size=N * BS)
        x0 = rng.normal(size=N * BS)
        ref = pcg(HSBCSRMatrix.from_block_matrix(matrix), b, x0=x0, tol=1e-10)
        res = distributed_pcg(domains, ex, b, x0=x0, tol=1e-10)
        assert res.iterations == ref.iterations
        np.testing.assert_array_equal(res.x, ref.x)

    def test_zero_rhs_short_circuits(self):
        matrix = synthetic_block_matrix(N, M, seed=1)
        domains, ex = setup(matrix, 2)
        res = distributed_pcg(domains, ex, np.zeros(N * BS))
        assert res.converged
        assert res.iterations == 0
        np.testing.assert_array_equal(res.x, 0.0)

    def test_validation(self):
        matrix = synthetic_block_matrix(N, M, seed=1)
        domains, ex = setup(matrix, 2)
        with pytest.raises(ValueError):
            distributed_pcg(domains, ex, np.zeros(3))
        with pytest.raises(ValueError, match="tol"):
            distributed_pcg(domains, ex, np.ones(N * BS), tol=0.0)
        with pytest.raises(ValueError, match="max_iterations"):
            distributed_pcg(domains, ex, np.ones(N * BS), max_iterations=0)

    def test_observes_metrics(self):
        metrics = MetricsRegistry()
        matrix = synthetic_block_matrix(N, M, seed=1)
        domains, ex = setup(matrix, 2, metrics=metrics)
        rng = np.random.default_rng(0)
        distributed_pcg(domains, ex, rng.normal(size=N * BS), metrics=metrics)
        assert metrics.counter("domain.halo_bytes").value > 0


class TestDomainPreconditioners:
    def solve_with(self, name, n_domains=3):
        matrix = synthetic_block_matrix(N, M, seed=11, coupling=0.4)
        domains, ex = setup(matrix, n_domains)
        rng = np.random.default_rng(2)
        b = rng.normal(size=N * BS)
        pre = (
            make_domain_preconditioner(name, matrix, domains, ex)
            if name is not None else None
        )
        return distributed_pcg(domains, ex, b, preconditioner=pre, tol=1e-10)

    def test_domain_bj_converges_and_accelerates(self):
        plain = self.solve_with(None)
        bj = self.solve_with("domain_bj")
        assert bj.converged
        assert bj.iterations <= plain.iterations

    def test_schwarz_converges_no_slower_than_domain_bj(self):
        bj = self.solve_with("domain_bj")
        schwarz = self.solve_with("schwarz")
        assert schwarz.converged
        # overlap can only add coupling information
        assert schwarz.iterations <= bj.iterations

    def test_single_domain_exact_solve_in_one_iteration(self):
        # with one domain, domain_bj is an exact inverse: 1 iteration
        res = self.solve_with("domain_bj", n_domains=1)
        assert res.converged
        assert res.iterations == 1
