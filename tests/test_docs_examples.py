"""Execute the fenced python examples in ``docs/*.md``.

Each documentation page's ```python blocks run sequentially in one
shared namespace (so later blocks may use names defined by earlier
ones, exactly as a reader following the page would). Blocks whose info
string contains ``no-run`` (```python no-run) are extracted but
skipped — that marker is reserved for examples too expensive for CI,
not for broken ones. Execution happens with the working directory set
to a temp dir, so examples that write relative paths (``results/...``,
``steps.csv``) stay hermetic.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

DOCS_DIR = Path(__file__).resolve().parent.parent / "docs"
DOC_PAGES = sorted(DOCS_DIR.glob("*.md"))

_FENCE = re.compile(r"^```([^\n`]*)\n(.*?)^```[ \t]*$", re.M | re.S)


def python_blocks(path: Path) -> list[dict]:
    """All fenced python blocks of one page, in document order."""
    text = path.read_text(encoding="utf-8")
    blocks = []
    for match in _FENCE.finditer(text):
        info = match.group(1).strip().split()
        if not info or info[0] != "python":
            continue
        blocks.append({
            # first line of the code body, 1-based, for tracebacks
            "line": text.count("\n", 0, match.end(1)) + 2,
            "run": "no-run" not in info[1:],
            "code": match.group(2),
        })
    return blocks


def test_extractor_sees_the_docs():
    """Guard against the extractor (or the docs) silently going empty."""
    names = {p.name for p in DOC_PAGES}
    assert {"architecture.md", "benchmarking.md", "usage.md",
            "robustness.md", "performance.md"} <= names
    for name in ("usage.md", "robustness.md", "benchmarking.md",
                 "performance.md"):
        blocks = python_blocks(DOCS_DIR / name)
        assert any(b["run"] for b in blocks), f"no runnable blocks: {name}"


def test_no_run_marker_is_honoured():
    blocks = python_blocks(DOCS_DIR / "usage.md")
    assert any(not b["run"] for b in blocks)  # heavy examples stay marked


@pytest.mark.parametrize(
    "page", DOC_PAGES, ids=lambda p: p.name,
)
def test_docs_examples_execute(page, tmp_path, monkeypatch):
    blocks = python_blocks(page)
    if not any(b["run"] for b in blocks):
        pytest.skip(f"{page.name} has no runnable python blocks")
    monkeypatch.chdir(tmp_path)  # relative writes land in the temp dir
    namespace: dict = {"__name__": f"docs_{page.stem}"}
    for block in blocks:
        if not block["run"]:
            continue
        code = compile(block["code"],
                       f"{page.name}:{block['line']}", "exec")
        exec(code, namespace)  # noqa: S102 - the docs are trusted input
