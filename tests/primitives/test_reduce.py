import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives.reduce import device_reduce, segment_boundaries, segmented_reduce


class TestDeviceReduce:
    def test_sum(self, rng, device):
        x = rng.random(5000)
        assert device_reduce(x, device) == pytest.approx(x.sum())
        assert device.launches() == 2

    def test_small_single_launch(self, device):
        device_reduce(np.ones(8), device)
        assert device.launches() == 1

    def test_empty(self):
        assert device_reduce(np.zeros(0)) == 0.0


class TestSegmentBoundaries:
    def test_runs(self):
        keys = np.array([3, 3, 5, 5, 5, 9])
        np.testing.assert_array_equal(segment_boundaries(keys), [0, 2, 5])

    def test_all_distinct(self):
        keys = np.arange(4)
        np.testing.assert_array_equal(segment_boundaries(keys), [0, 1, 2, 3])

    def test_single_run(self):
        np.testing.assert_array_equal(segment_boundaries(np.zeros(5)), [0])

    def test_empty(self):
        assert segment_boundaries(np.zeros(0)).size == 0


class TestSegmentedReduce:
    def test_scalar_segments(self, device):
        vals = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        out = segmented_reduce(vals, np.array([0, 2], dtype=np.int64), device)
        np.testing.assert_allclose(out, [3.0, 12.0])
        assert device.launches() == 1

    def test_row_segments(self):
        vals = np.arange(12, dtype=float).reshape(4, 3)
        out = segmented_reduce(vals, np.array([0, 1, 3], dtype=np.int64))
        np.testing.assert_allclose(out[0], vals[0])
        np.testing.assert_allclose(out[1], vals[1] + vals[2])
        np.testing.assert_allclose(out[2], vals[3])

    def test_rejects_bad_starts(self):
        with pytest.raises(ValueError):
            segmented_reduce(np.ones(4), np.array([1, 2], dtype=np.int64))
        with pytest.raises(ValueError):
            segmented_reduce(np.ones(4), np.array([0, 0], dtype=np.int64))

    def test_assembly_idiom_matches_bincount(self, rng):
        # the Fig-4 idiom: sort contributions by key, reduce runs
        keys = rng.integers(0, 20, size=200)
        vals = rng.random(200)
        order = np.argsort(keys, kind="stable")
        sk, sv = keys[order], vals[order]
        starts = segment_boundaries(sk)
        sums = segmented_reduce(sv, starts)
        expect = np.bincount(keys, weights=vals, minlength=20)
        present = np.unique(keys)
        np.testing.assert_allclose(sums, expect[present])

    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_property_group_sums(self, key_list):
        keys = np.asarray(key_list, dtype=np.int64)
        vals = np.arange(keys.size, dtype=float)
        order = np.argsort(keys, kind="stable")
        starts = segment_boundaries(keys[order])
        sums = segmented_reduce(vals[order], starts)
        assert sums.sum() == pytest.approx(vals.sum())
