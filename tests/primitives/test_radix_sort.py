import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.primitives.radix_sort import radix_sort_keys, radix_sort_pairs


class TestRadixSortPairs:
    def test_sorts(self, rng):
        keys = rng.integers(0, 10_000, size=2000)
        sorted_keys, perm = radix_sort_pairs(keys)
        np.testing.assert_array_equal(sorted_keys, np.sort(keys))
        np.testing.assert_array_equal(keys[perm], sorted_keys)

    def test_stable(self):
        keys = np.array([2, 1, 2, 1, 2], dtype=np.int64)
        _, perm = radix_sort_pairs(keys)
        # equal keys keep original relative order
        np.testing.assert_array_equal(perm, [1, 3, 0, 2, 4])

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            radix_sort_pairs(np.array([-1, 2]))

    def test_rejects_floats(self):
        with pytest.raises(TypeError):
            radix_sort_pairs(np.array([1.5, 2.5]))

    def test_empty(self):
        sorted_keys, perm = radix_sort_pairs(np.zeros(0, dtype=np.int64))
        assert sorted_keys.size == 0 and perm.size == 0

    def test_pass_count_scales_with_key_bits(self, rng):
        from repro.gpu.device import K40
        from repro.gpu.kernel import VirtualDevice

        keys = rng.integers(0, 2**16, size=512).astype(np.int64)
        few, many = VirtualDevice(K40), VirtualDevice(K40)
        radix_sort_pairs(keys, None, few, key_bits=16, digit_bits=8)
        radix_sort_pairs(keys, None, many, key_bits=16, digit_bits=4)
        assert many.launches() == 2 * few.launches()

    def test_identity_scatter_models_cheaper_than_random(self, rng):
        # Keys already grouped per digit scatter coalesced (identity
        # destinations); random keys scatter to scattered destinations.
        from repro.gpu.device import K40
        from repro.gpu.kernel import VirtualDevice

        n = 1 << 12
        constant_keys = np.zeros(n, dtype=np.int64)
        random_keys = rng.permutation(n).astype(np.int64)
        d_const, d_random = VirtualDevice(K40), VirtualDevice(K40)
        radix_sort_pairs(constant_keys, None, d_const, key_bits=12)
        radix_sort_pairs(random_keys, None, d_random, key_bits=12)
        assert (
            d_const.total_counters.global_txn_written
            < d_random.total_counters.global_txn_written
        )

    @given(
        hnp.arrays(
            np.int64,
            st.integers(min_value=0, max_value=400),
            elements=st.integers(min_value=0, max_value=2**40),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_sorted_permutation(self, keys):
        sorted_keys, perm = radix_sort_pairs(keys)
        np.testing.assert_array_equal(sorted_keys, np.sort(keys))
        np.testing.assert_array_equal(np.sort(perm), np.arange(keys.size))


class TestRadixSortKeys:
    def test_matches_pairs(self, rng):
        keys = rng.integers(0, 99, size=301)
        np.testing.assert_array_equal(radix_sort_keys(keys), np.sort(keys))
