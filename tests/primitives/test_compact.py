import numpy as np
import pytest

from repro.primitives.compact import partition_by_label, stream_compact


class TestStreamCompact:
    def test_matches_flatnonzero(self, rng, device):
        mask = rng.random(500) < 0.4
        np.testing.assert_array_equal(
            stream_compact(mask, device), np.flatnonzero(mask)
        )
        assert device.launches() >= 2  # scan + scatter

    def test_all_false(self):
        assert stream_compact(np.zeros(10, dtype=bool)).size == 0

    def test_all_true(self):
        np.testing.assert_array_equal(
            stream_compact(np.ones(5, dtype=bool)), np.arange(5)
        )

    def test_empty(self):
        assert stream_compact(np.zeros(0, dtype=bool)).size == 0


class TestPartitionByLabel:
    def test_groups_contiguous(self, rng):
        labels = rng.integers(0, 4, size=300)
        perm, offsets = partition_by_label(labels, 4)
        grouped = labels[perm]
        for g in range(4):
            seg = grouped[offsets[g] : offsets[g + 1]]
            assert (seg == g).all()
            assert seg.size == (labels == g).sum()

    def test_stability(self):
        labels = np.array([1, 0, 1, 0], dtype=np.int64)
        perm, offsets = partition_by_label(labels, 2)
        np.testing.assert_array_equal(perm, [1, 3, 0, 2])

    def test_perm_is_permutation(self, rng):
        labels = rng.integers(0, 7, size=97)
        perm, _ = partition_by_label(labels, 7)
        np.testing.assert_array_equal(np.sort(perm), np.arange(97))

    def test_offsets_cover_all(self, rng):
        labels = rng.integers(0, 3, size=50)
        _, offsets = partition_by_label(labels, 3)
        assert offsets[0] == 0 and offsets[-1] == 50

    def test_missing_labels_empty_groups(self):
        labels = np.array([2, 2], dtype=np.int64)
        _, offsets = partition_by_label(labels, 4)
        np.testing.assert_array_equal(offsets, [0, 0, 0, 2, 2])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            partition_by_label(np.array([0, 5], dtype=np.int64), 3)

    def test_float_labels_rejected(self):
        with pytest.raises(TypeError):
            partition_by_label(np.array([0.0, 1.0]), 2)
