import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.primitives.scan import exclusive_scan, inclusive_scan


class TestInclusiveScan:
    def test_matches_cumsum(self, rng):
        x = rng.integers(0, 100, size=1000)
        np.testing.assert_array_equal(inclusive_scan(x), np.cumsum(x))

    def test_records_launches(self, device):
        inclusive_scan(np.ones(10_000, dtype=np.int64), device)
        assert device.launches() >= 3  # block scan + sums scan + uniform add

    def test_small_array_single_launch(self, device):
        inclusive_scan(np.ones(10, dtype=np.int64), device)
        assert device.launches() == 1

    def test_empty(self):
        assert inclusive_scan(np.zeros(0, dtype=np.int64)).size == 0

    def test_shuffle_cheaper_than_shared_tree(self, device, cpu_device):
        from repro.gpu.device import K40
        from repro.gpu.kernel import VirtualDevice

        x = np.ones(1 << 18, dtype=np.int64)
        d_shfl, d_tree = VirtualDevice(K40), VirtualDevice(K40)
        inclusive_scan(x, d_shfl, use_shuffle=True)
        inclusive_scan(x, d_tree, use_shuffle=False)
        # the paper replaced shared-tree reductions with shuffles for a win
        assert (
            d_shfl.total_counters.shared_accesses
            < d_tree.total_counters.shared_accesses
        )


class TestExclusiveScan:
    def test_shifted_cumsum(self, rng):
        x = rng.integers(0, 100, size=257)
        out = exclusive_scan(x)
        assert out[0] == 0
        np.testing.assert_array_equal(out[1:], np.cumsum(x)[:-1])

    def test_single_element(self):
        out = exclusive_scan(np.array([5]))
        np.testing.assert_array_equal(out, [0])

    def test_compaction_idiom(self, rng):
        # exclusive scan of a 0/1 mask gives output positions
        mask = rng.random(100) < 0.3
        pos = exclusive_scan(mask.astype(np.int64))
        assert pos[-1] + mask[-1] == mask.sum()

    @given(
        hnp.arrays(
            np.int64,
            st.integers(min_value=0, max_value=300),
            elements=st.integers(min_value=-(2**30), max_value=2**30),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_prefix_sums(self, x):
        exc = exclusive_scan(x)
        inc = inclusive_scan(x)
        assert exc.size == x.size and inc.size == x.size
        if x.size:
            np.testing.assert_array_equal(inc - exc, x)
            assert exc[0] == 0
