import numpy as np
import pytest

from repro.primitives.sorted_search import lower_bound, sorted_search


class TestSortedSearch:
    def test_matches_searchsorted(self, rng, device):
        hay = np.sort(rng.integers(0, 1000, size=200))
        needles = rng.integers(0, 1000, size=50)
        np.testing.assert_array_equal(
            sorted_search(hay, needles, device),
            np.searchsorted(hay, needles),
        )
        assert device.launches() == 1

    def test_side_right(self):
        hay = np.array([1, 2, 2, 3])
        assert sorted_search(hay, np.array([2]), side="right")[0] == 3

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError, match="sorted"):
            sorted_search(np.array([3, 1]), np.array([2]))

    def test_rejects_bad_side(self):
        with pytest.raises(ValueError, match="side"):
            sorted_search(np.array([1]), np.array([1]), side="middle")

    def test_lower_bound_alias(self):
        hay = np.array([10, 20, 30])
        np.testing.assert_array_equal(
            lower_bound(hay, np.array([20])), np.array([1])
        )

    def test_contact_transfer_idiom(self, rng):
        # find each previous contact inside the current sorted contact keys
        current = np.sort(rng.integers(0, 100, size=60))
        previous = rng.integers(0, 100, size=20)
        lo = sorted_search(current, previous, side="left")
        hi = sorted_search(current, previous, side="right")
        found = hi > lo
        for key, f in zip(previous, found):
            assert f == (key in current)
