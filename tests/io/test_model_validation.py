"""Load-time model validation: typed rejection of malformed inputs."""

import numpy as np
import pytest

from repro.core.blocks import Block, BlockSystem
from repro.core.materials import BlockMaterial
from repro.io.model_io import load_system, save_system
from repro.util.validation import (
    ModelValidationError,
    validate_model_arrays,
    validate_system,
)

SQ = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])


def two_blocks() -> BlockSystem:
    return BlockSystem([Block(SQ), Block(SQ + np.array([2.0, 0.0]))])


def arrays(*polys):
    vertices = np.concatenate(polys)
    offsets = np.zeros(len(polys) + 1, dtype=np.int64)
    np.cumsum([p.shape[0] for p in polys], out=offsets[1:])
    return vertices, offsets


# ----------------------------------------------------------------------
# validate_model_arrays
# ----------------------------------------------------------------------

def test_valid_arrays_pass():
    v, o = arrays(SQ, SQ + np.array([2.0, 0.0]))
    validate_model_arrays(v, o)
    validate_system(two_blocks())


def test_nonfinite_vertex_names_block():
    poly = SQ + np.array([2.0, 0.0])
    poly = poly.copy()
    poly[2, 1] = np.nan
    v, o = arrays(SQ, poly)
    with pytest.raises(ModelValidationError, match="non-finite") as exc:
        validate_model_arrays(v, o)
    assert exc.value.block == 1


def test_too_few_vertices():
    v, o = arrays(SQ, SQ[:2])
    with pytest.raises(ModelValidationError, match="need >= 3") as exc:
        validate_model_arrays(v, o)
    assert exc.value.block == 1


def test_zero_area_polygon():
    sliver = np.array([[0.0, 5.0], [1.0, 5.0], [2.0, 5.0]])  # collinear
    v, o = arrays(SQ, sliver)
    with pytest.raises(ModelValidationError, match="zero area") as exc:
        validate_model_arrays(v, o)
    assert exc.value.block == 1


def test_zero_area_is_scale_relative():
    # the same collinear sliver must be rejected at any model scale
    for s in (1e-6, 1.0, 1e6):
        sliver = s * np.array([[0.0, 5.0], [1.0, 5.0], [2.0, 5.0]])
        v, o = arrays(s * SQ, sliver)
        with pytest.raises(ModelValidationError, match="zero area"):
            validate_model_arrays(v, o)


def test_self_intersecting_polygon():
    bowtie = np.array(
        [[0.0, 5.0], [2.0, 5.0], [0.5, 6.0], [1.5, 6.0]]
    )  # positive signed area, crossing edges
    v, o = arrays(SQ, bowtie)
    with pytest.raises(ModelValidationError, match="non-simple") as exc:
        validate_model_arrays(v, o)
    assert exc.value.block == 1


def test_duplicate_blocks():
    v, o = arrays(SQ, SQ + np.array([2.0, 0.0]), SQ.copy())
    with pytest.raises(ModelValidationError, match="duplicate") as exc:
        validate_model_arrays(v, o)
    assert exc.value.block == 2
    assert "block 0" in str(exc.value)


def test_duplicate_detection_is_rotation_invariant():
    rolled = np.roll(SQ, 1, axis=0)  # same polygon, different start vertex
    v, o = arrays(SQ, rolled)
    with pytest.raises(ModelValidationError, match="duplicate"):
        validate_model_arrays(v, o)


def test_bad_offsets():
    v, _ = arrays(SQ)
    with pytest.raises(ModelValidationError, match="start at 0"):
        validate_model_arrays(v, np.array([1, 4]))
    with pytest.raises(ModelValidationError, match="empty vertex range"):
        validate_model_arrays(v, np.array([0, 4, 4]))
    with pytest.raises(ModelValidationError, match="offsets end"):
        validate_model_arrays(v, np.array([0, 3]))


def test_material_id_bounds():
    v, o = arrays(SQ, SQ + np.array([2.0, 0.0]))
    validate_model_arrays(v, o, np.array([0, 1]), n_materials=2)
    with pytest.raises(ModelValidationError, match="out of range") as exc:
        validate_model_arrays(v, o, np.array([0, 2]), n_materials=2)
    assert exc.value.block == 1
    with pytest.raises(ModelValidationError, match="shape"):
        validate_model_arrays(v, o, np.array([0]), n_materials=2)


def test_boundary_condition_indices():
    v, o = arrays(SQ)
    with pytest.raises(ModelValidationError, match="fixed point"):
        validate_model_arrays(v, o, fixed_points=[(3, 0.0, 0.0)])
    with pytest.raises(ModelValidationError, match="load point"):
        validate_model_arrays(v, o, load_points=[(-1, 0, 0, 0, 0)])


# ----------------------------------------------------------------------
# load_system integration
# ----------------------------------------------------------------------

def test_load_validates_by_default(tmp_path):
    system = two_blocks()
    system.fix_block(0)
    stem = tmp_path / "model"
    save_system(system, stem)
    loaded = load_system(stem)  # clean model loads fine
    assert loaded.n_blocks == 2

    # corrupt the persisted vertex array, keep the header
    data = dict(np.load(stem.with_suffix(".npz")))
    data["vertices"][5, 0] = np.inf
    np.savez_compressed(stem.with_suffix(".npz"), **data)
    with pytest.raises(ModelValidationError, match="non-finite") as exc:
        load_system(stem)
    assert exc.value.block == 1


def test_load_validate_opt_out(tmp_path):
    system = two_blocks()
    stem = tmp_path / "model"
    save_system(system, stem)
    # duplicate-block corruption that Block construction itself accepts
    data = dict(np.load(stem.with_suffix(".npz")))
    data["vertices"][4:8] = data["vertices"][0:4]
    np.savez_compressed(stem.with_suffix(".npz"), **data)
    with pytest.raises(ModelValidationError, match="duplicate"):
        load_system(stem)
    loaded = load_system(stem, validate=False)  # opt-out still loads
    assert loaded.n_blocks == 2


def test_error_is_value_error():
    # ModelValidationError must be catchable as ValueError (API promise)
    assert issubclass(ModelValidationError, ValueError)
