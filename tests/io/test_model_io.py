import numpy as np
import pytest

from repro.core.blocks import Block, BlockSystem
from repro.core.materials import BlockMaterial, JointMaterial
from repro.io.model_io import load_system, save_system

SQ = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])


@pytest.fixture
def system():
    s = BlockSystem(
        [
            Block(SQ, BlockMaterial(density=2000.0)),
            Block(SQ + 2, BlockMaterial(young=1e10)),
        ],
        JointMaterial(friction_angle_deg=25.0, cohesion=100.0),
    )
    s.fix_block(0)
    s.add_point_load(1, 2.5, 2.5, 1.0, -2.0)
    s.velocities[1, 1] = -3.0
    s.stresses[0, 0] = -5e4
    return s


class TestRoundTrip:
    def test_geometry(self, system, tmp_path):
        save_system(system, tmp_path / "model")
        loaded = load_system(tmp_path / "model")
        np.testing.assert_allclose(loaded.vertices, system.vertices)
        np.testing.assert_array_equal(loaded.offsets, system.offsets)

    def test_materials(self, system, tmp_path):
        save_system(system, tmp_path / "model")
        loaded = load_system(tmp_path / "model")
        assert loaded.material_of(0).density == 2000.0
        assert loaded.material_of(1).young == 1e10
        assert loaded.joint_material.friction_angle_deg == 25.0
        assert loaded.joint_material.cohesion == 100.0

    def test_state(self, system, tmp_path):
        save_system(system, tmp_path / "model")
        loaded = load_system(tmp_path / "model")
        np.testing.assert_allclose(loaded.velocities, system.velocities)
        np.testing.assert_allclose(loaded.stresses, system.stresses)

    def test_boundary_conditions(self, system, tmp_path):
        save_system(system, tmp_path / "model")
        loaded = load_system(tmp_path / "model")
        assert loaded.fixed_points == system.fixed_points
        assert loaded.load_points == system.load_points

    def test_wrong_format_rejected(self, tmp_path):
        (tmp_path / "bad.json").write_text('{"format": "other"}')
        (tmp_path / "bad.npz").write_bytes(b"")
        with pytest.raises(ValueError, match="not a repro"):
            load_system(tmp_path / "bad")

    def test_loaded_system_runs(self, system, tmp_path):
        from repro.core.state import SimulationControls
        from repro.engine.gpu_engine import GpuEngine

        save_system(system, tmp_path / "model")
        loaded = load_system(tmp_path / "model")
        r = GpuEngine(
            loaded,
            SimulationControls(time_step=1e-3, dynamic=True,
                               max_displacement_ratio=0.5),
        ).run(steps=3)
        assert r.n_steps == 3


class TestReporting:
    def test_comparison_report(self, tmp_path):
        from repro.io.reporting import ComparisonReport

        rep = ComparisonReport("Table II", "Case 1 speed-ups")
        rep.add("total speed-up (K40)", 48.72, 31.0)
        rep.add("contact detection", 117.69, 80.0)
        rep.note("scaled model: 400 blocks instead of 4361")
        text = rep.render()
        assert "48.72" in text
        assert "note:" in text
        path = rep.write(tmp_path)
        assert path.exists()
        assert "Table II" in path.read_text()

    def test_ratio_column(self):
        from repro.io.reporting import paper_vs_measured_table

        text = paper_vs_measured_table("X", "d", [("a", 2.0, 4.0)])
        assert "2" in text and "4" in text
