"""batch_io durability primitives: atomic writes, locks, stale takeover."""

import json
import os
import stat
import threading
import time

from repro.io import batch_io
from repro.io.batch_io import locked_fd, read_json, write_json_atomic


class TestAtomicWrite:
    def test_write_then_read_roundtrip(self, tmp_path):
        path = tmp_path / "nested" / "obj.json"
        write_json_atomic(path, {"a": 1, "b": [1, 2]})
        assert read_json(path) == {"a": 1, "b": [1, 2]}

    def test_no_tmp_litter_on_success(self, tmp_path):
        path = tmp_path / "obj.json"
        write_json_atomic(path, {"a": 1})
        assert [p.name for p in tmp_path.iterdir()] == ["obj.json"]

    def test_parent_directory_is_fsynced(self, tmp_path, monkeypatch):
        """The rename is only durable once the parent dir entry is synced."""
        synced_dirs = []
        real_fsync = os.fsync

        def spy_fsync(fd):
            try:
                if stat.S_ISDIR(os.fstat(fd).st_mode):
                    synced_dirs.append(fd)
            except OSError:
                pass
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", spy_fsync)
        write_json_atomic(tmp_path / "obj.json", {"a": 1})
        assert synced_dirs, "write_json_atomic never fsynced the parent dir"

    def test_read_json_missing_and_corrupt_return_none(self, tmp_path):
        assert read_json(tmp_path / "absent.json") is None
        torn = tmp_path / "torn.json"
        torn.write_text(json.dumps({"a": 1})[:-4])
        assert read_json(torn) is None


class TestLockedFd:
    def test_serialises_read_modify_write(self, tmp_path):
        counter = tmp_path / "seq"
        n_threads, n_incr = 8, 25

        def bump():
            for _ in range(n_incr):
                with locked_fd(counter) as fd:
                    raw = os.read(fd, 32)
                    value = int(raw) + 1 if raw.strip() else 1
                    os.lseek(fd, 0, os.SEEK_SET)
                    os.ftruncate(fd, 0)
                    os.write(fd, str(value).encode())

        threads = [threading.Thread(target=bump) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert int(counter.read_text()) == n_threads * n_incr


class TestSidecarStaleTakeover:
    """Regression: a crashed holder's sidecar must not wedge the queue."""

    def setup_method(self):
        batch_io.set_force_sidecar(True)

    def teardown_method(self):
        batch_io.set_force_sidecar(False)

    def test_fresh_sidecar_blocks_until_released(self, tmp_path):
        target = tmp_path / "seq"
        sidecar = str(target) + ".lock"
        os.close(os.open(sidecar, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        acquired = threading.Event()

        def contend():
            with locked_fd(target, stale_after=10.0):
                acquired.set()

        t = threading.Thread(target=contend, daemon=True)
        t.start()
        assert not acquired.wait(0.15)  # a live holder is respected
        os.unlink(sidecar)  # the holder releases
        assert acquired.wait(2.0)
        t.join()

    def test_stale_sidecar_is_taken_over(self, tmp_path):
        target = tmp_path / "seq"
        sidecar = str(target) + ".lock"
        os.close(os.open(sidecar, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        ancient = time.time() - 3600.0
        os.utime(sidecar, (ancient, ancient))
        start = time.monotonic()
        with locked_fd(target, stale_after=1.0) as fd:
            assert fd >= 0
        assert time.monotonic() - start < 5.0  # no spin-until-timeout
        # the takeover left no .stale litter and released the sidecar
        litter = [p.name for p in tmp_path.iterdir() if ".stale." in p.name]
        assert litter == []
        assert not os.path.exists(sidecar)

    def test_concurrent_takeovers_yield_exactly_one_holder_at_a_time(
        self, tmp_path
    ):
        """N contenders racing a stale sidecar: mutual exclusion holds."""
        target = tmp_path / "seq"
        sidecar = str(target) + ".lock"
        os.close(os.open(sidecar, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        ancient = time.time() - 3600.0
        os.utime(sidecar, (ancient, ancient))
        in_section = []
        overlaps = []
        gate = threading.Lock()

        def contend():
            with locked_fd(target, stale_after=0.5):
                with gate:
                    if in_section:
                        overlaps.append(True)
                    in_section.append(1)
                time.sleep(0.01)
                with gate:
                    in_section.pop()

        threads = [threading.Thread(target=contend) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert overlaps == []
