import numpy as np
import pytest

from repro.core.blocks import Block, BlockSystem
from repro.io.ascii_art import GLYPHS, render_snapshots, render_system

SQ = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])


@pytest.fixture
def two_blocks():
    return BlockSystem([Block(SQ), Block(SQ + np.array([2.0, 0.0]))])


class TestRenderSystem:
    def test_dimensions(self, two_blocks):
        out = render_system(two_blocks, width=40, height=10)
        lines = out.splitlines()
        assert len(lines) == 10
        assert all(len(l) == 40 for l in lines)

    def test_blocks_drawn_with_distinct_glyphs(self, two_blocks):
        out = render_system(two_blocks, width=60, height=12)
        assert GLYPHS[0] in out
        assert GLYPHS[1] in out

    def test_gap_between_blocks_blank(self, two_blocks):
        # the column band between x=1 and x=2 contains only spaces
        out = render_system(
            two_blocks, width=30, height=10,
            bounds=np.array([1.2, 0.2, 1.8, 0.8]),
        )
        assert set(out.replace("\n", "")) == {" "}

    def test_highlight(self, two_blocks):
        out = render_system(two_blocks, width=40, height=10, highlight={1})
        assert "!" in out
        assert GLYPHS[1] not in out

    def test_top_row_is_high_y(self):
        tall = BlockSystem([Block(SQ), Block(SQ + np.array([0.0, 5.0]))])
        out = render_system(tall, width=20, height=12)
        lines = out.splitlines()
        top_half = "".join(lines[: len(lines) // 2])
        assert GLYPHS[1] in top_half  # the high block renders at the top

    def test_invalid_bounds(self, two_blocks):
        with pytest.raises(ValueError):
            render_system(two_blocks, bounds=np.array([1.0, 0.0, 1.0, 2.0]))


class TestRenderSnapshots:
    def test_frames(self):
        system = BlockSystem([Block(SQ)])
        snaps = [
            (0, np.array([[0.5, 0.5]])),
            (10, np.array([[0.5, 2.5]])),
        ]
        out = render_snapshots(snaps, system, width=20, height=8)
        assert "-- step 0 --" in out
        assert "-- step 10 --" in out
        assert out.count("o") == 2
