import numpy as np
import pytest

from repro.solvers.precision import cg_fixed_dtype
from repro.spmv.synthetic import synthetic_block_matrix


@pytest.fixture
def easy_system(rng):
    a = synthetic_block_matrix(10, 18, seed=5)
    x = rng.normal(size=a.n * 6)
    return a, x, a.matvec(x)


class TestCgFixedDtype:
    def test_float64_solves(self, easy_system):
        a, x_true, b = easy_system
        res = cg_fixed_dtype(a, b, np.float64, tol=1e-10)
        assert res.converged
        assert res.true_relative_residual < 1e-9

    def test_float32_solves_well_conditioned(self, easy_system):
        # the synthetic dominance-regularised matrix is benign enough for
        # float32 at a loose tolerance
        a, _, b = easy_system
        res = cg_fixed_dtype(a, b, np.float32, tol=1e-4)
        assert res.true_relative_residual < 1e-3

    def test_float32_true_residual_floor(self, easy_system):
        # at a double-precision tolerance, float32's *true* residual
        # cannot follow — it floors near single-precision epsilon levels
        a, _, b = easy_system
        r32 = cg_fixed_dtype(a, b, np.float32, tol=1e-12)
        r64 = cg_fixed_dtype(a, b, np.float64, tol=1e-12)
        assert r64.true_relative_residual < r32.true_relative_residual
        assert r32.true_relative_residual > 1e-9

    def test_without_preconditioner(self, easy_system):
        a, _, b = easy_system
        res = cg_fixed_dtype(a, b, np.float64, tol=1e-8,
                             use_block_jacobi=False)
        assert res.converged

    def test_zero_rhs(self, easy_system):
        a, _, _ = easy_system
        res = cg_fixed_dtype(a, np.zeros(a.n * 6), np.float64)
        assert res.converged
        assert res.iterations == 0

    def test_invalid_dtype(self, easy_system):
        a, _, b = easy_system
        with pytest.raises(ValueError, match="dtype"):
            cg_fixed_dtype(a, b, np.int32)

    def test_iteration_cap(self, easy_system):
        a, _, b = easy_system
        res = cg_fixed_dtype(a, b, np.float64, tol=1e-16, max_iterations=2)
        assert res.iterations == 2
        assert not res.converged
