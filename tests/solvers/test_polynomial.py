import numpy as np
import pytest

from repro.assembly.global_matrix import BS
from repro.solvers.cg import pcg
from repro.solvers.polynomial import NeumannPreconditioner
from repro.solvers.preconditioners import (
    BlockJacobiPreconditioner,
    make_preconditioner,
)
from repro.spmv.synthetic import synthetic_block_matrix


@pytest.fixture
def matrix():
    return synthetic_block_matrix(12, 26, seed=17)


class TestNeumannPreconditioner:
    def test_order_zero_is_block_jacobi(self, matrix, rng):
        m = NeumannPreconditioner(matrix, order=0)
        bj = BlockJacobiPreconditioner(matrix)
        r = rng.normal(size=matrix.n * BS)
        np.testing.assert_allclose(m.apply(r), bj.apply(r), rtol=1e-12)

    def test_symmetric_operator(self, matrix, rng):
        m = NeumannPreconditioner(matrix, order=2)
        u = rng.normal(size=matrix.n * BS)
        v = rng.normal(size=matrix.n * BS)
        assert u @ m.apply(v) == pytest.approx(v @ m.apply(u), rel=1e-8)

    def test_positive_definite(self, matrix, rng):
        m = NeumannPreconditioner(matrix, order=2)
        for _ in range(5):
            u = rng.normal(size=matrix.n * BS)
            assert u @ m.apply(u) > 0

    def test_higher_order_better_approximation(self, matrix, rng):
        # ||M^{-1} A x - x|| shrinks with the series order
        x = rng.normal(size=matrix.n * BS)
        ax = matrix.matvec(x)
        errs = []
        for order in (0, 2, 4):
            m = NeumannPreconditioner(matrix, order=order)
            errs.append(np.linalg.norm(m.apply(ax) - x))
        assert errs[2] < errs[1] < errs[0]

    def test_reduces_cg_iterations(self, matrix, rng):
        b = matrix.matvec(rng.normal(size=matrix.n * BS))
        bj = pcg(matrix, b, preconditioner=BlockJacobiPreconditioner(matrix),
                 tol=1e-10, max_iterations=1000)
        nm = pcg(matrix, b, preconditioner=NeumannPreconditioner(matrix, order=2),
                 tol=1e-10, max_iterations=1000)
        assert nm.converged and bj.converged
        assert nm.iterations < bj.iterations

    def test_odd_order_rejected(self, matrix):
        with pytest.raises(ValueError, match="even"):
            NeumannPreconditioner(matrix, order=1)

    def test_factory(self, matrix):
        m = make_preconditioner("neumann", matrix)
        assert m.name == "neumann"

    def test_device_recording(self, matrix, device, rng):
        m = NeumannPreconditioner(matrix, device, order=2)
        m.apply(rng.normal(size=matrix.n * BS), device)
        kernels = device.time_by_kernel()
        assert "neumann_construct" in kernels
        assert "neumann_apply" in kernels

    def test_no_triangular_solves(self, matrix, device, rng):
        m = NeumannPreconditioner(matrix, device, order=4)
        m.apply(rng.normal(size=matrix.n * BS), device)
        assert not any("tss" in k for k in device.time_by_kernel())
