import numpy as np
import pytest

from repro.assembly.global_matrix import BS
from repro.solvers.preconditioners import (
    BlockJacobiPreconditioner,
    ILU0Preconditioner,
    IdentityPreconditioner,
    JacobiPreconditioner,
    SSORAIPreconditioner,
    make_preconditioner,
)
from repro.spmv.synthetic import synthetic_block_matrix


@pytest.fixture
def matrix():
    return synthetic_block_matrix(12, 24, seed=9)


class TestIdentity:
    def test_apply_is_copy(self, matrix, rng):
        m = IdentityPreconditioner(matrix)
        r = rng.normal(size=matrix.n * BS)
        z = m.apply(r)
        np.testing.assert_array_equal(z, r)
        assert z is not r


class TestJacobi:
    def test_diag_inverse(self, matrix, rng):
        m = JacobiPreconditioner(matrix)
        r = rng.normal(size=matrix.n * BS)
        d = np.diag(matrix.to_dense())
        np.testing.assert_allclose(m.apply(r), r / d)


class TestBlockJacobi:
    def test_exact_on_block_diagonal_matrix(self, rng):
        a = synthetic_block_matrix(6, 0, seed=3)
        m = BlockJacobiPreconditioner(a)
        r = rng.normal(size=6 * BS)
        # for a block-diagonal matrix, M^{-1} r solves A z = r exactly
        np.testing.assert_allclose(a.to_dense() @ m.apply(r), r, rtol=1e-9)

    def test_symmetric_operator(self, matrix, rng):
        m = BlockJacobiPreconditioner(matrix)
        u = rng.normal(size=matrix.n * BS)
        v = rng.normal(size=matrix.n * BS)
        assert u @ m.apply(v) == pytest.approx(v @ m.apply(u), rel=1e-9)

    def test_construction_and_apply_recorded(self, matrix, device, rng):
        m = BlockJacobiPreconditioner(matrix, device)
        assert "bj_construct" in device.time_by_kernel()
        m.apply(rng.normal(size=matrix.n * BS), device)
        assert "bj_apply" in device.time_by_kernel()


class TestSSORAI:
    def test_symmetric_positive_operator(self, matrix, rng):
        m = SSORAIPreconditioner(matrix)
        u = rng.normal(size=matrix.n * BS)
        v = rng.normal(size=matrix.n * BS)
        assert u @ m.apply(v) == pytest.approx(v @ m.apply(u), rel=1e-8)
        assert u @ m.apply(u) > 0

    def test_reduces_to_scaled_bj_for_block_diagonal(self, rng):
        a = synthetic_block_matrix(5, 0, seed=4)
        m = SSORAIPreconditioner(a, omega=1.0)
        bj = BlockJacobiPreconditioner(a)
        r = rng.normal(size=5 * BS)
        np.testing.assert_allclose(m.apply(r), bj.apply(r), rtol=1e-10)

    def test_invalid_omega(self, matrix):
        with pytest.raises(ValueError, match="omega"):
            SSORAIPreconditioner(matrix, omega=2.0)

    def test_no_triangular_solve_launches(self, matrix, device, rng):
        m = SSORAIPreconditioner(matrix, device)
        m.apply(rng.normal(size=matrix.n * BS), device)
        assert not any("tss" in k for k in device.time_by_kernel())


class TestILU0:
    def test_apply_approximates_inverse(self, matrix, rng):
        m = ILU0Preconditioner(matrix)
        x_true = rng.normal(size=matrix.n * BS)
        b = matrix.matvec(x_true)
        z = m.apply(b)
        # ILU(0) of a diagonally dominant matrix is a good approximate
        # inverse: relative error well below 1
        rel = np.linalg.norm(z - x_true) / np.linalg.norm(x_true)
        assert rel < 0.5

    def test_apply_records_level_launches(self, matrix, device, rng):
        m = ILU0Preconditioner(matrix)
        m.apply(rng.normal(size=matrix.n * BS), device)
        assert any("tss_level" in k for k in device.time_by_kernel())

    def test_construction_far_more_expensive_than_bj(self, matrix):
        from repro.gpu.device import K40
        from repro.gpu.kernel import VirtualDevice

        d_bj, d_ilu = VirtualDevice(K40), VirtualDevice(K40)
        BlockJacobiPreconditioner(matrix, d_bj)
        ILU0Preconditioner(matrix, d_ilu)
        # Table I: ILU construction orders of magnitude above BJ
        assert d_ilu.total_time > 10.0 * d_bj.total_time


class TestFactory:
    @pytest.mark.parametrize("name", ["none", "jacobi", "bj", "ssor", "ilu"])
    def test_all_constructible(self, matrix, name):
        m = make_preconditioner(name, matrix)
        assert m.name == name

    def test_unknown_rejected(self, matrix):
        with pytest.raises(ValueError, match="unknown preconditioner"):
            make_preconditioner("amg", matrix)
