import numpy as np
import pytest

from repro.assembly.global_matrix import BS
from repro.solvers.cg import pcg
from repro.solvers.preconditioners import (
    BlockJacobiPreconditioner,
    ILU0Preconditioner,
    SSORAIPreconditioner,
    make_preconditioner,
)
from repro.spmv.hsbcsr import HSBCSRMatrix
from repro.spmv.synthetic import synthetic_block_matrix


@pytest.fixture
def system(rng):
    a = synthetic_block_matrix(15, 35, seed=21)
    x_true = rng.normal(size=a.n * BS)
    return a, x_true, a.matvec(x_true)


class TestPCG:
    def test_solves_unpreconditioned(self, system):
        a, x_true, b = system
        res = pcg(a, b, tol=1e-10, max_iterations=500)
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, rtol=1e-6, atol=1e-7)

    @pytest.mark.parametrize("name", ["jacobi", "bj", "ssor", "ilu"])
    def test_solves_with_each_preconditioner(self, system, name):
        a, x_true, b = system
        m = make_preconditioner(name, a)
        res = pcg(a, b, preconditioner=m, tol=1e-10, max_iterations=500)
        assert res.converged, name
        np.testing.assert_allclose(res.x, x_true, rtol=1e-5, atol=1e-6)

    def test_accepts_prebuilt_hsbcsr(self, system):
        a, x_true, b = system
        h = HSBCSRMatrix.from_block_matrix(a)
        res = pcg(h, b, tol=1e-10, max_iterations=500)
        assert res.converged

    def test_warm_start_reduces_iterations(self, system, rng):
        a, x_true, b = system
        cold = pcg(a, b, tol=1e-10, max_iterations=500)
        near = x_true + 1e-6 * rng.normal(size=x_true.size)
        warm = pcg(a, b, x0=near, tol=1e-10, max_iterations=500)
        assert warm.iterations < cold.iterations

    def test_exact_start_zero_iterations(self, system):
        a, x_true, b = system
        res = pcg(a, b, x0=x_true, tol=1e-8)
        assert res.iterations == 0
        assert res.converged

    def test_zero_rhs(self, system):
        a, _, _ = system
        res = pcg(a, np.zeros(a.n * BS))
        assert res.converged
        np.testing.assert_array_equal(res.x, 0.0)

    def test_iteration_cap_reported(self, system):
        a, _, b = system
        res = pcg(a, b, tol=1e-16, max_iterations=3)
        assert res.iterations == 3
        assert not res.converged

    def test_residual_history_monotonic_enough(self, system):
        a, _, b = system
        res = pcg(a, b, tol=1e-10, max_iterations=500)
        assert len(res.residuals) == res.iterations
        assert res.residuals[-1] < res.residuals[0]

    def test_invalid_args(self, system):
        a, _, b = system
        with pytest.raises(ValueError):
            pcg(a, b, tol=0.0)
        with pytest.raises(ValueError):
            pcg(a, b, max_iterations=0)

    def test_device_records_spmv_per_iteration(self, system, device):
        a, _, b = system
        res = pcg(a, b, tol=1e-10, max_iterations=500, device=device)
        by_kernel = device.time_by_kernel()
        assert "hsbcsr_stage1" in by_kernel


class TestPreconditionerOrdering:
    def test_iteration_ordering_matches_table1(self):
        # Table I: ILU converges fastest, then SSOR-AI, then BJ
        a = synthetic_block_matrix(40, 110, seed=2, coupling=0.6)
        rng = np.random.default_rng(0)
        b = a.matvec(rng.normal(size=a.n * BS))
        iters = {}
        for name in ("bj", "ssor", "ilu"):
            m = make_preconditioner(name, a)
            res = pcg(a, b, preconditioner=m, tol=1e-10, max_iterations=1000)
            assert res.converged, name
            iters[name] = res.iterations
        assert iters["ilu"] <= iters["ssor"] <= iters["bj"]

    def test_bj_total_time_beats_ilu_on_gpu_model(self):
        # Table I's punchline: despite more iterations, BJ's total modelled
        # equation-solving time beats ILU's because TSS dominates
        from repro.gpu.device import K40
        from repro.gpu.kernel import VirtualDevice

        a = synthetic_block_matrix(40, 110, seed=2, coupling=0.6)
        rng = np.random.default_rng(0)
        b = a.matvec(rng.normal(size=a.n * BS))
        times = {}
        for name in ("bj", "ilu"):
            dev = VirtualDevice(K40)
            m = make_preconditioner(name, a, dev)
            res = pcg(a, b, preconditioner=m, tol=1e-10,
                      max_iterations=1000, device=dev)
            assert res.converged
            times[name] = dev.total_time
        assert times["bj"] < times["ilu"]
