import numpy as np
import pytest
import scipy.sparse as sp

from repro.solvers.triangular import (
    ilu0_factorize,
    level_schedule,
    sparse_triangular_solve,
)
from repro.spmv.synthetic import synthetic_block_matrix


def csr_of(dense):
    m = sp.csr_matrix(dense)
    m.sort_indices()
    return m.indptr.astype(np.int64), m.indices.astype(np.int64), m.data


class TestLevelSchedule:
    def test_diagonal_matrix_single_level(self):
        indptr, indices, _ = csr_of(np.eye(4))
        levels = level_schedule(indptr, indices)
        np.testing.assert_array_equal(levels, 0)

    def test_bidiagonal_chain(self):
        a = np.eye(5) + np.diag(np.ones(4), -1)
        indptr, indices, _ = csr_of(a)
        levels = level_schedule(indptr, indices, lower=True)
        np.testing.assert_array_equal(levels, np.arange(5))

    def test_upper_chain(self):
        a = np.eye(5) + np.diag(np.ones(4), 1)
        indptr, indices, _ = csr_of(a)
        levels = level_schedule(indptr, indices, lower=False)
        np.testing.assert_array_equal(levels, np.arange(5)[::-1])

    def test_level_valid_topological_order(self, rng):
        a = synthetic_block_matrix(10, 20, seed=0).to_scipy_csr()
        a.sort_indices()
        indptr = a.indptr.astype(np.int64)
        indices = a.indices.astype(np.int64)
        levels = level_schedule(indptr, indices, lower=True)
        # every dependency sits at a strictly smaller level
        for i in range(len(indptr) - 1):
            deps = indices[indptr[i] : indptr[i + 1]]
            deps = deps[deps < i]
            if deps.size:
                assert (levels[deps] < levels[i]).all()


class TestTriangularSolve:
    def test_lower_matches_scipy(self, rng):
        n = 30
        a = np.tril(rng.normal(size=(n, n))) + np.eye(n) * n
        mask = rng.random((n, n)) < 0.3
        a = np.where(np.tril(mask) | np.eye(n, dtype=bool), a, 0.0)
        b = rng.normal(size=n)
        indptr, indices, data = csr_of(a)
        x = sparse_triangular_solve(indptr, indices, data, b, lower=True)
        np.testing.assert_allclose(a @ x, b, atol=1e-8)

    def test_upper_matches_scipy(self, rng):
        n = 25
        a = np.triu(rng.normal(size=(n, n))) + np.eye(n) * n
        b = rng.normal(size=n)
        indptr, indices, data = csr_of(a)
        x = sparse_triangular_solve(indptr, indices, data, b, lower=False)
        np.testing.assert_allclose(a @ x, b, atol=1e-8)

    def test_unit_diagonal(self, rng):
        n = 10
        strict = np.tril(rng.normal(size=(n, n)), -1)
        a = strict + np.eye(n)
        b = rng.normal(size=n)
        # pattern without explicit unit diagonal values is fine: pass the
        # strict part and unit_diagonal=True (values on diag ignored)
        indptr, indices, data = csr_of(a)
        x = sparse_triangular_solve(
            indptr, indices, data, b, lower=True, unit_diagonal=True
        )
        np.testing.assert_allclose(a @ x, b, atol=1e-10)

    def test_zero_diagonal_rejected(self):
        a = np.array([[1.0, 0.0], [1.0, 0.0]])
        indptr, indices, data = csr_of(a + np.array([[0, 0], [0, 1e-300]]))
        indptr, indices, data = csr_of(np.array([[1.0, 0.0], [2.0, 0.0]]))
        with pytest.raises(ZeroDivisionError):
            sparse_triangular_solve(indptr, indices, data, np.ones(2))

    def test_device_records_levelsync_kernel(self, device, rng):
        # cuSPARSE-style: one kernel, levels synchronised via atomics
        a = np.eye(4) + np.diag(np.ones(3), -1)
        indptr, indices, data = csr_of(a)
        sparse_triangular_solve(indptr, indices, data, rng.normal(size=4),
                                device=device)
        assert device.launches() == 1
        rec = device.records[0]
        assert rec.name == "tss_levelsync"
        assert rec.counters.atomic_ops == pytest.approx(12.5 * 4)

    def test_deeper_levels_cost_more(self, rng):
        from repro.gpu.device import K40
        from repro.gpu.kernel import VirtualDevice

        n = 64
        chain = np.eye(n) + np.diag(np.ones(n - 1), -1)  # n levels
        flat = np.eye(n).copy()
        flat[1:, 0] = 1.0  # 2 levels, same nnz count per row group
        d_chain, d_flat = VirtualDevice(K40), VirtualDevice(K40)
        b = rng.normal(size=n)
        sparse_triangular_solve(*csr_of(chain), b, device=d_chain)
        sparse_triangular_solve(*csr_of(flat), b, device=d_flat)
        assert d_chain.total_time > d_flat.total_time

    def test_tss_much_slower_than_spmv_on_dda_matrix(self, rng):
        # the Fig-10 effect: the level-sync dependency chain makes TSS an
        # order of magnitude slower than one SpMV once the matrix is big
        # enough that launch overhead stops dominating the SpMV
        from repro.gpu.device import K40
        from repro.gpu.kernel import VirtualDevice
        from repro.spmv.hsbcsr import HSBCSRMatrix, hsbcsr_spmv

        a = synthetic_block_matrix(600, 2300, seed=1)
        csr = a.to_scipy_csr()
        csr.sort_indices()
        indptr = csr.indptr.astype(np.int64)
        indices = csr.indices.astype(np.int64)
        x = rng.normal(size=a.n * 6)
        d_spmv, d_tss = VirtualDevice(K40), VirtualDevice(K40)
        hsbcsr_spmv(HSBCSRMatrix.from_block_matrix(a), x, d_spmv)
        sparse_triangular_solve(indptr, indices, csr.data, x, device=d_tss)
        assert d_tss.total_time > 3.0 * d_spmv.total_time


class TestILU0:
    def test_exact_for_dense_spd(self, rng):
        # with a full pattern, ILU(0) equals complete LU
        n = 8
        q = rng.normal(size=(n, n))
        a = q @ q.T + n * np.eye(n)
        indptr, indices, data = csr_of(a)
        lu = ilu0_factorize(indptr, indices, data)
        dense_lu = np.zeros((n, n))
        for i in range(n):
            for p in range(indptr[i], indptr[i + 1]):
                dense_lu[i, indices[p]] = lu[p]
        l = np.tril(dense_lu, -1) + np.eye(n)
        u = np.triu(dense_lu)
        np.testing.assert_allclose(l @ u, a, rtol=1e-8)

    def test_preserves_pattern(self):
        a = synthetic_block_matrix(6, 8, seed=2).to_scipy_csr()
        a.sort_indices()
        lu = ilu0_factorize(
            a.indptr.astype(np.int64), a.indices.astype(np.int64), a.data
        )
        assert lu.shape == a.data.shape

    def test_solve_roundtrip(self, rng):
        # L U x = b solved by the two triangular sweeps reproduces x for
        # a dense-pattern matrix
        n = 6
        q = rng.normal(size=(n, n))
        a = q @ q.T + n * np.eye(n)
        indptr, indices, data = csr_of(a)
        lu = ilu0_factorize(indptr, indices, data)
        x_true = rng.normal(size=n)
        b = a @ x_true
        y = sparse_triangular_solve(indptr, indices, lu, b, lower=True,
                                    unit_diagonal=True)
        x = sparse_triangular_solve(indptr, indices, lu, y, lower=False)
        np.testing.assert_allclose(x, x_true, rtol=1e-8)

    def test_missing_diagonal_rejected(self):
        a = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 1.0]]))
        a.eliminate_zeros()
        with pytest.raises(ValueError, match="diagonal"):
            ilu0_factorize(
                a.indptr.astype(np.int64), a.indices.astype(np.int64), a.data
            )
