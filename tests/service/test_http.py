"""HTTP front-end: idempotent submits, admission control, drain."""

import dataclasses
import json
import time
import urllib.request

import pytest

from repro.service.client import BatchClient
from repro.service.http import (
    BackgroundServer,
    ServiceConfig,
    TokenBucket,
    read_server_info,
)
from repro.service.netclient import ServiceClient, ServiceError
from repro.service.spec import JobSpec, JobState


def spec(tag: str, **kw) -> JobSpec:
    kw.setdefault("model", "wall")
    kw.setdefault("engine", "serial")
    kw.setdefault("steps", 2)
    return JobSpec(tag=tag, **kw)


@pytest.fixture
def served(tmp_path):
    server = BackgroundServer(tmp_path / "batch").start()
    client = ServiceClient(server.host, server.port, tenant="test")
    yield server, client, tmp_path / "batch"
    server.stop()


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(capacity=2.0, refill_per_s=10.0)
        now = time.monotonic()
        assert bucket.take(now) == 0.0
        assert bucket.take(now) == 0.0
        wait = bucket.take(now)
        assert wait > 0.0
        assert bucket.take(now + wait + 0.01) == 0.0

    def test_zero_refill_never_recovers(self):
        bucket = TokenBucket(capacity=1.0, refill_per_s=0.0)
        now = time.monotonic()
        assert bucket.take(now) == 0.0
        assert bucket.take(now) > 0.0


class TestLifecycle:
    def test_healthz_and_info_file(self, served):
        server, client, root = served
        assert client.healthz()["ok"] is True
        assert client.readyz() is True
        info = read_server_info(root)
        assert info["port"] == server.port

    def test_submit_status_result_roundtrip(self, served):
        _server, client, root = served
        resp = client.submit(spec("roundtrip"))
        assert resp["deduplicated"] is False
        job_id = resp["job_id"]
        row = client.job(job_id)
        assert row["state"] == JobState.QUEUED
        assert row["tenant"] == "test"
        envelope = client.result(job_id)
        assert envelope["result"] is None  # 202 while queued
        BatchClient(root).run(n_workers=1)
        row = client.wait(job_id, timeout_s=60.0)
        assert row["state"] == JobState.SUCCEEDED
        envelope = client.result(job_id)
        assert envelope["result"]["status"] == "succeeded"

    def test_submit_is_idempotent_by_spec_hash(self, served):
        _server, client, _root = served
        first = client.submit(spec("dup"))
        second = client.submit(spec("dup"))
        assert second["job_id"] == first["job_id"]
        assert second["deduplicated"] is True
        # dedup=False forces a fresh job for the same spec
        third = client.submit(spec("dup"), dedup=False)
        assert third["job_id"] != first["job_id"]

    def test_failed_job_releases_its_dedup_entry(self, served):
        _server, client, root = served
        poison = spec("poison", kill_at_step=1, checkpoint_every=1,
                      kill_once=False)
        first = client.submit(poison, retry={"max_attempts": 1})
        BatchClient(root).run(n_workers=1)
        assert client.wait(first["job_id"], timeout_s=60.0)["state"] == \
            JobState.FAILED
        # a failed job must not absorb an explicit re-request: the
        # dedup entry is released and a fresh job is forked
        again = client.submit(poison, retry={"max_attempts": 1})
        assert again["deduplicated"] is False
        assert again["job_id"] != first["job_id"]

    def test_cancel_via_api(self, served):
        _server, client, _root = served
        job_id = client.submit(spec("doomed"))["job_id"]
        resp = client.cancel(job_id)
        assert resp["cancelled"] is True
        assert resp["state"] == JobState.CANCELLED

    def test_unknown_job_404s(self, served):
        _server, client, _root = served
        with pytest.raises(ServiceError) as err:
            client.job("j999999-deadbeef")
        assert err.value.status == 404

    def test_bad_spec_400s_without_retry_burn(self, served):
        _server, client, _root = served
        before = client.stats["requests"]
        with pytest.raises(ServiceError) as err:
            client.submit({"model": "nope"})
        assert err.value.status == 400
        assert client.stats["requests"] == before + 1  # not retried

    def test_long_poll_events(self, served):
        _server, client, _root = served
        job_id = client.submit(spec("events"))["job_id"]
        resp = client.events(job_id, since=0, timeout_s=0.2)
        names = [e["event"] for e in resp["events"]]
        assert "submitted" in names
        # the cursor advances; polling past the tail returns empty
        tail = client.events(job_id, since=resp["next"], timeout_s=0.1)
        assert tail["events"] == []

    def test_metrics_endpoint_counts_requests(self, served):
        _server, client, _root = served
        client.submit(spec("metered"))
        snap = client.metrics()
        assert snap["counters"]["http.requests"] >= 1
        assert snap["counters"]["http.submitted"] == 1


class TestAdmissionControl:
    def test_tenant_rate_limit_429_with_retry_after(self, tmp_path):
        config = ServiceConfig(rate_capacity=2.0, rate_refill_per_s=0.1)
        server = BackgroundServer(tmp_path / "b", config).start()
        try:
            url = f"http://{server.host}:{server.port}/v1/jobs"
            seen = None
            for _ in range(4):
                req = urllib.request.Request(
                    url, headers={"X-Tenant": "greedy"}
                )
                try:
                    urllib.request.urlopen(req).read()
                except urllib.error.HTTPError as err:
                    seen = err
                    break
            assert seen is not None and seen.code == 429
            assert float(seen.headers["Retry-After"]) > 0.0
            # another tenant's bucket is untouched
            req = urllib.request.Request(url, headers={"X-Tenant": "calm"})
            assert urllib.request.urlopen(req).status == 200
        finally:
            server.stop()

    def test_queue_depth_rejects_submit(self, tmp_path):
        config = ServiceConfig(max_queue_depth=2, rate_capacity=100.0)
        server = BackgroundServer(tmp_path / "b", config).start()
        client = ServiceClient(
            server.host, server.port,
            retry=dataclasses.replace(client_retry_fast(), attempts=2),
        )
        try:
            client.submit(spec("one"))
            client.submit(spec("two"))
            with pytest.raises(Exception) as err:
                client.submit(spec("three"))
            # budget-exhausted retriable 429, surfaced as unavailability
            assert "429" in str(err.value.last)
        finally:
            server.stop()

    def test_deadline_header_propagates_into_retry_policy(self, served):
        _server, client, root = served
        job_id = client.submit(spec("deadline"), deadline_s=7.5)["job_id"]
        record = BatchClient(root).queue.load_record(job_id)
        assert record.retry.attempt_deadline_s == 7.5
        # a tighter job-level deadline wins over the request's
        job_id = client.submit(
            spec("tighter"), deadline_s=7.5,
            retry={"max_attempts": 2, "attempt_deadline_s": 3.0},
        )["job_id"]
        record = BatchClient(root).queue.load_record(job_id)
        assert record.retry.attempt_deadline_s == 3.0


class TestDrain:
    def test_sigterm_style_drain_flips_readyz(self, tmp_path):
        root = tmp_path / "batch"
        server = BackgroundServer(root).start()
        client = ServiceClient(server.host, server.port)
        job_id = client.submit(spec("survivor"))["job_id"]
        assert client.readyz() is True
        server.stop()  # graceful drain, not a kill
        assert client.readyz() is False
        assert read_server_info(root) is None  # info file removed
        # the queued job survived the server: a pool can still run it
        bc = BatchClient(root)
        assert bc.queue.load_record(job_id).state == JobState.QUEUED
        bc.run(n_workers=1)
        assert bc.queue.load_record(job_id).state == JobState.SUCCEEDED
        # drain journalled + metrics persisted for the operator report
        events, _ = bc.queue.journal.events()
        names = [e["event"] for e in events]
        assert "server_started" in names and "server_drained" in names
        snaps = list((root / "metrics").glob("http-*.json"))
        assert snaps, "drain must persist the metrics snapshot"
        snap = json.loads(snaps[0].read_text())
        assert snap["counters"]["http.drains"] == 1


def client_retry_fast():
    from repro.service.netclient import ClientRetry

    return ClientRetry(attempts=4, backoff_s=0.01, backoff_max_s=0.05)
