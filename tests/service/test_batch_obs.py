"""Batch-service observability: per-job metrics, traces, cache counters."""

import json

import pytest

from repro.service import BatchClient, JobSpec


def spec(tag: str = "obs", **over) -> JobSpec:
    defaults = dict(
        model="wall", engine="serial", steps=3, time_step=1e-3,
        dynamic=True, tag=tag,
    )
    defaults.update(over)
    return JobSpec(**defaults)


class TestJobMetricsInOutcome:
    def test_outcome_carries_metrics_snapshot(self, tmp_path):
        client = BatchClient(tmp_path / "b")
        record = client.submit(spec())
        assert client.run(n_workers=1)["succeeded"] == 1
        outcome = client.result(record)
        snap = outcome["metrics"]
        counters = snap["counters"]
        assert counters["engine.steps"] == 3
        for key in ("contacts.VE", "contact_transfer.hits",
                    "solver.rung_escalations", "contracts.violations",
                    "engine.rollbacks"):
            assert key in counters, key
        assert "cg.iterations" in snap["histograms"]
        json.dumps(snap)  # cache-entry safe

    def test_client_aggregates_job_metrics(self, tmp_path):
        client = BatchClient(tmp_path / "b")
        client.submit(spec("a"))
        client.submit(spec("b"))
        client.run(n_workers=2)
        merged = client.last_job_metrics
        assert merged["counters"]["engine.steps"] == 6
        assert merged["histograms"]["cg.iterations"]["count"] > 0


class TestSchedulerMetrics:
    def test_cache_hit_and_miss_counters(self, tmp_path):
        client = BatchClient(tmp_path / "b")
        client.submit(spec())
        client.run(n_workers=1)
        assert client.last_run_metrics["counters"]["batch.cache_misses"] == 1
        assert client.last_run_metrics["counters"]["batch.cache_hits"] == 0
        # identical spec: second run resolves from the cache
        resubmit = BatchClient(client.root)
        resubmit.submit(spec())
        tallies = resubmit.run(n_workers=1)
        assert tallies["cache_hits"] == 1
        counters = resubmit.last_run_metrics["counters"]
        assert counters["batch.cache_hits"] == 1
        assert counters["batch.cache_misses"] == 0

    def test_dispatch_outcome_counters(self, tmp_path):
        client = BatchClient(tmp_path / "b")
        client.submit(spec())
        client.run(n_workers=1)
        counters = client.last_run_metrics["counters"]
        assert counters["batch.dispatched"] == 1
        assert counters["batch.succeeded"] == 1

    def test_cache_hit_still_reports_job_metrics(self, tmp_path):
        client = BatchClient(tmp_path / "b")
        client.submit(spec())
        client.run(n_workers=1)
        resubmit = BatchClient(client.root)
        resubmit.submit(spec())
        resubmit.run(n_workers=1)
        # the cached entry's metrics roll into the aggregate
        assert resubmit.last_job_metrics["counters"]["engine.steps"] == 3


class TestJobTraces:
    def test_trace_written_per_successful_attempt(self, tmp_path):
        from repro.obs.tracer import Tracer

        client = BatchClient(tmp_path / "b")
        record = client.submit(spec())
        client.run(n_workers=1, trace=True)
        outcome = client.result(record)
        trace_path = outcome["trace_path"]
        loaded = Tracer.load(trace_path)
        assert loaded.spans
        assert {s.name for s in loaded.spans} >= {"contact_detection",
                                                  "equation_solving"}

    def test_trace_flag_does_not_change_spec_hash(self, tmp_path):
        client = BatchClient(tmp_path / "b")
        client.submit(spec())
        client.run(n_workers=1, trace=True)  # seeds the cache, traced
        resubmit = BatchClient(client.root)
        resubmit.submit(spec())
        tallies = resubmit.run(n_workers=1, trace=False)
        assert tallies["cache_hits"] == 1

    def test_no_trace_by_default(self, tmp_path):
        client = BatchClient(tmp_path / "b")
        record = client.submit(spec())
        client.run(n_workers=1)
        assert "trace_path" not in client.result(record)
