"""ResultStore: content addressing, hit/miss counters, state caching."""

from repro.service.store import ResultStore

HASH_A = "a" * 64
HASH_B = "b" * 64


class TestStore:
    def test_miss_then_put_then_hit(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        assert store.lookup(HASH_A) is None
        store.put(HASH_A, {"steps_executed": 5})
        assert HASH_A in store
        got = store.lookup(HASH_A)
        assert got["steps_executed"] == 5
        assert store.stats() == {"hits": 1, "misses": 1}

    def test_peek_does_not_count(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put(HASH_A, {"x": 1})
        assert store.peek(HASH_A) == {"x": 1}
        assert store.peek(HASH_B) is None
        assert store.stats() == {"hits": 0, "misses": 0}

    def test_counters_survive_reopen(self, tmp_path):
        root = tmp_path / "s"
        store = ResultStore(root)
        store.put(HASH_A, {})
        store.lookup(HASH_A)
        store.lookup(HASH_B)
        again = ResultStore(root)
        assert again.stats() == {"hits": 1, "misses": 1}
        assert again.peek(HASH_A) == {}

    def test_final_state_cached_alongside_summary(self, tmp_path):
        from repro.io.model_io import load_system, save_system
        from repro.meshing.slope_models import build_brick_wall

        system = build_brick_wall(2, 2)
        stem = tmp_path / "final"
        save_system(system, stem)
        store = ResultStore(tmp_path / "s")
        store.put(HASH_A, {"steps_executed": 3}, state_stem=stem)
        assert store.peek(HASH_A)["has_state"] is True
        restored = load_system(store.state_stem(HASH_A))
        assert restored.n_blocks == system.n_blocks

    def test_len_counts_entries_not_state_files(self, tmp_path):
        from repro.io.model_io import save_system
        from repro.meshing.slope_models import build_brick_wall

        stem = tmp_path / "final"
        save_system(build_brick_wall(2, 2), stem)
        store = ResultStore(tmp_path / "s")
        store.put(HASH_A, {}, state_stem=stem)
        store.put(HASH_B, {})
        assert len(store) == 2
