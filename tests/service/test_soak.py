"""Soak campaign smoke: faults + scheduler kills end in a clean audit."""

import pytest

from repro.service.soak import build_job_mix, run_soak
from repro.service.spec import JobState


class TestJobMix:
    def test_mix_is_seeded(self):
        assert build_job_mix(40, seed=3) == build_job_mix(40, seed=3)
        assert build_job_mix(40, seed=3) != build_job_mix(40, seed=4)

    def test_mix_contains_every_flavour(self):
        mix = build_job_mix(60, seed=0)
        tags = [s.tag for s, _p, _r in mix]
        assert any(t.startswith("soak-kill-") for t in tags)
        assert any(t.startswith("soak-poison-") for t in tags)
        specs = [s for s, _p, _r in mix]
        hashes = [s.spec_hash() for s in specs]
        assert len(set(hashes)) < len(hashes)  # duplicates for cache hits
        killers = [s for s in specs if s.tag.startswith("soak-kill-")]
        assert all(s.kill_once for s in killers)
        poison = [s for s in specs if s.tag.startswith("soak-poison-")]
        assert all(not s.kill_once for s in poison)


@pytest.mark.slow
class TestSoakCampaign:
    def test_small_campaign_drains_with_clean_audit(self, tmp_path):
        summary = run_soak(
            tmp_path / "soak",
            jobs=10, seed=0, workers=2, steps=2,
            fault_rate=0.02, scheduler_kills=1, lease_ttl=1.5,
        )
        assert summary["drained"], summary["counts"]
        audit = summary["audit"]
        assert audit["ok"], audit["violations"]
        counts = summary["counts"]
        terminal = sum(counts[s] for s in JobState.TERMINAL)
        assert terminal == 10
        assert counts[JobState.SUCCEEDED] >= 1
        # the kill actually happened and the journal recorded real events
        assert summary["scheduler_kills"] == 1
        assert audit["event_counts"]["completed"] == audit["jobs"]


@pytest.mark.slow
class TestApiSoakCampaign:
    def test_small_api_campaign_survives_both_fault_planes(self, tmp_path):
        from repro.service.soak import run_api_soak

        summary = run_api_soak(
            tmp_path / "apisoak",
            jobs=8, seed=0, schedulers=2, workers=1, steps=1,
            fault_rate=0.02, net_fault_rate=0.05,
            scheduler_kills=1, sigterm_drains=1,
            lease_ttl=1.5, max_wait_s=300.0,
        )
        assert summary["mode"] == "api"
        assert summary["drained"], summary["counts"]
        audit = summary["audit"]
        assert audit["ok"], audit["violations"]
        # every distinct spec reached a terminal state through the API
        counts = summary["counts"]
        terminal = sum(counts[s] for s in JobState.TERMINAL)
        assert terminal == summary["distinct_jobs"]
        # the mid-campaign SIGTERM drain and the final shutdown were
        # both graceful (exit 0), and the replacement server finished
        # the campaign
        drains = summary["drains"]
        assert len(drains) == 2
        assert all(d["exit_code"] == 0 for d in drains)
        # the retrying client never gave up on a request
        assert summary["client_stats"]["giveups"] == 0
