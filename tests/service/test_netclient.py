"""Retrying client: seeded backoff, Retry-After, error taxonomy."""

import numpy as np
import pytest

from repro.engine.chaos import derive_seed
from repro.service.http import BackgroundServer, ServiceConfig
from repro.service.netclient import (
    ClientRetry,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
)


class TestClientRetry:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClientRetry(attempts=0)
        with pytest.raises(ValueError):
            ClientRetry(backoff_factor=0.5)

    def test_delays_are_seeded_and_bounded(self):
        retry = ClientRetry(backoff_s=0.1, backoff_factor=2.0,
                            backoff_max_s=0.5, jitter=0.5, seed=7)
        rng_a = np.random.default_rng(derive_seed(7, "netclient", "h", 1))
        rng_b = np.random.default_rng(derive_seed(7, "netclient", "h", 1))
        delays_a = [retry.delay(n, rng_a) for n in range(1, 8)]
        delays_b = [retry.delay(n, rng_b) for n in range(1, 8)]
        assert delays_a == delays_b  # same seed, same schedule
        # exponential up to the cap, jitter never exceeding 1+jitter
        assert all(d <= 0.5 * 1.5 for d in delays_a)
        assert delays_a[0] < delays_a[-1]


class TestErrorTaxonomy:
    def test_connection_refused_exhausts_into_unavailable(self):
        client = ServiceClient(
            "127.0.0.1", 1,  # nothing listens on port 1
            retry=ClientRetry(attempts=3, backoff_s=0.001),
        )
        with pytest.raises(ServiceUnavailable) as err:
            client.healthz()
        assert client.stats["requests"] == 3
        assert client.stats["giveups"] == 1
        assert isinstance(err.value.last, OSError)

    def test_4xx_is_not_retried(self, tmp_path):
        server = BackgroundServer(tmp_path / "b").start()
        client = ServiceClient(server.host, server.port)
        try:
            before = client.stats["requests"]
            with pytest.raises(ServiceError) as err:
                client.request("GET", "/no/such/route")
            assert err.value.status == 404
            assert client.stats["requests"] == before + 1
        finally:
            server.stop()

    def test_retry_after_hint_is_honoured(self, tmp_path):
        # an empty token bucket returns 429 + Retry-After; the client
        # must wait at least that long before its next attempt succeeds
        config = ServiceConfig(rate_capacity=1.0, rate_refill_per_s=5.0)
        server = BackgroundServer(tmp_path / "b", config).start()
        client = ServiceClient(
            server.host, server.port, tenant="burst",
            retry=ClientRetry(attempts=6, backoff_s=0.001,
                              backoff_max_s=0.002),
        )
        try:
            client.jobs()  # drains the single token
            client.jobs()  # 429 first, then retried past the refill
            assert client.stats["retries"] >= 1
            assert client.stats["giveups"] == 0
        finally:
            server.stop()

    def test_from_root_times_out_without_server(self, tmp_path):
        with pytest.raises(TimeoutError):
            ServiceClient.from_root(tmp_path, wait_s=0.2)
