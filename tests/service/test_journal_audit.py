"""Journal + auditor: the evidence trail and the invariants it proves."""

import json
import os

import pytest

from repro.service.audit import audit_journal, format_report
from repro.service.journal import Journal
from repro.service.queue import JobQueue
from repro.service.spec import JobSpec, JobState


def spec(tag: str) -> JobSpec:
    return JobSpec(model="wall", engine="serial", steps=2, tag=tag)


class TestJournal:
    def test_append_preserves_order_and_fields(self, tmp_path):
        j = Journal(tmp_path / "journal")
        j.append("submitted", "j1", priority=3)
        j.append("claimed", "j1", epoch=1, owner="sched-x")
        events, torn = j.events()
        assert torn == 0
        assert [e["event"] for e in events] == ["submitted", "claimed"]
        assert events[1]["epoch"] == 1
        assert events[1]["owner"] == "sched-x"
        assert all("ts" in e for e in events)

    def test_torn_trailing_line_is_skipped_and_counted(self, tmp_path):
        j = Journal(tmp_path / "journal")
        j.append("submitted", "j1")
        # a writer died mid-append: a partial line with no newline
        with open(j.path, "ab") as fh:
            fh.write(b'{"event": "claimed", "job')
        events, torn = j.events()
        assert [e["event"] for e in events] == ["submitted"]
        assert torn == 1
        # appends after the torn line still parse (O_APPEND line atomicity
        # is per-write; the recovery property is that *later* complete
        # lines survive a predecessor's torn one)
        with open(j.path, "ab") as fh:
            fh.write(b"\n")
        j.append("completed", "j1", status="succeeded")
        events, torn = j.events()
        assert [e["event"] for e in events] == ["submitted", "completed"]

    def test_count(self, tmp_path):
        j = Journal(tmp_path / "journal")
        for _ in range(3):
            j.append("heartbeat", "j1")
        assert j.count("heartbeat") == 3
        assert j.count("completed") == 0


@pytest.fixture
def root(tmp_path):
    return tmp_path / "svc"


@pytest.fixture
def queue(root) -> JobQueue:
    return JobQueue(root / "queue", recover=False)


def kinds(report: dict) -> set[str]:
    return {v["kind"] for v in report["violations"]}


def warning_kinds(report: dict) -> set[str]:
    return {w["kind"] for w in report["warnings"]}


class TestAuditCleanFlow:
    def test_lifecycle_passes(self, root, queue):
        record = queue.submit(spec("clean"))
        claimed, ticket = queue.claim()
        queue.finalize(record.job_id, JobState.SUCCEEDED,
                       epoch=claimed.lease_epoch)
        queue.ack(ticket)
        report = audit_journal(root, final=True)
        assert report["ok"], report["violations"]
        assert report["violations"] == []
        assert report["event_counts"]["submitted"] == 1
        assert report["event_counts"]["claimed"] == 1
        assert report["event_counts"]["completed"] == 1
        assert report["state_counts"][JobState.SUCCEEDED] == 1
        assert "audit             : PASS" in format_report(report)

    def test_fenced_write_passes_the_audit(self, root, queue):
        """A rejected zombie write is the mechanism *working*."""
        record = queue.submit(spec("fenced"))
        claimed, ticket = queue.claim()
        stale_epoch = claimed.lease_epoch
        # the lease expires; a second scheduler re-claims at a new epoch
        queue.leases.expire(record.job_id)
        queue.requeue(ticket)
        claimed2, ticket2 = queue.claim()
        assert claimed2.lease_epoch == stale_epoch + 1
        # the zombie's late completion is fenced...
        assert queue.finalize(
            record.job_id, JobState.FAILED, epoch=stale_epoch
        ) is None
        # ...and the live owner completes exactly once
        queue.finalize(record.job_id, JobState.SUCCEEDED,
                       epoch=claimed2.lease_epoch)
        queue.ack(ticket2)
        report = audit_journal(root, final=True)
        assert report["ok"], report["violations"]
        assert report["event_counts"]["fenced"] == 1


class TestAuditViolations:
    def test_double_completion(self, root, queue):
        record = queue.submit(spec("dup"))
        claimed, ticket = queue.claim()
        queue.finalize(record.job_id, JobState.SUCCEEDED,
                       epoch=claimed.lease_epoch)
        # a broken scheduler completes it a second time
        queue.journal.append("completed", record.job_id,
                             status=JobState.SUCCEEDED,
                             epoch=claimed.lease_epoch)
        report = audit_journal(root)
        assert not report["ok"]
        assert "double_completion" in kinds(report)

    def test_stale_completion(self, root, queue):
        record = queue.submit(spec("zombie"))
        claimed, _ticket = queue.claim()
        # a second claim supersedes the first...
        queue.journal.append("claimed", record.job_id,
                             epoch=claimed.lease_epoch + 1, owner="sched-b")
        # ...but the *old* epoch completes the job (fencing failed)
        record.state = JobState.SUCCEEDED
        queue.save_record(record)
        queue.journal.append("completed", record.job_id,
                             status=JobState.SUCCEEDED,
                             epoch=claimed.lease_epoch)
        report = audit_journal(root)
        assert "stale_completion" in kinds(report)

    def test_duplicate_claim_epoch(self, root, queue):
        record = queue.submit(spec("twin"))
        queue.journal.append("claimed", record.job_id, epoch=1, owner="a")
        queue.journal.append("claimed", record.job_id, epoch=1, owner="b")
        report = audit_journal(root)
        assert "duplicate_claim_epoch" in kinds(report)

    def test_state_mismatch(self, root, queue):
        record = queue.submit(spec("liar"))
        record.state = JobState.FAILED
        queue.save_record(record)
        queue.journal.append("completed", record.job_id,
                             status=JobState.SUCCEEDED, epoch=1)
        report = audit_journal(root)
        assert "state_mismatch" in kinds(report)

    def test_unsubmitted_activity(self, root, queue):
        queue.journal.append("claimed", "j-ghost", epoch=1, owner="a")
        report = audit_journal(root)
        assert "unsubmitted_activity" in kinds(report)

    def test_final_flags_stuck_and_lost_jobs(self, root, queue):
        stuck = queue.submit(spec("stuck"))  # stays queued
        lost = queue.submit(spec("lost"))
        os.unlink(queue.jobs_dir / f"{lost.job_id}.json")
        report = audit_journal(root, final=True)
        assert "stuck_job" in kinds(report)
        assert "lost_job" in kinds(report)
        # without --final the same directory merely looks in-flight
        relaxed = audit_journal(root, final=False)
        assert "stuck_job" not in kinds(relaxed)
        assert stuck.job_id in {
            v["job_id"] for v in report["violations"]
        }


class TestTornRecordAudit:
    def test_torn_record_warns_then_fails_final(self, root, queue):
        record = queue.submit(spec("torn"))
        path = queue.jobs_dir / f"{record.job_id}.json"
        good = path.read_bytes()
        path.write_bytes(good[: len(good) // 2])
        relaxed = audit_journal(root)
        assert relaxed["ok"]  # the owner's retry may still heal it
        assert "torn_record" in warning_kinds(relaxed)
        report = audit_journal(root, final=True)
        assert not report["ok"]
        assert "torn_record" in kinds(report)
        # torn is reported as torn, not double-counted as lost
        assert "lost_job" not in kinds(report)


class TestAuditWarnings:
    def test_unjournalled_completion_is_a_warning(self, root, queue):
        record = queue.submit(spec("quiet"))
        # killed between the record save and the journal append
        record.state = JobState.SUCCEEDED
        queue.save_record(record)
        report = audit_journal(root, final=True)
        assert report["ok"]
        assert "unjournalled_completion" in warning_kinds(report)

    def test_torn_lines_are_a_warning(self, root, queue):
        queue.submit(spec("torn"))
        with open(queue.journal.path, "ab") as fh:
            fh.write(b"not json at all\n")
        report = audit_journal(root)
        assert report["ok"]
        assert "torn_journal_lines" in warning_kinds(report)

    def test_out_of_order_claims_are_a_warning(self, root, queue):
        record = queue.submit(spec("late"))
        queue.journal.append("claimed", record.job_id, epoch=2, owner="b")
        queue.journal.append("claimed", record.job_id, epoch=1, owner="a")
        report = audit_journal(root)
        assert report["ok"]
        assert "claim_order" in warning_kinds(report)


class TestAuditCli:
    def test_audit_exit_codes(self, tmp_path, capsys):
        from repro.__main__ import main

        batch_dir = str(tmp_path / "b")
        main(["batch", "submit", "--dir", batch_dir, "--model", "wall",
              "--engine", "serial", "--steps", "2"])
        main(["batch", "run", "--dir", batch_dir, "--quiet"])
        capsys.readouterr()
        assert main(["batch", "audit", "--dir", batch_dir, "--final",
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["event_counts"]["completed"] == 1
        # plant a second completion: the audit must now fail
        queue = JobQueue(tmp_path / "b" / "queue", recover=False)
        job_id = queue.records()[0].job_id
        queue.journal.append("completed", job_id,
                             status=JobState.SUCCEEDED, epoch=1)
        assert main(["batch", "audit", "--dir", batch_dir]) == 1
        out = capsys.readouterr().out
        assert "double_completion" in out
        assert "FAIL" in out
