"""Network fault injector: plan validation, determinism, server faults."""

import pytest

from repro.service import chaosnet
from repro.service.chaosnet import (
    NET_FAULT_REGISTRY,
    NetFaultInjector,
    NetFaultPlan,
)
from repro.service.http import BackgroundServer
from repro.service.netclient import ClientRetry, ServiceClient
from repro.service.spec import JobSpec


@pytest.fixture(autouse=True)
def _clean_injector():
    yield
    chaosnet.install(None)


class TestPlan:
    def test_rejects_unknown_fault_and_bad_rate(self):
        with pytest.raises(ValueError, match="unknown net fault"):
            NetFaultPlan(faults=("wormhole",))
        with pytest.raises(ValueError, match="rate"):
            NetFaultPlan(rate=1.5)
        with pytest.raises(ValueError, match="slow_chunk"):
            NetFaultPlan(slow_chunk=0)

    def test_roundtrips_through_json(self, tmp_path):
        plan = NetFaultPlan(seed=9, rate=0.3, faults=("conn_reset",),
                            max_faults=5)
        path = plan.save(tmp_path / "plan.json")
        assert NetFaultPlan.load(path) == plan
        with pytest.raises(ValueError, match="unknown NetFaultPlan"):
            NetFaultPlan.from_dict({"seed": 1, "bogus": True})

    def test_env_arming(self, tmp_path, monkeypatch):
        plan = NetFaultPlan(seed=4, rate=0.2)
        path = plan.save(tmp_path / "net.json")
        monkeypatch.setenv(chaosnet.NET_PLAN_ENV, str(path))
        injector = chaosnet.install_from_env()
        assert injector is not None and injector.plan == plan
        monkeypatch.delenv(chaosnet.NET_PLAN_ENV)
        assert chaosnet.install_from_env() is None


class TestInjector:
    def test_decisions_are_seeded(self):
        a = NetFaultInjector(NetFaultPlan(seed=1, rate=0.5))
        b = NetFaultInjector(NetFaultPlan(seed=1, rate=0.5))
        paths = [f"/v1/jobs/{i}" for i in range(50)]
        assert [a.decide(p) for p in paths] == [b.decide(p) for p in paths]
        assert a.counts == b.counts and a.total > 0

    def test_budget_caps_total_injections(self):
        injector = NetFaultInjector(NetFaultPlan(seed=0, rate=1.0,
                                                 max_faults=3))
        for i in range(20):
            injector.decide(f"/v1/jobs/{i}")
        assert injector.total == 3

    def test_health_routes_are_protected(self):
        injector = NetFaultInjector(NetFaultPlan(seed=0, rate=1.0))
        assert injector.decide("/healthz") is None
        assert injector.decide("/readyz") is None
        assert injector.decide("/v1/jobs") is not None

    def test_registry_covers_every_request_phase(self):
        stages = {spec.stage for spec in NET_FAULT_REGISTRY.values()}
        assert stages == {"request", "response"}


class TestFaultsThroughServer:
    """Each fault class, injected by a real server, absorbed by the
    retrying client — the contract the API soak depends on."""

    @pytest.mark.parametrize("fault", sorted(NET_FAULT_REGISTRY))
    def test_client_retries_through(self, tmp_path, fault):
        chaosnet.install(NetFaultPlan(
            seed=11, rate=0.5, faults=(fault,), max_faults=4,
            latency_s=0.01, slow_delay_s=0.005,
        ))
        server = BackgroundServer(tmp_path / "b").start()
        client = ServiceClient(
            server.host, server.port, timeout=2.0,
            retry=ClientRetry(attempts=10, backoff_s=0.02, seed=5),
        )
        try:
            ids = {
                client.submit(
                    JobSpec(model="wall", engine="serial", steps=2,
                            tag=f"{fault}-{i}")
                )["job_id"]
                for i in range(5)
            }
            # no duplicate executions despite lost responses: five
            # specs, five distinct jobs, zero give-ups
            assert len(ids) == 5
            assert client.stats["giveups"] == 0
            # health stayed probe-able throughout the chaos
            assert client.healthz()["ok"] is True
        finally:
            server.stop()
            injector = chaosnet.get_net_chaos()
            assert injector is not None and injector.total >= 1

    def test_injections_land_in_server_metrics(self, tmp_path):
        chaosnet.install(NetFaultPlan(seed=3, rate=1.0,
                                      faults=("net_latency",),
                                      latency_s=0.001))
        server = BackgroundServer(tmp_path / "b").start()
        client = ServiceClient(server.host, server.port)
        try:
            client.submit(JobSpec(model="wall", engine="serial", steps=2))
            snap = client.metrics()
            assert snap["counters"]["http.net_faults"] >= 1
            assert snap["counters"]["http.net_faults.net_latency"] >= 1
        finally:
            server.stop()
