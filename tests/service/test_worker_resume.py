"""Checkpoint-resume edge cases on the worker side.

The happy path (retry resumes from the newest checkpoint) is covered by
the batch integration tests; here we pin the edge cases: every
checkpoint corrupt (fresh start, not a crash), a missing offset file
(that attempt is ignored), and the newest-across-attempts selection.
"""

from pathlib import Path

from repro.engine.runner import newest_valid_checkpoint
from repro.service.spec import JobSpec
from repro.service.worker import find_resume_point, run_job


def spec(steps: int) -> JobSpec:
    return JobSpec(
        model="wall", engine="serial", steps=steps, dynamic=True,
        checkpoint_every=1, tag="resume-edges",
    )


def seed_attempt0(scratch: Path, steps: int = 2) -> dict:
    """Run a short attempt 0 so the scratch dir has real checkpoints."""
    outcome = run_job(spec(steps), scratch, 0)
    assert outcome["status"] == "succeeded"
    return outcome


def all_npz(scratch: Path) -> list[Path]:
    return sorted((scratch / "checkpoints").rglob("*.npz"))


class TestFindResumePoint:
    def test_empty_scratch(self, tmp_path):
        assert find_resume_point(tmp_path) is None

    def test_picks_newest_global_step_across_attempts(self, tmp_path):
        seed_attempt0(tmp_path, steps=2)
        # attempt 1 (longer spec) resumes at 2 and checkpoints further
        outcome = run_job(spec(3), tmp_path, 1, epoch=2)
        assert outcome["resumed_from"] == 2
        cp, global_step = find_resume_point(tmp_path)
        assert global_step == 3  # attempt 1's offset (2) + its step (1)

    def test_attempt_without_offset_file_is_ignored(self, tmp_path):
        seed_attempt0(tmp_path, steps=2)
        (attempt_dir,) = (tmp_path / "checkpoints").iterdir()
        (attempt_dir / "offset.json").unlink()
        assert find_resume_point(tmp_path) is None


class TestCorruptCheckpoints:
    def test_newest_valid_checkpoint_skips_corrupt_files(self, tmp_path):
        seed_attempt0(tmp_path, steps=2)
        (attempt_dir,) = (tmp_path / "checkpoints").iterdir()
        newest = max(
            attempt_dir.glob("*.npz"),
            key=lambda p: int(p.stem.split("_")[1]),
        )
        newest.write_bytes(b"not a checkpoint at all")
        cp = newest_valid_checkpoint(attempt_dir)
        assert cp is not None
        assert cp.step == 1  # fell back past the corrupt step-2 file

    def test_all_corrupt_means_fresh_start_not_a_crash(self, tmp_path):
        """A retry facing only corrupt checkpoints restarts from step 0
        and still succeeds — corruption degrades, it never wedges."""
        seed_attempt0(tmp_path, steps=2)
        for path in all_npz(tmp_path):
            path.write_bytes(b"garbage" * 16)
        assert find_resume_point(tmp_path) is None
        outcome = run_job(spec(4), tmp_path, 1, epoch=2)
        assert outcome["status"] == "succeeded"
        assert outcome["resumed_from"] == 0
        assert outcome["steps_executed"] == 4

    def test_resume_ignores_checkpoints_at_or_past_the_goal(self, tmp_path):
        """A checkpoint already covering spec.steps is not 'resumed' —
        the attempt runs fresh rather than restoring a final state."""
        seed_attempt0(tmp_path, steps=4)
        outcome = run_job(spec(2), tmp_path, 1, epoch=2)
        assert outcome["status"] == "succeeded"
        assert outcome["resumed_from"] == 0


class TestEpochStamping:
    def test_checkpoint_dirs_carry_the_fencing_epoch(self, tmp_path):
        run_job(spec(2), tmp_path, 0, epoch=3)
        names = [p.name for p in (tmp_path / "checkpoints").iterdir()]
        assert names == ["attempt-e0003-000"]

    def test_final_state_stem_carries_the_epoch(self, tmp_path):
        outcome = run_job(spec(2), tmp_path, 0, epoch=7)
        assert outcome["state_stem"].endswith("final-e0007-attempt-000")
