"""JobQueue: ordering, atomic claim/ack, lease-based orphan recovery."""

import os
import threading
import time
from pathlib import Path

import pytest

from repro.service.queue import JobQueue
from repro.service.spec import JobSpec, JobState


def spec(tag: str) -> JobSpec:
    return JobSpec(model="wall", engine="serial", steps=2, tag=tag)


@pytest.fixture
def queue(tmp_path) -> JobQueue:
    return JobQueue(tmp_path / "q")


class TestOrdering:
    def test_fifo_within_a_priority(self, queue):
        ids = [queue.submit(spec(f"t{i}")).job_id for i in range(4)]
        claimed = [queue.claim()[0].job_id for _ in range(4)]
        assert claimed == ids

    def test_priority_beats_fifo(self, queue):
        low = queue.submit(spec("low"), priority=0)
        high = queue.submit(spec("high"), priority=10)
        mid = queue.submit(spec("mid"), priority=5)
        order = [queue.claim()[0].job_id for _ in range(3)]
        assert order == [high.job_id, mid.job_id, low.job_id]

    def test_requeue_goes_to_band_tail(self, queue):
        first = queue.submit(spec("first"))
        second = queue.submit(spec("second"))
        record, ticket = queue.claim()
        assert record.job_id == first.job_id
        queue.requeue(ticket)
        assert queue.claim()[0].job_id == second.job_id
        assert queue.claim()[0].job_id == first.job_id


class TestClaimAtomicity:
    def test_claim_moves_ack_removes(self, queue):
        queue.submit(spec("a"))
        assert queue.pending() == 1
        record, ticket = queue.claim()
        assert queue.pending() == 0
        assert (queue.claimed_dir / ticket).exists()
        queue.ack(ticket)
        assert not (queue.claimed_dir / ticket).exists()
        assert queue.claim() is None

    def test_concurrent_claimers_never_share_a_ticket(self, tmp_path):
        """N racing claimers: every ticket claimed exactly once."""
        root = tmp_path / "q"
        seed = JobQueue(root)
        n_jobs = 24
        for i in range(n_jobs):
            seed.submit(spec(f"t{i}"))
        claimed: list[str] = []
        lock = threading.Lock()

        def drain():
            q = JobQueue(root, recover=False)
            while True:
                got = q.claim()
                if got is None:
                    return
                with lock:
                    claimed.append(got[0].job_id)

        threads = [threading.Thread(target=drain) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(claimed) == n_jobs
        assert len(set(claimed)) == n_jobs  # no double claims

    def test_cancelled_job_is_skipped(self, queue):
        record = queue.submit(spec("doomed"))
        record.state = JobState.CANCELLED
        queue.save_record(record)
        runnable = queue.submit(spec("fine"))
        got = queue.claim()
        assert got is not None and got[0].job_id == runnable.job_id
        assert queue.claim() is None  # the cancelled ticket was consumed


class TestRecovery:
    def test_killed_scheduler_tickets_requeued_on_open(self, tmp_path):
        """Claimed-but-never-acked work survives a scheduler death."""
        root = tmp_path / "q"
        q1 = JobQueue(root)
        record = q1.submit(spec("orphan"))
        claimed, ticket = q1.claim()
        claimed.state = JobState.RUNNING
        q1.save_record(claimed)
        assert q1.pending() == 0
        # the scheduler dies without acking: its lease stops renewing
        # and its claimed ticket ages past the claim grace window
        q1.leases.expire(record.job_id)
        old = time.time() - 5.0
        os.utime(q1.claimed_dir / ticket, (old, old))
        del q1

        q2 = JobQueue(root)  # recover() runs on open
        assert q2.pending() == 1
        got = q2.claim()
        assert got is not None
        assert got[0].job_id == record.job_id
        assert got[0].state == JobState.QUEUED
        assert got[0].worker_pid is None
        # the re-claim superseded the dead scheduler's fencing epoch
        assert got[0].lease_epoch == claimed.lease_epoch + 1

    def test_recover_drops_terminal_orphans(self, tmp_path):
        root = tmp_path / "q"
        q1 = JobQueue(root)
        q1.submit(spec("done"))
        record, ticket = q1.claim()
        record.state = JobState.SUCCEEDED
        q1.save_record(record)
        # scheduler died after saving the record but before ack
        q2 = JobQueue(root)
        assert q2.pending() == 0
        assert q2.claim() is None

    def test_recover_leaves_live_claimants_alone(self, tmp_path):
        """A running record with a live (unexpired) lease is not an orphan."""
        root = tmp_path / "q"
        q1 = JobQueue(root)
        record = q1.submit(spec("live"))
        claimed, ticket = q1.claim()
        claimed.state = JobState.RUNNING
        q1.save_record(claimed)
        # age the ticket past the grace window: only the lease protects it
        old = time.time() - 5.0
        os.utime(q1.claimed_dir / ticket, (old, old))
        assert q1.leases.alive(record.job_id)
        q2 = JobQueue(root)  # recover() runs on open
        assert q2.pending() == 0  # the ticket was not stolen
        reloaded = q2.load_record(record.job_id)
        assert reloaded.state == JobState.RUNNING
        assert reloaded.lease_epoch == claimed.lease_epoch

    def test_counts_by_state(self, queue):
        queue.submit(spec("a"))
        record = queue.submit(spec("b"))
        record.state = JobState.FAILED
        queue.save_record(record)
        counts = queue.counts()
        assert counts["queued"] == 1
        assert counts["failed"] == 1


class TestBackoffDeferral:
    def test_backoff_ticket_is_deferred_not_spun(self, queue):
        """claim() must return None promptly (bounded re-list) when the
        only queued ticket is still inside its retry backoff."""
        record = queue.submit(spec("later"))
        rec = queue.load_record(record.job_id)
        rec.not_before = time.time() + 30.0
        queue.save_record(rec)
        start = time.monotonic()
        assert queue.claim() is None
        assert time.monotonic() - start < 2.0  # no spin until not_before
        assert queue.pending() == 1  # the ticket was put back, not eaten
        rec = queue.load_record(record.job_id)
        assert rec.lease_epoch == 0  # a deferral is not a claim
        rec.not_before = 0.0
        queue.save_record(rec)
        got = queue.claim()
        assert got is not None and got[0].job_id == record.job_id

    def test_backoff_does_not_block_other_jobs(self, queue):
        deferred = queue.submit(spec("deferred"))
        rec = queue.load_record(deferred.job_id)
        rec.not_before = time.time() + 30.0
        queue.save_record(rec)
        ready = queue.submit(spec("ready"))
        got = queue.claim()
        assert got is not None and got[0].job_id == ready.job_id


class TestTornRecords:
    """A torn record write must never silently lose the job."""

    def test_save_record_heals_a_torn_write(self, queue):
        from repro.service import chaosio

        record = queue.submit(spec("healed"))
        plan = chaosio.IOFaultPlan(
            seed=0, rate=1.0, faults=("torn_write",), max_faults=1
        )
        chaosio.install(plan)
        try:
            record.state = JobState.RUNNING
            queue.save_record(record)  # first write torn, retry verified
        finally:
            chaosio.install(None)
        reloaded = queue.load_record(record.job_id)
        assert reloaded is not None
        assert reloaded.state == JobState.RUNNING

    def test_claim_defers_a_torn_record_ticket(self, queue):
        record = queue.submit(spec("torn"))
        path = queue.jobs_dir / f"{record.job_id}.json"
        good = path.read_bytes()
        path.write_bytes(good[: len(good) // 2])  # torn mid-write
        assert queue.record_unreadable(record.job_id)
        assert queue.claim() is None  # deferred, not consumed
        assert queue.pending() == 1
        path.write_bytes(good)  # the owner's verified save heals it
        got = queue.claim()
        assert got is not None and got[0].job_id == record.job_id

    def test_recover_requeues_torn_record_orphans(self, tmp_path):
        root = tmp_path / "q"
        q1 = JobQueue(root)
        record = q1.submit(spec("torn-orphan"))
        claimed, ticket = q1.claim()
        q1.leases.expire(record.job_id)
        old = time.time() - 5.0
        os.utime(q1.claimed_dir / ticket, (old, old))
        path = q1.jobs_dir / f"{record.job_id}.json"
        good = path.read_bytes()
        path.write_bytes(good[: len(good) // 2])
        del q1

        q2 = JobQueue(root)  # recover() must keep the job visible
        assert q2.pending() == 1
        assert path.exists()
        assert q2.counts().get("unreadable") == 1
        path.write_bytes(good)
        got = q2.claim()
        assert got is not None and got[0].job_id == record.job_id


class TestCancellation:
    def test_cancel_marks_queued_job(self, queue):
        record = queue.submit(spec("victim"))
        assert queue.cancel(record.job_id) is True
        assert queue.is_cancelled(record.job_id)
        assert queue.load_record(record.job_id).state == JobState.CANCELLED
        assert queue.claim() is None  # the ticket is consumed, not run

    def test_cancel_rejects_unknown_and_terminal(self, queue):
        assert queue.cancel("nope") is False
        record = queue.submit(spec("done"))
        record.state = JobState.SUCCEEDED
        queue.save_record(record)
        assert queue.cancel(record.job_id) is False
        assert not queue.is_cancelled(record.job_id)

    def test_tombstone_beats_requeued_ticket(self, queue):
        """A job cancelled after its claim is dropped on the retry path."""
        record = queue.submit(spec("raced"))
        _claimed, ticket = queue.claim()  # a pool claimed it first
        assert queue.cancel(record.job_id) is True  # then the user cancelled
        queue.requeue(ticket)  # the pool pushes it back (retry path)
        assert queue.claim() is None  # tombstoned: consumed, never returned
        assert queue.load_record(record.job_id).state == JobState.CANCELLED


def _fairness_scheduler(root: str, done_dir: str, wid: int) -> None:
    """One competing scheduler process: claim, finalize, ack — to empty."""
    queue = JobQueue(root, recover=False)
    queue.owner = f"sched-fair-{wid}"
    claimed = 0
    while True:
        got = queue.claim()
        if got is None:
            break
        record, ticket = got
        time.sleep(0.002)  # hold the claim long enough for real overlap
        queue.finalize(
            record.job_id, JobState.SUCCEEDED, epoch=record.lease_epoch
        )
        queue.ack(ticket)
        claimed += 1
    (Path(done_dir) / str(wid)).write_text(str(claimed))


class TestMultiSchedulerFairness:
    """Several scheduler *processes* on one queue: exactly-once claims,
    every job terminal, and no scheduler starved out entirely."""

    def test_three_schedulers_share_one_queue(self, tmp_path):
        import multiprocessing

        from repro.service.audit import audit_journal

        root = tmp_path / "batch"
        queue = JobQueue(root / "queue")
        n_jobs, n_scheds = 30, 3
        for i in range(n_jobs):
            queue.submit(spec(f"fair-{i}"))
        done_dir = tmp_path / "done"
        done_dir.mkdir()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        procs = [
            ctx.Process(
                target=_fairness_scheduler,
                args=(str(root / "queue"), str(done_dir), wid),
            )
            for wid in range(n_scheds)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0

        assert queue.pending() == 0
        counts = queue.counts()
        assert counts[JobState.SUCCEEDED] == n_jobs

        # exactly-once: the auditor sees one claim epoch and one
        # completion per job, across all three claimants
        report = audit_journal(root, final=True)
        assert report["ok"], report["violations"]
        assert report["event_counts"]["claimed"] == n_jobs
        assert report["event_counts"]["completed"] == n_jobs

        # bounded starvation: every scheduler won at least one claim,
        # none monopolised the queue
        per_sched = {
            int(p.name): int(p.read_text())
            for p in done_dir.iterdir()
        }
        assert len(per_sched) == n_scheds
        assert sum(per_sched.values()) == n_jobs
        assert min(per_sched.values()) >= 1, per_sched
        assert max(per_sched.values()) <= n_jobs - (n_scheds - 1), per_sched

        # the journal agrees: distinct owners on the claimed events
        events, _ = queue.journal.events()
        owners = {
            e["owner"] for e in events if e.get("event") == "claimed"
        }
        assert owners == {f"sched-fair-{w}" for w in range(n_scheds)}
