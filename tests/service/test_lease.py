"""LeaseStore: acquire/renew/fence semantics behind worker liveness."""

import pytest

from repro.service.lease import Lease, LeaseStore


@pytest.fixture
def store(tmp_path) -> LeaseStore:
    return LeaseStore(tmp_path / "leases", ttl=5.0)


class TestAcquireRenew:
    def test_acquire_then_peek(self, store):
        lease = store.acquire("j1", 1, "sched-a")
        peeked = store.peek("j1")
        assert peeked is not None
        assert (peeked.epoch, peeked.owner) == (1, "sched-a")
        assert not peeked.expired()
        assert store.alive("j1")
        assert lease.ttl == 5.0

    def test_renew_refreshes_timestamp(self, store):
        store.acquire("j1", 1, "sched-a")
        before = store.peek("j1").renewed_at
        assert store.renew("j1", 1, "sched-a") is True
        assert store.peek("j1").renewed_at >= before

    def test_release_removes_the_lease(self, store):
        store.acquire("j1", 1, "sched-a")
        store.release("j1")
        assert store.peek("j1") is None
        assert not store.alive("j1")


class TestFencing:
    def test_renew_by_superseded_epoch_is_refused(self, store):
        """The fencing core: a zombie's renewal must come back False
        and must not clobber the new owner's lease."""
        store.acquire("j1", 1, "sched-a")
        store.acquire("j1", 2, "sched-b")  # takeover after expiry
        assert store.renew("j1", 1, "sched-a") is False
        current = store.peek("j1")
        assert (current.epoch, current.owner) == (2, "sched-b")

    def test_renew_by_wrong_owner_is_refused(self, store):
        store.acquire("j1", 1, "sched-a")
        assert store.renew("j1", 1, "sched-impostor") is False

    def test_renew_after_release_is_refused(self, store):
        store.acquire("j1", 1, "sched-a")
        store.release("j1")
        assert store.renew("j1", 1, "sched-a") is False


class TestExpiry:
    def test_expire_helper_ages_past_ttl(self, store):
        store.acquire("j1", 3, "sched-a")
        store.expire("j1")
        lease = store.peek("j1")
        assert lease is not None
        assert lease.expired()
        assert not store.alive("j1")
        # epoch and owner survive: recovery can journal who abandoned it
        assert (lease.epoch, lease.owner) == (3, "sched-a")

    def test_expired_lease_is_still_renewable_by_its_owner(self, store):
        """A stalled-then-resumed worker may renew an expired-but-not-
        superseded lease; fencing only kicks in once someone re-claims."""
        store.acquire("j1", 1, "sched-a")
        store.expire("j1")
        assert store.renew("j1", 1, "sched-a") is True
        assert store.alive("j1")

    def test_torn_lease_file_reads_as_absent(self, store, tmp_path):
        store.acquire("j1", 1, "sched-a")
        store.path("j1").write_text('{"job_id": "j1", "unknown_fie')
        assert store.peek("j1") is None
        assert not store.alive("j1")


class TestLeaseValue:
    def test_roundtrip(self):
        lease = Lease("j1", 4, "sched-x", 123.0, 30.0)
        assert Lease.from_dict(lease.to_dict()) == lease

    def test_expired_is_ttl_relative(self):
        lease = Lease("j1", 1, "o", renewed_at=100.0, ttl=30.0)
        assert not lease.expired(now=120.0)
        assert lease.expired(now=131.0)
