"""Integration: crash isolation, retry-from-checkpoint, cache hits.

This is the acceptance scenario of the batch service: a batch of four
jobs on a two-worker pool, one job rigged to hard-kill its worker
process. The kill must not disturb the three siblings; the rigged job
is retried (resuming from its newest checkpoint) and — because every
attempt dies identically, the poison-job signature — finally
quarantined; resubmitting the identical batch completes the successful
jobs straight from the result cache with zero steps executed.
"""

import json
import os
import time

import pytest

from repro.io.batch_io import read_json, write_json_atomic
from repro.service import BatchClient, JobSpec, JobState, WorkerPool


def healthy_spec(i: int) -> JobSpec:
    return JobSpec(
        model="wall", engine="serial", steps=4, time_step=1e-3,
        dynamic=True, tag=f"healthy-{i}",
    )


KILLER = JobSpec(
    model="wall", engine="serial", steps=6, time_step=1e-3, dynamic=True,
    checkpoint_every=2, kill_at_step=4, tag="killer",
)


@pytest.fixture(scope="module")
def batch(tmp_path_factory):
    """Run the 4-job batch once; the tests dissect the aftermath."""
    root = tmp_path_factory.mktemp("batch")
    client = BatchClient(root)
    killer_record = client.submit(KILLER, max_retries=1)
    healthy_records = [client.submit(healthy_spec(i)) for i in range(3)]
    tallies = client.run(n_workers=2)
    return client, killer_record, healthy_records, tallies


class TestCrashIsolation:
    def test_siblings_all_succeed(self, batch):
        client, _killer, healthy_records, tallies = batch
        assert tallies["succeeded"] == 3
        for record in healthy_records:
            reloaded = client.queue.load_record(record.job_id)
            assert reloaded.state == JobState.SUCCEEDED
            outcome = client.result(record.job_id)
            assert outcome["status"] == "succeeded"
            assert outcome["steps_executed"] == 4
            assert outcome["failure"] is None

    def test_killed_job_retried_then_quarantined(self, batch):
        client, killer, _healthy, tallies = batch
        assert tallies["failed"] == 0
        assert tallies["quarantined"] == 1
        assert tallies["retried"] == 1
        reloaded = client.queue.load_record(killer.job_id)
        # both attempts died with the identical error: poison signature
        assert reloaded.state == JobState.QUARANTINED
        assert reloaded.attempts == 2  # first run + one retry
        assert "WorkerCrashed" in reloaded.error
        # every attempt was logged as a crash (exit code, no outcome)
        assert [a["crash"] for a in reloaded.attempt_log] == [True, True]
        assert reloaded.attempt_log[0]["exitcode"] == 137

    def test_retry_resumed_from_newest_checkpoint(self, batch):
        client, killer, _healthy, _tallies = batch
        checkpoints = client.scratch_root / killer.job_id / "checkpoints"

        # checkpoint dirs are stamped with the attempt's fencing epoch
        def attempt_dir(n):
            matches = sorted(checkpoints.glob(f"attempt-e*-{n:03d}"))
            assert matches, f"no checkpoint dir for attempt {n}"
            return matches[-1]

        # attempt 0 started from scratch and checkpointed up to step 4
        offset0 = read_json(attempt_dir(0) / "offset.json")
        assert offset0 == {"offset": 0}
        saved = sorted(p.name for p in attempt_dir(0).glob("*.npz"))
        assert "checkpoint_00000004.npz" in saved
        # attempt 1 resumed from global step 4, not from zero
        offset1 = read_json(attempt_dir(1) / "offset.json")
        assert offset1 == {"offset": 4}

    def test_failure_report_written(self, batch):
        client, killer, _healthy, _tallies = batch
        outcome = client.result(killer.job_id)
        assert outcome["status"] == "quarantined"
        assert outcome["attempts"] == 2
        assert "WorkerCrashed" in outcome["error"]


class TestResubmissionHitsCache:
    def test_identical_batch_resolves_from_cache(self, batch):
        client, _killer, _healthy, _tallies = batch
        hits_before = client.store.stats()["hits"]
        # a fresh client on the same directory (scheduler restart)
        resubmit = BatchClient(client.root)
        records = [resubmit.submit(healthy_spec(i)) for i in range(3)]
        tallies = resubmit.run(n_workers=2)
        assert tallies == {
            "dispatched": 0, "cache_hits": 3,
            "succeeded": 3, "failed": 0, "retried": 0, "cancelled": 0,
            "quarantined": 0, "fenced": 0,
        }
        # the ResultStore hit counter is the proof of zero execution
        assert resubmit.store.stats()["hits"] == hits_before + 3
        for record in records:
            outcome = resubmit.result(record.job_id)
            assert outcome["status"] == "succeeded"
            assert outcome["cached"] is True
            assert outcome["steps_executed"] == 0

    def test_failed_spec_is_not_cached(self, batch):
        client, _killer, _healthy, _tallies = batch
        assert KILLER.spec_hash() not in client.store


class TestEngineFailureRetry:
    def test_fault_injected_job_fails_without_crashing(self, tmp_path):
        """A NaN-injecting chaos fault fails the job through the typed
        SimulationError path: the worker exits cleanly with a failure
        outcome (no crash), is retried, and — failing identically both
        times — ends up quarantined."""
        client = BatchClient(tmp_path / "b")
        faulty = JobSpec(
            model="wall", engine="serial", steps=6, dynamic=True,
            contracts="full",  # detection turns the fault into a typed error
            inject_faults=1, fault_names=("solution_nan",), fault_step=1,
            tag="faulty",
        )
        record = client.submit(faulty, max_retries=1)
        tallies = client.run(n_workers=1)
        assert tallies["quarantined"] == 1
        assert tallies["retried"] == 1
        reloaded = client.queue.load_record(record.job_id)
        assert reloaded.state == JobState.QUARANTINED
        assert reloaded.attempts == 2
        # both attempts reported a structured failure, not a crash
        for attempt in reloaded.attempt_log:
            assert attempt["status"] == "failed"
            assert "crash" not in attempt


class TestConcurrentClientSafety:
    """A client opening the batch directory must never steal live work."""

    def _claim_as_running(self, client, record):
        claimed, ticket = client.queue.claim()
        assert claimed.job_id == record.job_id
        claimed.state = JobState.RUNNING
        claimed.worker_pid = os.getpid()  # certainly alive
        client.queue.save_record(claimed)
        return claimed, ticket

    def test_client_open_leaves_claimed_tickets_alone(self, tmp_path):
        """batch status/submit while 'batch run' drains: no ticket theft."""
        client = BatchClient(tmp_path / "b")
        record = client.submit(healthy_spec(0))
        self._claim_as_running(client, record)
        observer = BatchClient(client.root)  # e.g. a `batch status` call
        assert observer.queue.pending() == 0
        reloaded = observer.queue.load_record(record.job_id)
        assert reloaded.state == JobState.RUNNING
        assert reloaded.worker_pid == os.getpid()

    def test_recovery_spares_live_claimants(self, tmp_path):
        """Even explicit recovery is gated on claimant liveness."""
        client = BatchClient(tmp_path / "b")
        record = client.submit(healthy_spec(0))
        self._claim_as_running(client, record)
        assert client.queue.recover() == 0
        assert client.queue.load_record(record.job_id).state == JobState.RUNNING

    def test_pool_run_recovers_dead_claimants(self, tmp_path):
        """WorkerPool.run() reclaims tickets whose lease has expired."""
        client = BatchClient(tmp_path / "b")
        record = client.submit(healthy_spec(0))
        claimed, ticket = client.queue.claim()
        claimed.state = JobState.RUNNING
        client.queue.save_record(claimed)
        # simulate a dead scheduler: lease expired, ticket past grace
        client.queue.leases.expire(record.job_id)
        old = time.time() - 5.0
        os.utime(client.queue.claimed_dir / ticket, (old, old))
        tallies = client.run(n_workers=1)
        assert tallies["succeeded"] == 1
        assert client.queue.load_record(record.job_id).state == JobState.SUCCEEDED


class TestCancellationTombstone:
    def test_cancel_between_claim_and_dispatch_aborts(self, tmp_path):
        """A cancel racing the claim is honoured at dispatch time."""
        client = BatchClient(tmp_path / "b")
        record = client.submit(healthy_spec(0))
        pool = WorkerPool(client.queue, client.store, client.scratch_root)
        claimed = client.queue.claim()  # a pool won the claim race...
        assert client.cancel(record.job_id)  # ...then the user cancelled
        assert pool._dispatch(*claimed) is None  # no worker is spawned
        assert client.queue.load_record(record.job_id).state == JobState.CANCELLED
        assert pool.stats["cancelled"] == 1
        assert client.queue.claim() is None  # the ticket was retired

    def test_cancelled_job_is_not_retried(self, tmp_path):
        """A tombstone seen at finish time suppresses the retry."""
        client = BatchClient(tmp_path / "b")
        doomed = JobSpec(
            model="wall", engine="serial", steps=4, dynamic=True,
            kill_at_step=1, tag="doomed",
        )
        record = client.submit(doomed, max_retries=3)
        (client.queue.cancelled_dir / record.job_id).touch()
        # tombstone-only (no record rewrite): claim still consumes it
        tallies = client.run(n_workers=1)
        assert tallies["retried"] == 0 and tallies["dispatched"] == 0
        assert client.queue.load_record(record.job_id).state == JobState.CANCELLED


class TestCacheAuthority:
    def test_recovered_job_still_hits_sibling_cache(self, tmp_path):
        """The cache is consulted on every dispatch, retries included."""
        client = BatchClient(tmp_path / "b")
        client.submit(healthy_spec(0))
        assert client.run(n_workers=1)["succeeded"] == 1  # seeds the cache
        record = client.submit(healthy_spec(0))
        reloaded = client.queue.load_record(record.job_id)
        reloaded.attempts = 1  # as left behind by a scheduler crash
        client.queue.save_record(reloaded)
        tallies = client.run(n_workers=1)
        assert tallies["cache_hits"] == 1
        assert tallies["dispatched"] == 0

    def test_resumed_success_caches_global_step_count(self, tmp_path):
        """A success resumed at step 4 of 6 must cache 6 steps, not 2."""
        client = BatchClient(tmp_path / "b")
        spec = healthy_spec(0)
        record = client.submit(spec)
        pool = WorkerPool(client.queue, client.store, client.scratch_root)
        claimed, ticket = client.queue.claim()
        outcome_path = client.scratch_root / record.job_id / "outcome.json"
        write_json_atomic(outcome_path, {
            "status": "succeeded", "attempt": 1, "pid": 1234,
            "steps_executed": 2, "resumed_from": 4, "total_steps": 6,
        })

        class _DoneProcess:
            exitcode = 0

        from repro.service.pool import _Slot
        claimed.attempts = 2
        pool._finish(_Slot(
            _DoneProcess(), claimed, ticket, outcome_path, 0.0,
            claimed.lease_epoch, None,
        ))
        entry = client.store.peek(spec.spec_hash())
        assert entry["steps_executed"] == 6
        assert entry["total_steps"] == 6
        assert entry["resumed_from"] == 0


class TestStatusSurface:
    def test_status_reflects_terminal_states(self, batch):
        client, _killer, _healthy, _tallies = batch
        status = client.status()
        assert status["counts"]["quarantined"] == 1
        assert status["counts"]["succeeded"] >= 3
        assert status["counts"]["queued"] == 0
        states = {row["job_id"]: row["state"] for row in status["jobs"]}
        assert JobState.QUARANTINED in states.values()
        assert json.dumps(status)  # JSON-serialisable for --json
