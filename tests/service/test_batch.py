"""Integration: crash isolation, retry-from-checkpoint, cache hits.

This is the acceptance scenario of the batch service: a batch of four
jobs on a two-worker pool, one job rigged to hard-kill its worker
process. The kill must not disturb the three siblings; the rigged job
is retried (resuming from its newest checkpoint) and finally reported
failed; resubmitting the identical batch completes the successful jobs
straight from the result cache with zero steps executed.
"""

import json

import pytest

from repro.io.batch_io import read_json
from repro.service import BatchClient, JobSpec, JobState


def healthy_spec(i: int) -> JobSpec:
    return JobSpec(
        model="wall", engine="serial", steps=4, time_step=1e-3,
        dynamic=True, tag=f"healthy-{i}",
    )


KILLER = JobSpec(
    model="wall", engine="serial", steps=6, time_step=1e-3, dynamic=True,
    checkpoint_every=2, kill_at_step=4, tag="killer",
)


@pytest.fixture(scope="module")
def batch(tmp_path_factory):
    """Run the 4-job batch once; the tests dissect the aftermath."""
    root = tmp_path_factory.mktemp("batch")
    client = BatchClient(root)
    killer_record = client.submit(KILLER, max_retries=1)
    healthy_records = [client.submit(healthy_spec(i)) for i in range(3)]
    tallies = client.run(n_workers=2)
    return client, killer_record, healthy_records, tallies


class TestCrashIsolation:
    def test_siblings_all_succeed(self, batch):
        client, _killer, healthy_records, tallies = batch
        assert tallies["succeeded"] == 3
        for record in healthy_records:
            reloaded = client.queue.load_record(record.job_id)
            assert reloaded.state == JobState.SUCCEEDED
            outcome = client.result(record.job_id)
            assert outcome["status"] == "succeeded"
            assert outcome["steps_executed"] == 4
            assert outcome["failure"] is None

    def test_killed_job_retried_then_failed(self, batch):
        client, killer, _healthy, tallies = batch
        assert tallies["failed"] == 1
        assert tallies["retried"] == 1
        reloaded = client.queue.load_record(killer.job_id)
        assert reloaded.state == JobState.FAILED
        assert reloaded.attempts == 2  # first run + one retry
        assert "WorkerCrashed" in reloaded.error
        # every attempt was logged as a crash (exit code, no outcome)
        assert [a["crash"] for a in reloaded.attempt_log] == [True, True]
        assert reloaded.attempt_log[0]["exitcode"] == 137

    def test_retry_resumed_from_newest_checkpoint(self, batch):
        client, killer, _healthy, _tallies = batch
        checkpoints = client.scratch_root / killer.job_id / "checkpoints"
        # attempt 0 started from scratch and checkpointed up to step 4
        offset0 = read_json(checkpoints / "attempt-000" / "offset.json")
        assert offset0 == {"offset": 0}
        saved = sorted(p.name for p in (checkpoints / "attempt-000").glob("*.npz"))
        assert "checkpoint_00000004.npz" in saved
        # attempt 1 resumed from global step 4, not from zero
        offset1 = read_json(checkpoints / "attempt-001" / "offset.json")
        assert offset1 == {"offset": 4}

    def test_failure_report_written(self, batch):
        client, killer, _healthy, _tallies = batch
        outcome = client.result(killer.job_id)
        assert outcome["status"] == "failed"
        assert outcome["attempts"] == 2
        assert "WorkerCrashed" in outcome["error"]


class TestResubmissionHitsCache:
    def test_identical_batch_resolves_from_cache(self, batch):
        client, _killer, _healthy, _tallies = batch
        hits_before = client.store.stats()["hits"]
        # a fresh client on the same directory (scheduler restart)
        resubmit = BatchClient(client.root)
        records = [resubmit.submit(healthy_spec(i)) for i in range(3)]
        tallies = resubmit.run(n_workers=2)
        assert tallies == {
            "dispatched": 0, "cache_hits": 3,
            "succeeded": 3, "failed": 0, "retried": 0,
        }
        # the ResultStore hit counter is the proof of zero execution
        assert resubmit.store.stats()["hits"] == hits_before + 3
        for record in records:
            outcome = resubmit.result(record.job_id)
            assert outcome["status"] == "succeeded"
            assert outcome["cached"] is True
            assert outcome["steps_executed"] == 0

    def test_failed_spec_is_not_cached(self, batch):
        client, _killer, _healthy, _tallies = batch
        assert KILLER.spec_hash() not in client.store


class TestEngineFailureRetry:
    def test_fault_injected_job_fails_without_crashing(self, tmp_path):
        """A NaN-injecting chaos fault fails the job through the typed
        SimulationError path: the worker exits cleanly with a failure
        outcome (no crash), is retried, and ends up failed."""
        client = BatchClient(tmp_path / "b")
        faulty = JobSpec(
            model="wall", engine="serial", steps=6, dynamic=True,
            contracts="full",  # detection turns the fault into a typed error
            inject_faults=1, fault_names=("solution_nan",), fault_step=1,
            tag="faulty",
        )
        record = client.submit(faulty, max_retries=1)
        tallies = client.run(n_workers=1)
        assert tallies["failed"] == 1
        assert tallies["retried"] == 1
        reloaded = client.queue.load_record(record.job_id)
        assert reloaded.state == JobState.FAILED
        assert reloaded.attempts == 2
        # both attempts reported a structured failure, not a crash
        for attempt in reloaded.attempt_log:
            assert attempt["status"] == "failed"
            assert "crash" not in attempt


class TestStatusSurface:
    def test_status_reflects_terminal_states(self, batch):
        client, _killer, _healthy, _tallies = batch
        status = client.status()
        assert status["counts"]["failed"] == 1
        assert status["counts"]["succeeded"] >= 3
        assert status["counts"]["queued"] == 0
        states = {row["job_id"]: row["state"] for row in status["jobs"]}
        assert JobState.FAILED in states.values()
        assert json.dumps(status)  # JSON-serialisable for --json
