"""JobSpec/JobRecord: hashing stability, round-trips, validation."""

import dataclasses
import os
import subprocess
import sys

import pytest

from repro.service.spec import JobRecord, JobSpec, JobState

BASE = JobSpec(
    model="slope", engine="serial", steps=10, time_step=2e-3,
    dynamic=True, preconditioner="ssor", size=5.0, seed=3,
    contracts="cheap", checkpoint_every=2, tag="base",
)

#: One changed value per JobSpec field — the hash must react to all.
VARIATIONS = {
    "model": "rocks",
    "load": "results/some_model",
    "engine": "gpu",
    "profile": "k20",
    "steps": 11,
    "time_step": 1e-3,
    "dynamic": False,
    "preconditioner": "bj",
    "size": 6.0,
    "seed": 4,
    "contracts": "full",
    "checkpoint_every": 3,
    "max_rollbacks": 5,
    "inject_faults": 7,
    "fault_names": ("solution_nan",),
    "fault_step": 2,
    "kill_at_step": 4,
    "kill_once": True,
    "tag": "other",
}


class TestHashing:
    def test_hash_is_deterministic(self):
        assert BASE.spec_hash() == BASE.spec_hash()
        rebuilt = JobSpec.from_dict(BASE.to_dict())
        assert rebuilt.spec_hash() == BASE.spec_hash()

    def test_every_field_covered_by_variations(self):
        assert set(VARIATIONS) == {f.name for f in dataclasses.fields(JobSpec)}

    def test_any_field_change_changes_the_hash(self):
        base_hash = BASE.spec_hash()
        hashes = {base_hash}
        for field, value in VARIATIONS.items():
            changed = dataclasses.replace(BASE, **{field: value})
            h = changed.spec_hash()
            assert h != base_hash, f"changing {field!r} did not change the hash"
            hashes.add(h)
        # and the changed specs are pairwise distinct too
        assert len(hashes) == len(VARIATIONS) + 1

    def test_hash_stable_across_processes(self):
        """A fresh interpreter computes the identical hash."""
        code = (
            "import json,sys;"
            "from repro.service.spec import JobSpec;"
            "print(JobSpec.from_dict(json.loads(sys.argv[1])).spec_hash())"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        import json

        out = subprocess.run(
            [sys.executable, "-c", code, json.dumps(BASE.to_dict())],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == BASE.spec_hash()

    def test_fault_names_list_normalised_to_tuple(self):
        """JSON has no tuples; a list round-trip must not change the hash."""
        spec = dataclasses.replace(BASE, fault_names=("solution_nan",))
        from_json = JobSpec.from_dict(spec.to_dict())
        assert from_json.fault_names == ("solution_nan",)
        assert from_json.spec_hash() == spec.spec_hash()


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"model": "nonsense"},
            {"engine": "tpu"},
            {"profile": "h100"},
            {"steps": 0},
            {"time_step": 0.0},
            {"contracts": "sometimes"},
            {"checkpoint_every": -1},
            {"kill_at_step": -2},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            dataclasses.replace(BASE, **kwargs)

    def test_unknown_field_rejected(self):
        d = BASE.to_dict()
        d["gpu_count"] = 8
        with pytest.raises(ValueError, match="gpu_count"):
            JobSpec.from_dict(d)


class TestJobRecord:
    def test_round_trip(self):
        record = JobRecord(
            job_id="j000001-abcd1234", spec=BASE, priority=5,
            max_retries=2, attempts=1, state=JobState.RUNNING,
            attempt_log=[{"attempt": 0, "crash": True}],
        )
        rebuilt = JobRecord.from_dict(record.to_dict())
        assert rebuilt == record

    def test_terminal_states(self):
        assert JobState.SUCCEEDED in JobState.TERMINAL
        assert JobState.RUNNING not in JobState.TERMINAL
        assert set(JobState.TERMINAL) <= set(JobState.ALL)
