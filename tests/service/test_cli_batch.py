"""The ``python -m repro batch`` CLI surface, end to end."""

import json

from repro.__main__ import main


def test_submit_run_status_results_walkthrough(tmp_path, capsys):
    batch_dir = str(tmp_path / "batch")

    rc = main(["batch", "submit", "--dir", batch_dir, "--model", "wall",
               "--engine", "serial", "--steps", "2", "--dynamic",
               "--tag", "one"])
    assert rc == 0
    assert "submitted j" in capsys.readouterr().out

    rc = main(["batch", "submit", "--dir", batch_dir, "--model", "wall",
               "--engine", "serial", "--steps", "2", "--dynamic",
               "--tag", "two", "--priority", "5"])
    assert rc == 0
    capsys.readouterr()

    rc = main(["batch", "run", "--dir", batch_dir, "--workers", "2",
               "--quiet"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "succeeded 2" in out

    rc = main(["batch", "status", "--dir", batch_dir, "--json"])
    assert rc == 0
    status = json.loads(capsys.readouterr().out)
    assert status["counts"]["succeeded"] == 2
    assert len(status["jobs"]) == 2

    rc = main(["batch", "results", "--dir", batch_dir, "--json"])
    assert rc == 0
    results = json.loads(capsys.readouterr().out)
    assert len(results) == 2
    assert all(r["status"] == "succeeded" for r in results.values())

    # an identical resubmission is a cache hit (0 steps executed)
    rc = main(["batch", "submit", "--dir", batch_dir, "--model", "wall",
               "--engine", "serial", "--steps", "2", "--dynamic",
               "--tag", "one"])
    assert rc == 0
    capsys.readouterr()
    rc = main(["batch", "run", "--dir", batch_dir, "--quiet"])
    assert rc == 0
    assert "cache hits 1" in capsys.readouterr().out


def test_run_exit_code_signals_failures(tmp_path, capsys):
    batch_dir = str(tmp_path / "batch")
    rc = main(["batch", "submit", "--dir", batch_dir, "--model", "wall",
               "--engine", "serial", "--steps", "4", "--dynamic",
               "--checkpoint-every", "1", "--kill-at-step", "2",
               "--max-retries", "0"])
    assert rc == 0
    capsys.readouterr()
    rc = main(["batch", "run", "--dir", batch_dir, "--quiet"])
    assert rc == 1
    assert "failed 1" in capsys.readouterr().out


def test_cancel_queued_job(tmp_path, capsys):
    batch_dir = str(tmp_path / "batch")
    main(["batch", "submit", "--dir", batch_dir, "--model", "wall",
          "--engine", "serial", "--steps", "2"])
    out = capsys.readouterr().out
    job_id = out.split()[1]
    assert main(["batch", "cancel", "--dir", batch_dir, job_id]) == 0
    capsys.readouterr()
    rc = main(["batch", "status", "--dir", batch_dir, "--json"])
    assert rc == 0
    status = json.loads(capsys.readouterr().out)
    assert status["counts"]["cancelled"] == 1
    assert main(["batch", "cancel", "--dir", batch_dir, "nope"]) == 1
