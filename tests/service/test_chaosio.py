"""Storage fault injector: determinism, budget, fault semantics."""

import errno
import json

import pytest

from repro.io import batch_io
from repro.io.batch_io import read_json, write_json_atomic
from repro.service.chaosio import (
    ChaosIOError,
    IOFaultInjector,
    IOFaultPlan,
    IO_FAULT_REGISTRY,
    install,
)


@pytest.fixture(autouse=True)
def clean_chaos():
    """Every test starts and ends with a disarmed process."""
    install(None)
    yield
    install(None)
    batch_io.set_force_sidecar(False)


def plan(**kwargs) -> IOFaultPlan:
    defaults = dict(seed=7, rate=1.0)
    defaults.update(kwargs)
    return IOFaultPlan(**defaults)


class TestPlan:
    def test_roundtrip_via_file(self, tmp_path):
        p = plan(faults=("torn_write", "enospc"), paths=("jobs",),
                 max_faults=5, latency_s=0.01)
        path = p.save(tmp_path / "plan.json")
        assert IOFaultPlan.load(path) == p

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError, match="unknown io fault"):
            IOFaultPlan(faults=("disk_melts",))

    def test_rate_validated(self):
        with pytest.raises(ValueError, match="rate"):
            IOFaultPlan(rate=1.5)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown IOFaultPlan"):
            IOFaultPlan.from_dict({"seed": 0, "blast_radius": 3})

    def test_none_faults_arms_whole_registry(self):
        assert set(plan().armed_faults()) == set(IO_FAULT_REGISTRY)


class TestDecisions:
    def test_same_plan_same_decision_stream(self, tmp_path):
        a = IOFaultInjector(plan(rate=0.5))
        b = IOFaultInjector(plan(rate=0.5))
        path = tmp_path / "jobs" / "j1.json"
        stream_a = [a.decide("write", path) for _ in range(64)]
        stream_b = [b.decide("write", path) for _ in range(64)]
        assert stream_a == stream_b
        assert any(f is not None for f in stream_a)

    def test_different_seed_different_stream(self, tmp_path):
        a = IOFaultInjector(plan(seed=1, rate=0.5))
        b = IOFaultInjector(plan(seed=2, rate=0.5))
        path = tmp_path / "jobs" / "j1.json"
        assert [a.decide("write", path) for _ in range(64)] != [
            b.decide("write", path) for _ in range(64)
        ]

    def test_budget_caps_total_injections(self, tmp_path):
        inj = IOFaultInjector(plan(max_faults=3))
        path = tmp_path / "jobs" / "j1.json"
        for _ in range(50):
            inj.decide("write", path)
        assert inj.total == 3

    def test_journal_and_plan_paths_protected(self, tmp_path):
        inj = IOFaultInjector(plan())
        for _ in range(20):
            assert inj.decide("write", tmp_path / "journal" / "e.jsonl") is None
            assert inj.decide("read", tmp_path / "chaos-plan.json") is None
        assert inj.total == 0

    def test_path_filter_restricts_targets(self, tmp_path):
        inj = IOFaultInjector(plan(paths=("leases",)))
        assert inj.decide("write", tmp_path / "jobs" / "j.json") is None
        assert inj.decide("write", tmp_path / "leases" / "j.json") is not None

    def test_op_gating(self, tmp_path):
        # torn_write is a write fault: a read-only arming never fires
        inj = IOFaultInjector(plan(faults=("torn_write",)))
        for _ in range(20):
            assert inj.decide("read", tmp_path / "jobs" / "j.json") is None
        assert inj.decide("write", tmp_path / "jobs" / "j.json") == "torn_write"


class TestWriteFaultSemantics:
    """What each structural fault leaves on disk, via write_json_atomic."""

    def arm(self, fault: str) -> IOFaultInjector:
        return install(plan(faults=(fault,)))

    def test_torn_write_leaves_unreadable_file(self, tmp_path):
        self.arm("torn_write")
        target = tmp_path / "jobs" / "r.json"
        with pytest.raises(ChaosIOError) as err:
            write_json_atomic(target, {"k": list(range(50))})
        assert err.value.fault == "torn_write"
        assert target.exists()
        with pytest.raises(ValueError):
            json.loads(target.read_text())
        # the reader contract: torn degrades to missing, never wrong data
        install(None)
        assert read_json(target) is None

    def test_crash_before_rename_preserves_old_content(self, tmp_path):
        target = tmp_path / "jobs" / "r.json"
        write_json_atomic(target, {"v": 1})
        self.arm("crash_before_rename")
        with pytest.raises(ChaosIOError):
            write_json_atomic(target, {"v": 2})
        install(None)
        assert read_json(target) == {"v": 1}
        # no tmp litter either
        assert list(target.parent.glob("*.tmp")) == []

    def test_crash_after_rename_lands_despite_error(self, tmp_path):
        target = tmp_path / "jobs" / "r.json"
        self.arm("crash_after_rename")
        with pytest.raises(ChaosIOError):
            write_json_atomic(target, {"v": 2})
        install(None)
        # the caller saw a failure, but the write took effect: callers
        # must be idempotent (the scheduler trusts the outcome file)
        assert read_json(target) == {"v": 2}

    def test_enospc_raises_with_errno_and_writes_nothing(self, tmp_path):
        self.arm("enospc")
        target = tmp_path / "jobs" / "r.json"
        with pytest.raises(OSError) as err:
            write_json_atomic(target, {"v": 1})
        assert err.value.errno == errno.ENOSPC
        assert not target.exists()

    def test_stale_lock_is_absorbed_by_takeover(self, tmp_path):
        """A planted ancient sidecar must not deadlock locked_fd."""
        install(plan(faults=("stale_lock",)))
        counter = tmp_path / "jobs" / "seq"
        with batch_io.locked_fd(counter) as fd:
            assert fd >= 0
        # the fault forced sidecar mode and planted a stale lock; the
        # acquisition above had to take it over to succeed
        assert batch_io.get_io_chaos().counts.get("stale_lock", 0) >= 1


class TestEnvArming:
    def test_install_from_env_arms_lazily(self, tmp_path, monkeypatch):
        from repro.service.chaosio import install_from_env

        p = plan(faults=("enospc",))
        path = p.save(tmp_path / "chaos-plan.json")
        monkeypatch.setenv(batch_io.CHAOS_PLAN_ENV, str(path))
        inj = install_from_env()
        assert inj is not None and inj.plan == p
        with pytest.raises(OSError):
            write_json_atomic(tmp_path / "jobs" / "x.json", {})

    def test_unset_env_disarms(self, monkeypatch):
        from repro.service.chaosio import install_from_env

        monkeypatch.delenv(batch_io.CHAOS_PLAN_ENV, raising=False)
        assert install_from_env() is None
        assert batch_io.get_io_chaos() is None
