import math

import numpy as np
import pytest

from repro.analysis.forces import contact_forces
from repro.analysis.strength_reduction import (
    factor_of_safety,
    probe_stability,
    reduced_joint,
)
from repro.contact.contact_set import ContactSet
from repro.core.blocks import Block, BlockSystem
from repro.core.materials import BlockMaterial, JointMaterial
from repro.core.state import SimulationControls
from repro.engine.gpu_engine import GpuEngine

SQ = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
MAT = BlockMaterial(young=1e9)


def settled_stack():
    base = np.array([[0, 0], [3, 0], [3, 1], [0, 1.0]])
    s = BlockSystem(
        [Block(base, MAT), Block(SQ + np.array([1.0, 1.001]), MAT)],
        JointMaterial(friction_angle_deg=30.0),
    )
    s.fix_block(0)
    e = GpuEngine(
        s, SimulationControls(time_step=1e-3, dynamic=True,
                              max_displacement_ratio=0.05),
    )
    e.run(steps=150)
    return s, e


class TestContactForces:
    def test_resting_block_carries_its_weight(self):
        s, e = settled_stack()
        forces = contact_forces(s, e._contacts)
        weight = 2600.0 * 9.81 * 1.0  # rho g area
        assert forces.total_normal == pytest.approx(weight, rel=0.2)

    def test_open_contacts_carry_nothing(self):
        s, e = settled_stack()
        forces = contact_forces(s, e._contacts)
        open_mask = forces.states == 0
        np.testing.assert_allclose(forces.normal[open_mask], 0.0)

    def test_mobilisation_bounded(self):
        s, e = settled_stack()
        forces = contact_forces(s, e._contacts)
        assert ((forces.mobilisation >= 0) & (forces.mobilisation <= 1)).all()

    def test_carrying_selector(self):
        s, e = settled_stack()
        forces = contact_forces(s, e._contacts)
        idx = forces.carrying()
        assert idx.size >= 1
        assert (forces.normal[idx] > 0).all()

    def test_empty_contacts(self):
        s = BlockSystem([Block(SQ)])
        forces = contact_forces(s, ContactSet.empty())
        assert forces.normal.size == 0
        assert forces.total_normal == 0.0


class TestStrengthReduction:
    @staticmethod
    def _ramp_builder(slope_deg=30.0, phi_deg=40.0):
        def build():
            th = math.radians(slope_deg)
            ramp = np.array(
                [[0, 0], [10, 0], [10, 10 * math.tan(th)]]
            )[::-1]
            c, s_ = math.cos(th), math.sin(th)
            rot = np.array([[c, -s_], [s_, c]])
            sq = (SQ - [0.5, 0]) @ rot.T
            center = np.array([5.0, 5 * math.tan(th)]) + rot @ [0, 0.001]
            system = BlockSystem(
                [Block(ramp, MAT), Block(sq + center, MAT)],
                JointMaterial(friction_angle_deg=phi_deg),
            )
            system.fix_block(0)
            return system

        return build

    def test_reduced_joint(self):
        j = JointMaterial(friction_angle_deg=45.0, cohesion=100.0)
        r = reduced_joint(j, 2.0)
        assert r.tan_phi == pytest.approx(0.5)
        assert r.cohesion == pytest.approx(50.0)

    def test_reduced_joint_identity(self):
        j = JointMaterial(friction_angle_deg=33.0, cohesion=7.0)
        r = reduced_joint(j, 1.0)
        assert r.friction_angle_deg == pytest.approx(33.0)

    def test_probe_detects_failure(self):
        # block on a 30-degree ramp with phi = 40: stable at F = 1,
        # failed at F = 3 (phi reduces to ~15.6 < 30)
        build = self._ramp_builder()
        controls = SimulationControls(time_step=1e-3, dynamic=True,
                                      max_displacement_ratio=0.05)
        _, failed_low = probe_stability(build, controls, 1.0, steps=150)
        _, failed_high = probe_stability(build, controls, 3.0, steps=150)
        assert not failed_low
        assert failed_high

    def test_factor_of_safety_matches_analytic(self):
        # analytic FoS of a block on an incline: tan(phi) / tan(theta)
        # = tan(40) / tan(30) = 1.45
        build = self._ramp_builder(slope_deg=30.0, phi_deg=40.0)
        controls = SimulationControls(time_step=1e-3, dynamic=True,
                                      max_displacement_ratio=0.05)
        result = factor_of_safety(
            build, controls, f_min=0.5, f_max=4.0, tolerance=0.25, steps=150
        )
        expected = math.tan(math.radians(40)) / math.tan(math.radians(30))
        assert result.factor_of_safety == pytest.approx(expected, rel=0.3)
        lo, hi = result.bracket
        assert lo <= result.factor_of_safety <= hi

    def test_invalid_bracket(self):
        with pytest.raises(ValueError):
            factor_of_safety(lambda: None, f_min=2.0, f_max=1.0)
