import numpy as np
import pytest

from repro.analysis.energy import kinetic_energy, potential_energy, total_energy
from repro.analysis.interpenetration import system_interpenetration_audit
from repro.core.blocks import Block, BlockSystem
from repro.core.materials import BlockMaterial

SQ = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])


class TestEnergy:
    def test_kinetic_translation(self):
        s = BlockSystem([Block(SQ, BlockMaterial(density=2000.0))])
        s.velocities[0, 0] = 3.0
        # 1/2 m v^2 with m = rho * area
        assert kinetic_energy(s) == pytest.approx(0.5 * 2000.0 * 9.0)

    def test_kinetic_rotation(self):
        s = BlockSystem([Block(SQ, BlockMaterial(density=1000.0))])
        s.velocities[0, 2] = 2.0
        # 1/2 I w^2 with I = rho (Sxx + Syy) = 1000 * (1/12 + 1/12)
        assert kinetic_energy(s) == pytest.approx(0.5 * 1000.0 / 6.0 * 4.0)

    def test_kinetic_zero_at_rest(self):
        s = BlockSystem([Block(SQ)])
        assert kinetic_energy(s) == 0.0

    def test_potential(self):
        s = BlockSystem([Block(SQ + [0.0, 4.0], BlockMaterial(density=1000.0))])
        assert potential_energy(s, gravity=10.0) == pytest.approx(
            1000.0 * 10.0 * 1.0 * 4.5
        )

    def test_total(self):
        s = BlockSystem([Block(SQ, BlockMaterial(density=1.0))])
        s.velocities[0, 1] = 1.0
        assert total_energy(s, gravity=0.0) == pytest.approx(kinetic_energy(s))

    def test_settling_dissipates_energy(self):
        from repro.core.materials import JointMaterial
        from repro.core.state import SimulationControls
        from repro.engine.gpu_engine import GpuEngine

        base = np.array([[0, 0], [3, 0], [3, 1], [0, 1.0]])
        mat = BlockMaterial(young=1e9)
        s = BlockSystem(
            [Block(base, mat), Block(SQ + np.array([1.0, 1.005]), mat)],
            JointMaterial(friction_angle_deg=30.0),
        )
        s.fix_block(0)
        c = SimulationControls(time_step=1e-3, dynamic=True, gravity=9.81,
                               max_displacement_ratio=0.05)
        e0 = total_energy(s)
        GpuEngine(s, c).run(steps=150)
        assert total_energy(s) < e0


class TestInterpenetrationAudit:
    def test_clean_system(self):
        s = BlockSystem([Block(SQ), Block(SQ + np.array([2.0, 0.0]))])
        rep = system_interpenetration_audit(s)
        assert rep.max_depth == 0.0
        assert rep.n_penetrating == 0
        assert rep.offender_block == -1

    def test_detects_overlap(self):
        # corner of block 1 at (0.9, 0.4): strictly inside block 0 with
        # 0.1 extraction distance to the nearest (x = 1) edge
        s = BlockSystem([Block(SQ), Block(SQ + np.array([0.9, 0.4]))])
        rep = system_interpenetration_audit(s)
        assert rep.n_penetrating > 0
        assert rep.max_depth == pytest.approx(0.1, abs=1e-9)
        assert rep.offender_block in (0, 1)

    def test_touching_not_penetrating(self):
        s = BlockSystem([Block(SQ), Block(SQ + np.array([1.0 + 1e-9, 0.0]))])
        rep = system_interpenetration_audit(s)
        assert rep.max_depth == pytest.approx(0.0, abs=1e-8)
