import numpy as np
import pytest

from repro.analysis.divergence_demo import (
    naive_branch_kernel,
    restructured_branch_kernel,
)
from repro.gpu.device import K40
from repro.gpu.kernel import VirtualDevice


def make_inputs(rng, n=32 * 64, sorted_a=False):
    a = rng.choice([0, 2], size=n).astype(np.int64)
    if sorted_a:
        a = np.sort(a)
    c = rng.uniform(-1, 1, n)
    d = rng.uniform(-1, 1, n)
    e = rng.uniform(-2, 2, n)
    f = rng.uniform(-2, 2, n)
    g = rng.uniform(0.5, 2.0, n)
    return a, c, d, e, f, g


class TestEquivalence:
    def test_same_results(self, rng):
        args = make_inputs(rng)
        np.testing.assert_allclose(
            naive_branch_kernel(*args),
            restructured_branch_kernel(*args),
            rtol=1e-12,
        )

    def test_path0_value(self):
        # a == 0: j = |tan(c d) e| - |f|
        a = np.array([0], dtype=np.int64)
        one = np.array([1.0])
        j = restructured_branch_kernel(a, one * 0.5, one, one * 3, one * 2, one)
        assert j[0] == pytest.approx(abs(np.tan(0.5) * 3) - 2)

    def test_path2_epos_zeroes_b(self):
        a = np.array([2], dtype=np.int64)
        one = np.array([1.0])
        j = naive_branch_kernel(a, one, one, one * 2, one * 3, one * 4)
        assert j[0] == pytest.approx(0.0 - 3.0 / 4.0)

    def test_invalid_code_rejected(self):
        a = np.array([1], dtype=np.int64)
        one = np.array([1.0])
        with pytest.raises(ValueError, match="codes 0 and 2"):
            naive_branch_kernel(a, one, one, one, one, one)

    def test_zero_divisor_rejected(self):
        a = np.array([2], dtype=np.int64)
        one = np.array([1.0])
        with pytest.raises(ValueError, match="non-zero"):
            restructured_branch_kernel(a, one, one, one, one, one * 0)


class TestDivergenceModel:
    def test_naive_diverges_on_mixed_data(self, rng):
        args = make_inputs(rng, sorted_a=False)
        dev = VirtualDevice(K40)
        naive_branch_kernel(*args, device=dev)
        c = dev.total_counters
        assert c.divergent_branch_regions > 0
        assert c.wasted_lane_flops > 0

    def test_restructured_never_diverges(self, rng):
        args = make_inputs(rng, sorted_a=False)
        dev = VirtualDevice(K40)
        restructured_branch_kernel(*args, device=dev)
        assert dev.total_counters.divergent_branch_regions == 0
        assert dev.total_counters.wasted_lane_flops == 0

    def test_restructured_models_faster_on_mixed_data(self, rng):
        args = make_inputs(rng, n=32 * 512)
        d_naive, d_rest = VirtualDevice(K40), VirtualDevice(K40)
        naive_branch_kernel(*args, device=d_naive)
        restructured_branch_kernel(*args, device=d_rest)
        assert d_rest.total_counters.flops + d_rest.total_counters.wasted_lane_flops < (
            d_naive.total_counters.flops + d_naive.total_counters.wasted_lane_flops
        )

    def test_sorted_data_reduces_naive_divergence(self, rng):
        mixed = make_inputs(rng, sorted_a=False)
        grouped = make_inputs(rng, sorted_a=True)
        d_mixed, d_grouped = VirtualDevice(K40), VirtualDevice(K40)
        naive_branch_kernel(*mixed, device=d_mixed)
        naive_branch_kernel(*grouped, device=d_grouped)
        assert (
            d_grouped.total_counters.divergent_branch_regions
            < d_mixed.total_counters.divergent_branch_regions
        )
