import numpy as np
import pytest

from repro.analysis.topology import (
    contact_clusters,
    contact_graph,
    coordination_numbers,
    load_path_depth,
    unanchored_blocks,
)
from repro.assembly.contact_springs import LOCK, OPEN
from repro.contact.contact_set import VE, ContactSet
from repro.core.blocks import Block, BlockSystem

SQ = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])


def chain_system(n=4, fixed_first=True):
    """Blocks in a row; contacts chain 0-1, 1-2, ..."""
    blocks = [Block(SQ + np.array([1.05 * k, 0.0])) for k in range(n)]
    system = BlockSystem(blocks)
    if fixed_first:
        system.fix_block(0)
    m = n - 1
    contacts = ContactSet(
        block_i=np.arange(m, dtype=np.int64),
        block_j=np.arange(1, n, dtype=np.int64),
        vertex_idx=np.arange(m, dtype=np.int64) * 4 + 1,
        e1_idx=np.arange(1, n, dtype=np.int64) * 4,
        e2_idx=np.arange(1, n, dtype=np.int64) * 4 + 3,
        kind=np.full(m, VE, dtype=np.int64),
    )
    contacts.state[:] = LOCK
    return system, contacts


class TestContactGraph:
    def test_nodes_and_edges(self):
        system, contacts = chain_system(4)
        g = contact_graph(system, contacts)
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 3

    def test_fixed_attribute(self):
        system, contacts = chain_system(3)
        g = contact_graph(system, contacts)
        assert g.nodes[0]["fixed"]
        assert not g.nodes[1]["fixed"]

    def test_multiplicity_counted(self):
        system, contacts = chain_system(2)
        doubled = contacts.select(np.array([0, 0]))
        g = contact_graph(system, doubled)
        assert g[0][1]["multiplicity"] == 2

    def test_closed_only_filters_open(self):
        system, contacts = chain_system(3)
        contacts.state[0] = OPEN
        g = contact_graph(system, contacts, closed_only=True)
        assert not g.has_edge(0, 1)
        assert g.has_edge(1, 2)

    def test_empty_contacts(self):
        system, _ = chain_system(3)
        from repro.contact.contact_set import ContactSet

        g = contact_graph(system, ContactSet.empty())
        assert g.number_of_edges() == 0


class TestUnanchored:
    def test_chain_fully_anchored(self):
        system, contacts = chain_system(4)
        assert unanchored_blocks(system, contacts) == []

    def test_broken_chain(self):
        system, contacts = chain_system(4)
        contacts.state[1] = OPEN  # break between block 1 and 2
        assert unanchored_blocks(system, contacts) == [2, 3]

    def test_no_anchors_everything_free(self):
        system, contacts = chain_system(3, fixed_first=False)
        assert unanchored_blocks(system, contacts) == [0, 1, 2]


class TestClustersAndMetrics:
    def test_clusters_sorted_by_size(self):
        system, contacts = chain_system(5)
        contacts.state[1] = OPEN  # split into {0,1} and {2,3,4}
        clusters = contact_clusters(system, contacts)
        assert clusters[0] == [2, 3, 4]
        assert clusters[1] == [0, 1]

    def test_coordination_numbers(self):
        system, contacts = chain_system(4)
        coord = coordination_numbers(system, contacts)
        np.testing.assert_array_equal(coord, [1, 2, 2, 1])

    def test_load_path_depth(self):
        system, contacts = chain_system(4)
        depth = load_path_depth(system, contacts)
        np.testing.assert_array_equal(depth, [0, 1, 2, 3])

    def test_depth_minus_one_when_detached(self):
        system, contacts = chain_system(4)
        contacts.state[2] = OPEN
        depth = load_path_depth(system, contacts)
        assert depth[3] == -1

class TestPartitionAdjacent:
    """The topology queries the domain partitioner builds on."""

    def test_contact_graph_keeps_floating_blocks_as_nodes(self):
        # a block with no contacts must still be a (degree-0) node, so
        # the partitioner sees the full block set, not just the coupled
        _, contacts = chain_system(3)
        blocks = [Block(SQ + np.array([1.05 * k, 0.0])) for k in range(3)]
        blocks.append(Block(SQ + np.array([50.0, 0.0])))
        system_iso = BlockSystem(blocks)
        system_iso.fix_block(0)
        g = contact_graph(system_iso, contacts)
        assert g.number_of_nodes() == 4
        assert g.degree[3] == 0

    def test_fixed_and_floating_blocks_both_mapped(self):
        system, contacts = chain_system(4)
        g = contact_graph(system, contacts)
        fixed = [n for n, d in g.nodes(data=True) if d["fixed"]]
        free = [n for n, d in g.nodes(data=True) if not d["fixed"]]
        assert fixed == [0]
        assert free == [1, 2, 3]

    def test_disconnected_components_force_stripe_fallback(self):
        from repro.domain.partition import partition_blocks

        system, contacts = chain_system(6)
        contacts.state[2] = OPEN  # split the chain in two components
        auto, _ = partition_blocks(
            system, 2, method="auto",
            contacts=contacts.select(np.flatnonzero(contacts.state != OPEN)),
        )
        stripe, _ = partition_blocks(system, 2, method="stripe")
        np.testing.assert_array_equal(auto, stripe)

    def test_connected_chain_uses_the_contact_graph(self):
        from repro.domain.partition import adjacency_pairs

        system, contacts = chain_system(5)
        i, j = adjacency_pairs(system, contacts=contacts)
        g = contact_graph(system, contacts)
        assert set(zip(i.tolist(), j.tolist())) == set(g.edges)


class TestRealEngine:
    def test_real_engine_contacts(self):
        from repro.core.state import SimulationControls
        from repro.engine.gpu_engine import GpuEngine
        from repro.meshing.slope_models import build_brick_wall

        system = build_brick_wall(3, 4)
        engine = GpuEngine(
            system, SimulationControls(time_step=5e-4, dynamic=True)
        )
        engine.run(steps=10)
        # the settled wall is one anchored cluster
        free = unanchored_blocks(system, engine._contacts)
        assert free == []
        coord = coordination_numbers(system, engine._contacts)
        assert coord.mean() > 1.0
