"""Smoke tests: every example script runs end to end.

Each example is executed in-process (same interpreter, patched argv) at a
reduced size, asserting it exits cleanly and prints its headline output.
This keeps the examples working as the library evolves.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(script: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [script] + argv
    try:
        runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", [], capsys)
        assert "quickstart OK" in out

    def test_slope_stability(self, capsys):
        out = run_example(
            "slope_stability.py", ["--spacing", "12", "--steps", "4"], capsys
        )
        assert "speed-up" in out
        assert "initial state" in out

    def test_falling_rocks(self, capsys):
        out = run_example(
            "falling_rocks.py",
            ["--rows", "2", "--cols", "3", "--steps", "40"],
            capsys,
        )
        assert "falling-rocks example OK" in out

    def test_spmv_showcase(self, capsys):
        out = run_example(
            "spmv_showcase.py", ["--n", "200", "--m", "700"], capsys
        )
        assert "correctness OK" in out
        assert "HSBCSR" in out
        assert "SELL" in out

    def test_preconditioner_study(self, capsys):
        out = run_example("preconditioner_study.py", ["--steps", "2"], capsys)
        assert "BJ" in out and "ILU" in out and "NEUMANN" in out

    def test_rubble_collapse(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        out = run_example(
            "rubble_collapse.py",
            ["--blocks", "12", "--max-steps", "30"],
            capsys,
        )
        assert "rubble pile" in out
        assert (tmp_path / "results" / "rubble_steps.csv").exists()

    @pytest.mark.slow
    def test_seismic_sliding_quick(self, capsys):
        out = run_example("seismic_sliding.py", ["--quick"], capsys)
        assert "Newmark" in out

    def test_dda3d_demo(self, capsys):
        out = run_example(
            "dda3d_demo.py", ["--tower", "2", "--steps", "100"], capsys
        )
        assert "3-D demo OK" in out
