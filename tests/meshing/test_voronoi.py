import numpy as np
import pytest

from repro.geometry.polygon import polygon_area
from repro.meshing.voronoi import build_voronoi_rubble, voronoi_cells


class TestVoronoiCells:
    def test_cells_tile_rectangle(self):
        cells = voronoi_cells(10.0, 5.0, 25, seed=1)
        assert len(cells) == 25
        total = sum(polygon_area(c) for c in cells)
        assert total == pytest.approx(50.0, rel=1e-6)

    def test_cells_inside_bounds(self):
        cells = voronoi_cells(8.0, 4.0, 15, seed=2)
        for c in cells:
            assert c[:, 0].min() >= -1e-9 and c[:, 0].max() <= 8.0 + 1e-9
            assert c[:, 1].min() >= -1e-9 and c[:, 1].max() <= 4.0 + 1e-9

    def test_cells_ccw_and_convex(self):
        cells = voronoi_cells(10.0, 10.0, 20, seed=3)
        for c in cells:
            assert polygon_area(c) > 0
            # convexity: every cross product of consecutive edges >= 0
            a = c
            b = np.roll(c, -1, axis=0)
            d = b - a
            cross = d[:, 0] * np.roll(d, -1, axis=0)[:, 1] - d[:, 1] * np.roll(
                d, -1, axis=0
            )[:, 0]
            assert (cross > -1e-6).all()

    def test_deterministic(self):
        a = voronoi_cells(5.0, 5.0, 10, seed=7)
        b = voronoi_cells(5.0, 5.0, 10, seed=7)
        for pa, pb in zip(a, b):
            np.testing.assert_allclose(pa, pb)

    def test_relaxation_evens_areas(self):
        raw = voronoi_cells(10.0, 10.0, 30, seed=4, relax=0)
        relaxed = voronoi_cells(10.0, 10.0, 30, seed=4, relax=3)
        cv = lambda cells: np.std([polygon_area(c) for c in cells]) / np.mean(
            [polygon_area(c) for c in cells]
        )
        assert cv(relaxed) < cv(raw)

    def test_invalid_args(self):
        with pytest.raises(Exception):
            voronoi_cells(0.0, 5.0, 10)
        with pytest.raises(ValueError):
            voronoi_cells(5.0, 5.0, 0)


class TestBuildVoronoiRubble:
    def test_builds_system(self):
        s = build_voronoi_rubble(n_blocks=20, seed=1)
        assert s.n_blocks == 20
        assert len(s.fixed_points) >= 2

    def test_shrink_opens_joints(self):
        tight = build_voronoi_rubble(n_blocks=15, seed=2, shrink=0.0)
        loose = build_voronoi_rubble(n_blocks=15, seed=2, shrink=0.05)
        assert loose.areas.sum() < tight.areas.sum()

    def test_invalid_shrink(self):
        with pytest.raises(ValueError):
            build_voronoi_rubble(n_blocks=5, shrink=0.5)

    def test_runs_in_engine(self):
        from repro.core.state import SimulationControls
        from repro.engine.gpu_engine import GpuEngine

        s = build_voronoi_rubble(n_blocks=12, seed=3, shrink=0.02)
        r = GpuEngine(
            s, SimulationControls(time_step=1e-3, dynamic=True)
        ).run(steps=3)
        assert r.n_steps == 3
