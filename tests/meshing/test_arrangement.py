import numpy as np
import pytest

from repro.meshing.arrangement import PlanarArrangement, extract_faces


def square_segments(size=1.0):
    return np.array(
        [
            [0, 0, size, 0],
            [size, 0, size, size],
            [size, size, 0, size],
            [0, size, 0, 0],
        ],
        dtype=float,
    )


class TestPlanarArrangement:
    def test_square(self):
        arr = PlanarArrangement.from_segments(square_segments())
        assert arr.points.shape == (4, 2)
        assert arr.edges.shape == (4, 2)

    def test_crossing_segments_create_vertex(self):
        segs = np.array([[0, 0, 2, 2], [0, 2, 2, 0]], dtype=float)
        arr = PlanarArrangement.from_segments(segs)
        assert arr.points.shape[0] == 5  # 4 endpoints + crossing
        assert arr.edges.shape[0] == 4  # each segment split in two

    def test_duplicate_edges_merged(self):
        segs = np.array([[0, 0, 1, 0], [0, 0, 1, 0]], dtype=float)
        arr = PlanarArrangement.from_segments(segs)
        assert arr.edges.shape[0] == 1

    def test_prune_dangling(self):
        segs = np.vstack([square_segments(), [[0.5, 0.5, 2.0, 0.5]]])
        arr = PlanarArrangement.from_segments(segs).prune_dangling()
        # the dangling spur (both its halves) is gone; square edges remain
        # spur crosses the square edge, splitting it: interior piece +
        # exterior piece both dangle after iteration
        deg = np.bincount(arr.edges.ravel(), minlength=arr.points.shape[0])
        assert (deg[np.unique(arr.edges)] >= 2).all()

    def test_adjacency_ccw_order(self):
        # plus-shaped junction at origin
        segs = np.array(
            [[0, 0, 1, 0], [0, 0, 0, 1], [0, 0, -1, 0], [0, 0, 0, -1]],
            dtype=float,
        )
        arr = PlanarArrangement.from_segments(segs)
        nbrs = arr.adjacency()
        center = int(np.argmin(np.abs(arr.points).sum(axis=1)))
        ring = nbrs[center]
        angles = [
            np.arctan2(arr.points[w][1], arr.points[w][0]) for w in ring
        ]
        assert angles == sorted(angles)


class TestExtractFaces:
    def test_square_single_face(self):
        arr = PlanarArrangement.from_segments(square_segments())
        faces = extract_faces(arr)
        assert len(faces) == 1
        from repro.geometry.polygon import polygon_area

        assert polygon_area(faces[0]) == pytest.approx(1.0)

    def test_cross_cut_square_four_faces(self):
        segs = np.vstack(
            [
                square_segments(2.0),
                [[1, 0, 1, 2], [0, 1, 2, 1]],  # cross through the middle
            ]
        )
        arr = PlanarArrangement.from_segments(segs)
        faces = extract_faces(arr)
        assert len(faces) == 4
        from repro.geometry.polygon import polygon_area

        total = sum(polygon_area(f) for f in faces)
        assert total == pytest.approx(4.0)

    def test_faces_are_ccw(self):
        from repro.geometry.polygon import polygon_area

        segs = np.vstack([square_segments(2.0), [[1, 0, 1, 2]]])
        faces = extract_faces(PlanarArrangement.from_segments(segs))
        assert len(faces) == 2
        for f in faces:
            assert polygon_area(f) > 0

    def test_dangling_joint_does_not_split(self):
        segs = np.vstack(
            [square_segments(2.0), [[1.0, 0.5, 1.0, 1.5]]]  # interior dangle
        )
        faces = extract_faces(PlanarArrangement.from_segments(segs))
        assert len(faces) == 1

    def test_two_disjoint_squares(self):
        segs = np.vstack([square_segments(), square_segments() + 5.0])
        faces = extract_faces(PlanarArrangement.from_segments(segs))
        assert len(faces) == 2

    def test_empty(self):
        arr = PlanarArrangement(
            points=np.zeros((0, 2)), edges=np.zeros((0, 2), dtype=np.int64)
        )
        assert extract_faces(arr) == []
