import numpy as np
import pytest

from repro.meshing.slope_models import (
    build_brick_wall,
    build_falling_rocks_model,
    build_slope_model,
)


class TestBrickWall:
    def test_block_count(self):
        s = build_brick_wall(3, 4)
        # 3 rows: row0 4 bricks, row1 offset -> 5 pieces, row2 4 => base+13
        assert s.n_blocks >= 3 * 4  # at least rows*cols pieces
        assert len(s.fixed_points) == 2  # base fixed

    def test_no_base(self):
        s = build_brick_wall(2, 2, base=False)
        assert len(s.fixed_points) == 0

    def test_no_offset_exact_count(self):
        s = build_brick_wall(2, 3, offset_courses=False, base=False)
        assert s.n_blocks == 6

    def test_bricks_tile_wall_area(self):
        s = build_brick_wall(2, 3, base=False)
        assert s.areas.sum() == pytest.approx(2 * 3 * 1.0 * 0.5)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            build_brick_wall(0, 3)


class TestSlopeModel:
    def test_builds_and_is_deterministic(self):
        a = build_slope_model(joint_spacing=8.0, seed=1)
        b = build_slope_model(joint_spacing=8.0, seed=1)
        assert a.n_blocks == b.n_blocks
        np.testing.assert_allclose(a.vertices, b.vertices)

    def test_block_count_scales_with_spacing(self):
        coarse = build_slope_model(joint_spacing=12.0, seed=0)
        fine = build_slope_model(joint_spacing=6.0, seed=0)
        assert fine.n_blocks > coarse.n_blocks

    def test_base_is_fixed(self):
        s = build_slope_model(joint_spacing=8.0, seed=0)
        assert len(s.fixed_points) >= 2

    def test_area_close_to_domain(self):
        import math

        s = build_slope_model(
            width=80, height=40, slope_angle_deg=55, toe_height=4,
            joint_spacing=8.0, seed=0,
        )
        run = (40 - 4) / math.tan(math.radians(55))
        domain_area = 80 * 40 - 0.5 * run * (40 - 4) - 0  # trapezoid-ish
        # blocks tile the domain: areas sum to the domain area
        assert s.areas.sum() == pytest.approx(domain_area, rel=0.02)

    def test_rows_cols_shortcut(self):
        s = build_slope_model(rows=4, cols=8, seed=0)
        assert s.n_blocks > 8

    def test_infeasible_geometry_rejected(self):
        with pytest.raises(ValueError, match="infeasible"):
            build_slope_model(width=5.0, height=40.0, slope_angle_deg=30.0)


class TestFallingRocksModel:
    def test_counts(self):
        s = build_falling_rocks_model(n_rock_rows=2, n_rock_cols=3)
        assert s.n_blocks == 2 + 6
        assert len(s.fixed_points) == 4  # two fixed blocks x 2 points

    def test_rocks_above_slope_face(self):
        import math

        s = build_falling_rocks_model(
            slope_height=70, slope_angle_deg=42, n_rock_rows=2, n_rock_cols=3
        )
        theta = math.radians(42)
        # face line: from (0, H) to (run, 0): y = H - tan(theta) x
        for i in range(2, s.n_blocks):
            cx, cy = s.centroids[i]
            assert cy > 70 - math.tan(theta) * cx - 1e-6

    def test_rock_areas(self):
        s = build_falling_rocks_model(rock_size=2.0, n_rock_rows=1, n_rock_cols=2)
        np.testing.assert_allclose(s.areas[2:], 4.0)

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            build_falling_rocks_model(n_rock_rows=0)
