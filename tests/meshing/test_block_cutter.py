import numpy as np
import pytest

from repro.geometry.polygon import polygon_area
from repro.meshing.block_cutter import clip_segments_to_polygon, cut_blocks

SQUARE = np.array([[0.0, 0.0], [4.0, 0.0], [4.0, 4.0], [0.0, 4.0]])


class TestClipSegments:
    def test_interior_segment_kept(self):
        segs = np.array([[1, 1, 3, 3]], dtype=float)
        out = clip_segments_to_polygon(segs, SQUARE)
        np.testing.assert_allclose(out, segs)

    def test_exterior_segment_dropped(self):
        segs = np.array([[10, 10, 12, 12]], dtype=float)
        assert clip_segments_to_polygon(segs, SQUARE).shape[0] == 0

    def test_crossing_segment_clipped(self):
        segs = np.array([[-2, 2, 6, 2]], dtype=float)
        out = clip_segments_to_polygon(segs, SQUARE)
        assert out.shape[0] == 1
        xs = np.sort(out[0, [0, 2]])
        np.testing.assert_allclose(xs, [0.0, 4.0], atol=1e-9)

    def test_empty_input(self):
        out = clip_segments_to_polygon(np.zeros((0, 4)), SQUARE)
        assert out.shape[0] == 0


class TestCutBlocks:
    def test_no_joints_returns_domain(self):
        blocks = cut_blocks(SQUARE, np.zeros((0, 4)))
        assert len(blocks) == 1
        assert polygon_area(blocks[0]) == pytest.approx(16.0)

    def test_single_cut_two_blocks(self):
        joints = np.array([[-1, 2, 5, 2]], dtype=float)
        blocks = cut_blocks(SQUARE, joints)
        assert len(blocks) == 2
        areas = sorted(polygon_area(b) for b in blocks)
        np.testing.assert_allclose(areas, [8.0, 8.0])

    def test_grid_cut_area_conserved(self):
        joints = np.array(
            [
                [-1, 1, 5, 1],
                [-1, 2, 5, 2],
                [-1, 3, 5, 3],
                [1, -1, 1, 5],
                [2, -1, 2, 5],
                [3, -1, 3, 5],
            ],
            dtype=float,
        )
        blocks = cut_blocks(SQUARE, joints)
        assert len(blocks) == 16
        assert sum(polygon_area(b) for b in blocks) == pytest.approx(16.0)

    def test_diagonal_cuts(self):
        joints = np.array([[-1, -1, 5, 5]], dtype=float)
        blocks = cut_blocks(SQUARE, joints)
        assert len(blocks) == 2
        assert sum(polygon_area(b) for b in blocks) == pytest.approx(16.0)

    def test_non_persistent_joint_ignored(self):
        joints = np.array([[1, 1, 3, 3]], dtype=float)  # ends inside
        blocks = cut_blocks(SQUARE, joints)
        assert len(blocks) == 1

    def test_all_blocks_ccw(self):
        joints = np.array([[-1, 2, 5, 2], [2, -1, 2, 5]], dtype=float)
        for b in cut_blocks(SQUARE, joints):
            assert polygon_area(b) > 0

    def test_property_area_conservation_random_grids(self):
        rng = np.random.default_rng(3)
        for _ in range(5):
            n = rng.integers(1, 5)
            ys = rng.uniform(0.5, 3.5, size=n)
            joints = np.array([[-1.0, y, 5.0, y] for y in ys])
            blocks = cut_blocks(SQUARE, joints)
            assert sum(polygon_area(b) for b in blocks) == pytest.approx(
                16.0, rel=1e-6
            )
