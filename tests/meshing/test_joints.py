import numpy as np
import pytest

from repro.meshing.joints import JointSet, generate_joint_set

BOUNDS = np.array([0.0, 0.0, 10.0, 10.0])


class TestJointSet:
    def test_valid(self):
        JointSet(dip_deg=30.0, spacing=1.0)

    def test_invalid_spacing(self):
        with pytest.raises(Exception):
            JointSet(dip_deg=0.0, spacing=0.0)

    def test_invalid_cov(self):
        with pytest.raises(ValueError):
            JointSet(dip_deg=0.0, spacing=1.0, spacing_cov=1.0)

    def test_invalid_persistence(self):
        with pytest.raises(ValueError):
            JointSet(dip_deg=0.0, spacing=1.0, persistence=0.0)


class TestGenerateJointSet:
    def test_deterministic(self):
        js = JointSet(dip_deg=30.0, spacing=2.0, spacing_cov=0.1)
        a = generate_joint_set(js, BOUNDS, seed=5)
        b = generate_joint_set(js, BOUNDS, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_trace_count_scales_with_spacing(self):
        fine = generate_joint_set(JointSet(0.0, 0.5), BOUNDS)
        coarse = generate_joint_set(JointSet(0.0, 2.0), BOUNDS)
        assert fine.shape[0] > coarse.shape[0]

    def test_traces_parallel(self):
        segs = generate_joint_set(JointSet(dip_deg=30.0, spacing=2.0), BOUNDS)
        d = segs[:, 2:4] - segs[:, 0:2]
        ang = np.arctan2(d[:, 1], d[:, 0])
        np.testing.assert_allclose(np.degrees(ang), 30.0, atol=1e-9)

    def test_traces_span_box(self):
        segs = generate_joint_set(JointSet(dip_deg=45.0, spacing=3.0), BOUNDS)
        lengths = np.hypot(segs[:, 2] - segs[:, 0], segs[:, 3] - segs[:, 1])
        diag = np.hypot(10, 10)
        assert (lengths >= diag).all()

    def test_persistence_shortens(self):
        full = generate_joint_set(JointSet(0.0, 2.0, persistence=1.0), BOUNDS)
        part = generate_joint_set(JointSet(0.0, 2.0, persistence=0.5), BOUNDS)
        lf = np.hypot(full[:, 2] - full[:, 0], full[:, 3] - full[:, 1]).mean()
        lp = np.hypot(part[:, 2] - part[:, 0], part[:, 3] - part[:, 1]).mean()
        assert lp < lf

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            generate_joint_set(JointSet(0.0, 1.0), np.array([0, 0, 0, 10.0]))
