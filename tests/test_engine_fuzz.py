"""Whole-engine fuzzing: random small scenes must stay physical.

Catch-all invariants over randomly generated block scenes:
velocities stay finite, penetrations stay bounded, energy does not grow,
and the serial/GPU pipelines agree — across whatever contact topologies
the random generator produces.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.energy import total_energy
from repro.analysis.interpenetration import system_interpenetration_audit
from repro.core.blocks import Block, BlockSystem
from repro.core.materials import BlockMaterial, JointMaterial
from repro.core.state import SimulationControls
from repro.engine.gpu_engine import GpuEngine

SQ = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
MAT = BlockMaterial(young=1e9)


def random_scene(seed: int, n_loose: int) -> BlockSystem:
    """A fixed floor plus ``n_loose`` random non-overlapping squares."""
    rng = np.random.default_rng(seed)
    floor = Block(np.array([[-1, -1], [7, -1], [7, 0], [-1, 0.0]]), MAT)
    blocks = [floor]
    placed: list[np.ndarray] = []
    attempts = 0
    while len(placed) < n_loose and attempts < 200:
        attempts += 1
        size = rng.uniform(0.5, 1.0)
        th = rng.uniform(0, np.pi / 2)
        rot = np.array(
            [[np.cos(th), -np.sin(th)], [np.sin(th), np.cos(th)]]
        )
        center = np.array([rng.uniform(0.5, 5.5), rng.uniform(0.8, 3.0)])
        poly = (SQ - 0.5) @ rot.T * size + center
        # keep scenes initially overlap-free (overlap resolution is
        # tested separately)
        if all(
            np.linalg.norm(center - c) > 1.3 for c in
            (p.mean(axis=0) for p in placed)
        ):
            placed.append(poly)
            blocks.append(Block(poly, MAT))
    system = BlockSystem(
        blocks, JointMaterial(friction_angle_deg=rng.uniform(10, 45))
    )
    system.fix_block(0)
    return system


@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=12, deadline=None)
def test_fuzz_random_scenes_stay_physical(seed, n_loose):
    system = random_scene(seed, n_loose)
    controls = SimulationControls(
        time_step=1e-3, dynamic=True, gravity=9.81,
        max_displacement_ratio=0.05,
    )
    e0 = total_energy(system)
    engine = GpuEngine(system, controls)
    result = engine.run(steps=40)

    # 1. no NaN/inf anywhere
    assert np.isfinite(system.vertices).all()
    assert np.isfinite(system.velocities).all()
    assert np.isfinite(system.stresses).all()
    # 2. energy cannot grow (implicit scheme dissipates); absolute slack
    # only — the potential datum makes e0 negative for low scenes
    assert total_energy(system) <= e0 + max(1.0, 0.02 * abs(e0))
    # 3. no deep interpenetration survives
    audit = system_interpenetration_audit(system)
    assert audit.max_depth < 0.2
    # 4. per-step diagnostics sane
    for st_ in result.steps:
        assert st_.dt > 0
        assert np.isfinite(st_.max_displacement)


@given(st.integers(min_value=0, max_value=5_000))
@settings(max_examples=6, deadline=None)
def test_fuzz_pipeline_equivalence(seed):
    from repro.engine.serial_engine import SerialEngine

    controls = SimulationControls(
        time_step=1e-3, dynamic=True, gravity=9.81,
        max_displacement_ratio=0.05,
    )
    g = GpuEngine(random_scene(seed, 2), controls)
    s = SerialEngine(random_scene(seed, 2), controls)
    g.run(steps=15)
    s.run(steps=15)
    np.testing.assert_allclose(
        g.system.centroids, s.system.centroids, atol=1e-6
    )
