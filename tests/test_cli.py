"""Tests for the ``python -m repro`` command-line runner."""

import numpy as np
import pytest

from repro.__main__ import build_parser, build_system, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.model == "wall"
        assert args.engine == "gpu"
        assert args.steps == 20

    def test_model_and_load_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--model", "slope", "--load", "x"])

    def test_invalid_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--model", "nonsense"])


class TestBuildSystem:
    @pytest.mark.parametrize("model", ["wall", "rocks", "rubble"])
    def test_bundled_models(self, model):
        args = build_parser().parse_args(["--model", model])
        system = build_system(args)
        assert system.n_blocks > 1

    def test_load_roundtrip(self, tmp_path):
        from repro.io.model_io import save_system
        from repro.meshing.slope_models import build_brick_wall

        save_system(build_brick_wall(2, 2), tmp_path / "m")
        args = build_parser().parse_args(["--load", str(tmp_path / "m")])
        system = build_system(args)
        assert system.n_blocks == 6  # base + 2 bricks + 3 offset pieces


class TestMain:
    def test_end_to_end_wall(self, capsys):
        rc = main(["--model", "wall", "--steps", "2", "--dynamic",
                   "--no-render"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "equation_solving" in out
        assert "CG iterations total" in out

    def test_render_included_by_default(self, capsys):
        main(["--model", "wall", "--steps", "1", "--dynamic"])
        out = capsys.readouterr().out
        assert "#" in out  # a block glyph appears in the raster

    def test_serial_engine(self, capsys):
        rc = main(["--model", "wall", "--engine", "serial", "--steps", "1",
                   "--dynamic", "--no-render"])
        assert rc == 0
        assert "E5620" in capsys.readouterr().out

    def test_save(self, tmp_path, capsys):
        rc = main(["--model", "wall", "--steps", "1", "--dynamic",
                   "--no-render", "--save", str(tmp_path / "out")])
        assert rc == 0
        assert (tmp_path / "out.json").exists()
        assert (tmp_path / "out.npz").exists()

    def test_k20_profile(self, capsys):
        rc = main(["--model", "wall", "--steps", "1", "--dynamic",
                   "--profile", "k20", "--no-render"])
        assert rc == 0
        assert "K20" in capsys.readouterr().out


class TestSubcommands:
    """The subcommand restructure must not break any legacy flag."""

    def test_documented_invocation_still_works(self, capsys):
        """Regression for the README/usage example:
        ``python -m repro --model slope --steps 20``."""
        rc = main(["--model", "slope", "--steps", "20", "--no-render"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "20 steps" in out
        assert "CG iterations total" in out

    def test_explicit_run_subcommand_is_equivalent(self, capsys):
        rc = main(["run", "--model", "wall", "--steps", "1", "--dynamic",
                   "--no-render"])
        assert rc == 0
        assert "CG iterations total" in capsys.readouterr().out

    def test_batch_subcommand_dispatches(self, tmp_path, capsys):
        rc = main(["batch", "status", "--dir", str(tmp_path / "b")])
        assert rc == 0
        assert "jobs:" in capsys.readouterr().out

    def test_legacy_flags_after_run_keyword(self, capsys):
        """Every run flag is accepted behind the explicit subcommand."""
        rc = main(["run", "--model", "wall", "--steps", "1", "--dynamic",
                   "--no-render", "--engine", "serial",
                   "--checkpoint-every", "1", "--on-failure", "partial"])
        assert rc == 0


class TestObservabilityFlags:
    def test_trace_flag_writes_chrome_trace(self, tmp_path, capsys):
        import json

        trace = tmp_path / "run.json"
        rc = main(["--model", "wall", "--steps", "2", "--dynamic",
                   "--no-render", "--trace", str(trace)])
        assert rc == 0
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "equation_solving" in names

    def test_trace_jsonl_format(self, tmp_path):
        import json

        trace = tmp_path / "run.jsonl"
        rc = main(["--model", "wall", "--steps", "1", "--dynamic",
                   "--no-render", "--trace", str(trace)])
        assert rc == 0
        first = json.loads(trace.read_text().splitlines()[0])
        assert first["type"] == "meta"

    def test_metrics_flag_prints_snapshot(self, capsys):
        rc = main(["--model", "wall", "--steps", "1", "--dynamic",
                   "--no-render", "--metrics"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "contacts.VE" in out
        assert "cg.iterations" in out

    def test_report_subcommand_renders_trace(self, tmp_path, capsys):
        trace = tmp_path / "run.json"
        main(["--model", "wall", "--steps", "2", "--dynamic",
              "--no-render", "--trace", str(trace)])
        capsys.readouterr()
        rc = main(["report", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "modelled s" in out
        assert "speedup" in out

    def test_report_json_flag(self, tmp_path, capsys):
        import json

        trace = tmp_path / "run.jsonl"
        main(["--model", "wall", "--steps", "1", "--dynamic",
              "--no-render", "--trace", str(trace)])
        capsys.readouterr()
        rc = main(["report", str(trace), "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert "modules" in payload and payload["steps"] == 1
