"""Relative-link and anchor checker for ``docs/*.md`` and README.

Every ``[text](target)`` markdown link that points inside the repo
must resolve: the target file exists, and if the link carries a
``#fragment`` the target page has a heading whose GitHub-style anchor
matches. External links (``http(s)://``, ``mailto:``) are ignored —
CI must not depend on the network.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
PAGES = sorted((REPO / "docs").glob("*.md")) + [REPO / "README.md"]

_LINK = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.M)
_FENCE = re.compile(r"^```.*?^```[ \t]*$", re.M | re.S)


def github_anchor(heading: str) -> str:
    """GitHub's heading → anchor slug: lowercase, drop punctuation,
    spaces become hyphens."""
    text = re.sub(r"[*_`]", "", heading.strip())
    text = re.sub(r"[^\w\- ]", "", text.lower())
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    text = _FENCE.sub("", path.read_text(encoding="utf-8"))
    slugs: set[str] = set()
    for match in _HEADING.finditer(text):
        slug = github_anchor(match.group(1))
        # duplicate headings get -1, -2, ... suffixes on GitHub
        n = 1
        while slug in slugs:
            slug = f"{github_anchor(match.group(1))}-{n}"
            n += 1
        slugs.add(slug)
    return slugs


def links_of(path: Path) -> list[str]:
    text = _FENCE.sub("", path.read_text(encoding="utf-8"))
    return [m.group(1) for m in _LINK.finditer(text)]


@pytest.mark.parametrize("page", PAGES, ids=lambda p: p.name)
def test_relative_links_resolve(page):
    problems = []
    for link in links_of(page):
        if link.startswith(("http://", "https://", "mailto:")):
            continue
        target, _, fragment = link.partition("#")
        dest = page if not target else (page.parent / target).resolve()
        if not dest.exists():
            problems.append(f"{link}: no such file {dest}")
            continue
        if fragment and dest.suffix == ".md":
            if fragment not in anchors_of(dest):
                problems.append(f"{link}: no heading for #{fragment} "
                                f"in {dest.name}")
    assert not problems, "\n".join(problems)


def test_docs_index_links_every_docs_page():
    """README's documentation index must cover every docs/*.md page."""
    readme_links = set(links_of(REPO / "README.md"))
    for doc in (REPO / "docs").glob("*.md"):
        assert f"docs/{doc.name}" in readme_links, (
            f"README documentation index is missing docs/{doc.name}"
        )
