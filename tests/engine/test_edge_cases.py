import numpy as np
import pytest

from repro.core.blocks import Block, BlockSystem
from repro.core.materials import BlockMaterial, JointMaterial
from repro.core.state import SimulationControls
from repro.engine.gpu_engine import GpuEngine

SQ = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
MAT = BlockMaterial(young=1e9)


def stacked(gap=0.0, joint=None):
    base = np.array([[0, 0], [3, 0], [3, 1], [0, 1.0]])
    s = BlockSystem(
        [Block(base, MAT), Block(SQ + np.array([1.0, 1.0 + gap]), MAT)],
        joint,
    )
    s.fix_block(0)
    return s


class TestBoundaryConditions:
    def test_fixed_block_stays_put(self):
        s = BlockSystem([Block(SQ, MAT)])
        s.fix_block(0)
        c = SimulationControls(time_step=1e-3, dynamic=True, gravity=9.81)
        r = GpuEngine(s, c).run(steps=20)
        assert r.max_total_displacement() < 1e-4

    def test_fixed_points_move_with_block(self):
        # an unconstrained block in free fall carries its load points along
        s = BlockSystem([Block(SQ, MAT)])
        s.add_point_load(0, 0.5, 0.5, 0.0, 0.0)
        c = SimulationControls(time_step=1e-3, dynamic=True, gravity=10.0,
                               max_displacement_ratio=1.0)
        e = GpuEngine(s, c)
        e.run(steps=10)
        _, lx, ly, _, _ = s.load_points[0]
        # the load point fell with the block
        np.testing.assert_allclose(
            [lx, ly], s.centroids[0], atol=1e-9
        )

    def test_point_load_accelerates_block(self):
        s = BlockSystem([Block(SQ, MAT)])
        fx = 2600.0 * 5.0  # rho * a for unit area -> a = 5 m/s^2
        s.add_point_load(0, 0.5, 0.5, fx, 0.0)
        c = SimulationControls(time_step=1e-3, dynamic=True, gravity=0.0,
                               max_displacement_ratio=1.0)
        e = GpuEngine(s, c)
        e.run(steps=10)
        t = 10 * 1e-3
        assert s.velocities[0, 0] == pytest.approx(5.0 * t, rel=1e-6)

    def test_off_centroid_load_spins_block(self):
        s = BlockSystem([Block(SQ, MAT)])
        s.add_point_load(0, 1.0, 1.0, 1e4, 0.0)  # corner push
        c = SimulationControls(time_step=1e-3, dynamic=True, gravity=0.0,
                               max_displacement_ratio=1.0)
        e = GpuEngine(s, c)
        e.run(steps=5)
        assert abs(s.velocities[0, 2]) > 0.0


class TestJointStrength:
    def test_cohesion_resists_sliding(self):
        import math

        def slide_distance(cohesion):
            th = math.radians(35.0)
            ramp = np.array([[0, 0], [10, 0], [10, 10 * math.tan(th)]])[::-1]
            cth, sth = math.cos(th), math.sin(th)
            rot = np.array([[cth, -sth], [sth, cth]])
            sq = (SQ - [0.5, 0]) @ rot.T
            center = np.array([5.0, 5 * math.tan(th)]) + rot @ [0, 0.001]
            system = BlockSystem(
                [Block(ramp, MAT), Block(sq + center, MAT)],
                JointMaterial(friction_angle_deg=5.0, cohesion=cohesion),
            )
            system.fix_block(0)
            ctr = SimulationControls(time_step=1e-3, dynamic=True,
                                     max_displacement_ratio=0.05)
            start = system.centroids[1].copy()
            GpuEngine(system, ctr).run(steps=100)
            return float(np.linalg.norm(system.centroids[1] - start))

        free = slide_distance(0.0)
        glued = slide_distance(1e6)
        assert glued < free * 0.2

    def test_tensile_strength_holds_hanging_block(self):
        # block glued to the underside of a fixed slab: with tensile
        # strength above its weight it hangs; without, it falls
        def drop(tensile):
            slab = np.array([[0, 1], [3, 1], [3, 2], [0, 2.0]])
            s = BlockSystem(
                [Block(slab, MAT), Block(SQ + np.array([1.0, 0.0]), MAT)],
                JointMaterial(friction_angle_deg=30.0,
                              tensile_strength=tensile),
            )
            s.fix_block(0)
            # pre-close the bond: press the block up against the slab
            # (a tensile bond can only act through a contact that closed)
            s.velocities[1, 1] = 0.02
            c = SimulationControls(time_step=1e-3, dynamic=True,
                                   gravity=9.81, max_displacement_ratio=0.05)
            e = GpuEngine(s, c)
            y0 = s.centroids[1, 1]
            e.run(steps=60)
            return y0 - s.centroids[1, 1]

        weight = 2600.0 * 9.81  # per unit contact length ~ O(2.5e4)
        assert drop(tensile=0.0) > 0.001       # bond breaks, block falls
        assert drop(tensile=100 * weight) < 1e-4  # the bond holds

    def test_contact_memory_transfers_across_steps(self):
        s = stacked(gap=0.0)
        c = SimulationControls(time_step=1e-3, dynamic=True,
                               max_displacement_ratio=0.05)
        e = GpuEngine(s, c)
        e.run(steps=30)
        # the resting contacts carry compressive normal memory
        assert e._contacts.m > 0
        assert e._contacts.normal_disp.max() > 0.0


class TestStepControl:
    def test_dt_recovers_after_transient(self):
        s = stacked(gap=0.003)
        c = SimulationControls(time_step=1e-3, dynamic=True,
                               max_displacement_ratio=0.05)
        e = GpuEngine(s, c)
        r = e.run(steps=120)
        # whatever transients occurred, dt ends at the configured value
        assert r.steps[-1].dt == pytest.approx(1e-3)
        assert all(st.dt <= 1e-3 + 1e-12 for st in r.steps)

    def test_retry_exhaustion_raises(self):
        # an unsolvable configuration: CG can't converge at any dt because
        # the tolerance is impossible
        s = stacked(gap=0.0)
        c = SimulationControls(time_step=1e-3, dynamic=True,
                               cg_tolerance=1e-300, cg_max_iterations=2,
                               max_displacement_ratio=0.05)
        e = GpuEngine(s, c)
        with pytest.raises(RuntimeError, match="no acceptable time step"):
            e.run(steps=1)

    def test_velocity_restored_on_retry(self):
        # retries must not double-apply velocity updates: run with a
        # forced retry and check momentum stays physical
        s = stacked(gap=0.002)
        c = SimulationControls(time_step=2e-3, dynamic=True,
                               max_displacement_ratio=0.05)
        e = GpuEngine(s, c)
        r = e.run(steps=100)
        v = float(np.abs(s.velocities[1]).max())
        assert v < 1.0  # settled, no runaway from retry double-counting

    def test_static_mode_stress_accumulates_but_velocity_zero(self):
        s = stacked(gap=0.0)
        c = SimulationControls(time_step=1e-3, dynamic=False)
        e = GpuEngine(s, c)
        e.run(steps=10)
        np.testing.assert_allclose(s.velocities, 0.0)
