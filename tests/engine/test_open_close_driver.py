"""Regression pins for the vectorised open–close driver.

The driver (:class:`repro.contact.open_close.OpenCloseDriver`) is the
one numeric path every engine's interpenetration check now runs; the
per-contact scalar loop
(:func:`repro.engine.physics.update_contact_states_serial`) survives as
the independent reference. These tests pin the two against each other
on both meshed models across all four engines, and pin the
symbolic-assembly reuse to be bit-invisible (identical states and
identical modelled device time with the cache on or off).
"""

import numpy as np
import pytest

from repro.contact.open_close import OpenCloseDriver
from repro.core.materials import JointMaterial
from repro.core.state import SimulationControls
from repro.engine.domain_engine import DomainEngine
from repro.engine.gpu_engine import GpuEngine
from repro.engine.hybrid_engine import HybridEngine
from repro.engine.physics import update_contact_states_serial
from repro.engine.serial_engine import SerialEngine
from repro.meshing.slope_models import (
    build_falling_rocks_model,
    build_slope_model,
)

ENGINES = [SerialEngine, GpuEngine, HybridEngine, DomainEngine]


def make_case(name: str):
    """(system, controls) for one seeded meshed model."""
    if name == "slope":
        system = build_slope_model(
            joint_spacing=10.0, seed=0,
            joint_material=JointMaterial(friction_angle_deg=30.0),
        )
        controls = SimulationControls(
            time_step=1e-3, dynamic=False, max_displacement_ratio=0.05
        )
    else:
        system = build_falling_rocks_model(
            n_rock_rows=2, n_rock_cols=3, slope_height=20.0
        )
        controls = SimulationControls(
            time_step=1e-3, dynamic=True, max_displacement_ratio=0.05
        )
    return system, controls


@pytest.mark.parametrize("engine_cls", ENGINES)
@pytest.mark.parametrize("case", ["slope", "rocks"])
def test_driver_matches_scalar_reference(engine_cls, case):
    """A fresh driver sweep reproduces the per-contact scalar loop."""
    system, controls = make_case(case)
    eng = engine_cls(system, controls)
    eng.run(steps=2)
    contacts = eng._contacts
    assert contacts.m > 0, "case must end with live contacts"
    d = eng._prev_solution
    prev_nf = contacts.pn * np.maximum(0.0, contacts.normal_disp)

    vec = OpenCloseDriver.build(
        eng.system, contacts, force_tolerance=eng._force_tol
    ).sweep(d, prev_nf)
    ref = update_contact_states_serial(
        eng.system, contacts, d,
        prev_normal_force=prev_nf, force_tolerance=eng._force_tol,
    )

    np.testing.assert_array_equal(vec.states, ref.states)
    np.testing.assert_array_equal(vec.shear_sign, ref.shear_sign)
    np.testing.assert_allclose(
        vec.normal_force, ref.normal_force, rtol=1e-9, atol=1e-12
    )
    assert vec.changed == ref.changed
    assert vec.significant_changes == ref.significant_changes
    assert vec.max_penetration == pytest.approx(
        ref.max_penetration, rel=1e-9, abs=1e-15
    )


@pytest.mark.parametrize("engine_cls", ENGINES)
def test_engine_sweep_counter(engine_cls):
    """Every open–close iteration bumps ``open_close.sweeps``."""
    system, controls = make_case("slope")
    eng = engine_cls(system, controls)
    result = eng.run(steps=2)
    sweeps = eng.metrics.counter("open_close.sweeps").value
    # at least one sweep per recorded open–close iteration (retries add
    # more, never fewer)
    assert sweeps >= sum(s.open_close_iterations for s in result.steps)
    assert sweeps > 0


@pytest.mark.parametrize("engine_cls", ENGINES)
@pytest.mark.parametrize("case", ["slope", "rocks"])
def test_symbolic_reuse_is_bit_invisible(engine_cls, case):
    """Reuse on vs off: same states/forces/geometry, same modelled time."""
    system_a, controls_a = make_case(case)
    system_b, controls_b = make_case(case)
    controls_b.symbolic_reuse = False
    eng_a = engine_cls(system_a, controls_a)
    eng_b = engine_cls(system_b, controls_b)
    eng_a.run(steps=3)
    eng_b.run(steps=3)

    np.testing.assert_array_equal(
        eng_a.system.vertices, eng_b.system.vertices
    )
    np.testing.assert_array_equal(
        eng_a._prev_solution, eng_b._prev_solution
    )
    np.testing.assert_array_equal(
        eng_a._contacts.state, eng_b._contacts.state
    )
    # launch-ledger replay keeps the modelled seconds bit-identical
    assert eng_a.device.total_time == eng_b.device.total_time
    assert eng_a.metrics.counter("assembly.symbolic_reuse").value > 0
    assert eng_b.metrics.counter("assembly.symbolic_reuse").value == 0
