import numpy as np
import pytest

from repro.assembly.contact_springs import LOCK, OPEN, SLIDE
from repro.contact.contact_set import VE, ContactSet
from repro.core.blocks import Block, BlockSystem, DOF
from repro.core.materials import BlockMaterial, JointMaterial
from repro.core.state import SimulationControls
from repro.engine.physics import (
    contact_system,
    diagonal_system,
    update_contact_states,
    update_contact_states_serial,
)

SQ = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])


def stacked_system(gap=0.01, joint=None):
    """Block 1 sitting `gap` above block 0 (wide base)."""
    base = np.array([[0, 0], [3, 0], [3, 1], [0, 1.0]])
    top = SQ + np.array([1.0, 1.0 + gap])
    return BlockSystem([Block(base), Block(top)], joint)


def contact_on_top(system, pn=1e9):
    """Two VE contacts: the top block's bottom corners on the base edge."""
    # base top edge CCW is (3,1)->(0,1): indices 2 -> 3; reversed = (3, 2)
    cs = ContactSet(
        block_i=np.array([1, 1]),
        block_j=np.array([0, 0]),
        vertex_idx=np.array([4, 5]),   # (1, 1+gap), (2, 1+gap)
        e1_idx=np.array([3, 3]),       # (0, 1)
        e2_idx=np.array([2, 2]),       # (3, 1)
        kind=np.array([VE, VE]),
    )
    cs.pn[:] = pn
    cs.ps[:] = pn
    # ratios along (0,1)->(3,1)
    cs.ratio[:] = [1.0 / 3.0, 2.0 / 3.0]
    return cs


class TestDiagonalSystem:
    def test_gravity_load(self):
        s = stacked_system()
        controls = SimulationControls(time_step=1e-3, gravity=10.0)
        _, _, f = diagonal_system(s, controls, 1e-3)
        rho = s.material_of(1).density
        # block 1 weight = rho * g * area (area 1)
        assert f[DOF + 1] == pytest.approx(-rho * 10.0 * 1.0)

    def test_diag_blocks_spd(self):
        s = stacked_system()
        controls = SimulationControls()
        idx, blocks, _ = diagonal_system(s, controls, 1e-3)
        for b in blocks:
            np.testing.assert_allclose(b, b.T, atol=1e-6)
            assert (np.linalg.eigvalsh(b) > 0).all()

    def test_fixed_points_stiffen(self):
        s = stacked_system()
        controls = SimulationControls()
        _, free_blocks, _ = diagonal_system(s, controls, 1e-3)
        s.fix_block(0)
        _, fixed_blocks, _ = diagonal_system(s, controls, 1e-3)
        assert np.trace(fixed_blocks[0]) > np.trace(free_blocks[0])

    def test_static_ignores_velocity(self):
        s = stacked_system()
        s.velocities[1, 0] = 5.0
        controls = SimulationControls(dynamic=False)
        _, _, f_static = diagonal_system(s, controls, 1e-3)
        s2 = stacked_system()
        _, _, f_zero = diagonal_system(s2, controls, 1e-3)
        np.testing.assert_allclose(f_static, f_zero)

    def test_dynamic_velocity_momentum(self):
        s = stacked_system()
        s.velocities[1, 0] = 5.0
        controls = SimulationControls(dynamic=True, gravity=0.0)
        _, _, f = diagonal_system(s, controls, 1e-3)
        rho = s.material_of(1).density
        assert f[DOF] == pytest.approx(2.0 * rho * 1.0 * 5.0 / 1e-3)

    def test_point_load(self):
        s = stacked_system()
        s.add_point_load(1, 1.5, 1.5, 7.0, 0.0)
        controls = SimulationControls(gravity=0.0)
        _, _, f = diagonal_system(s, controls, 1e-3)
        assert f[DOF] == pytest.approx(7.0)


class TestContactSystem:
    def test_open_contacts_contribute_nothing(self):
        s = stacked_system()
        cs = contact_on_top(s)
        cs.state[:] = OPEN
        d_idx, d_blk, rows, cols, blks, f = contact_system(
            s, cs, np.zeros(cs.m)
        )
        assert np.all(blks == 0.0)
        assert np.all(f == 0.0)

    def test_locked_contacts_couple_blocks(self):
        s = stacked_system()
        cs = contact_on_top(s)
        cs.state[:] = LOCK
        _, _, rows, cols, blks, _ = contact_system(s, cs, np.zeros(cs.m))
        assert rows.size == 2
        assert np.abs(blks).max() > 0

    def test_empty_contacts(self):
        s = stacked_system()
        out = contact_system(s, ContactSet.empty(), np.zeros(0))
        assert out[0].size == 0
        assert np.all(out[5] == 0.0)


class TestUpdateContactStates:
    def _solve_like_displacement(self, s, down=-1e-4):
        # top block moves down by |down|
        d = np.zeros(s.n_dof)
        d[DOF + 1] = down
        return d

    def test_penetration_closes_contact(self):
        s = stacked_system(gap=0.0)
        cs = contact_on_top(s)
        d = self._solve_like_displacement(s, down=-1e-4)
        upd = update_contact_states(s, cs, d)
        assert (upd.states != OPEN).all()
        assert upd.max_penetration == pytest.approx(1e-4)
        assert upd.changed == 2

    def test_separation_opens_contact(self):
        s = stacked_system(gap=0.0)
        cs = contact_on_top(s)
        cs.state[:] = LOCK
        d = self._solve_like_displacement(s, down=+1e-4)
        upd = update_contact_states(s, cs, d)
        assert (upd.states == OPEN).all()

    def test_shear_beyond_friction_slides(self):
        s = stacked_system(gap=0.0, joint=JointMaterial(friction_angle_deg=1.0))
        cs = contact_on_top(s)
        cs.state[:] = LOCK
        d = np.zeros(s.n_dof)
        d[DOF + 0] = 1e-4   # tangential motion
        d[DOF + 1] = -1e-6  # slight compression
        upd = update_contact_states(s, cs, d)
        assert (upd.states == SLIDE).all()
        assert (upd.shear_sign < 0).all() or (upd.shear_sign > 0).all()

    def test_high_friction_locks(self):
        s = stacked_system(gap=0.0, joint=JointMaterial(friction_angle_deg=80.0))
        cs = contact_on_top(s)
        d = np.zeros(s.n_dof)
        d[DOF + 0] = 1e-6
        d[DOF + 1] = -1e-4  # strong compression
        upd = update_contact_states(s, cs, d)
        assert (upd.states == LOCK).all()

    def test_serial_matches_vectorised(self, rng):
        s = stacked_system(gap=0.0, joint=JointMaterial(friction_angle_deg=20.0))
        cs = contact_on_top(s)
        cs.state[:] = [LOCK, OPEN]
        for _ in range(5):
            d = rng.normal(0, 1e-4, size=s.n_dof)
            a = update_contact_states(s, cs, d)
            b = update_contact_states_serial(s, cs, d)
            np.testing.assert_array_equal(a.states, b.states)
            np.testing.assert_allclose(a.shear_sign, b.shear_sign)
            np.testing.assert_allclose(a.normal_force, b.normal_force)
            assert a.changed == b.changed
            assert a.max_penetration == pytest.approx(b.max_penetration)

    def test_empty(self):
        s = stacked_system()
        upd = update_contact_states(s, ContactSet.empty(), np.zeros(s.n_dof))
        assert upd.changed == 0
