"""Seismic base-loading tests: the Newmark sliding-block benchmark.

A block resting on a flat frictional surface under horizontal base
shaking slides only while the base acceleration exceeds ``g tan(phi)``
(the yield acceleration). This analytic threshold is the standard
validation of dynamic DDA implementations.
"""

import math

import numpy as np
import pytest

from repro.core.blocks import Block, BlockSystem
from repro.core.materials import BlockMaterial, JointMaterial
from repro.core.state import SimulationControls
from repro.engine.gpu_engine import GpuEngine

SQ = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
MAT = BlockMaterial(young=1e9)


def table_system(phi_deg):
    base = np.array([[-2, 0], [5, 0], [5, 1], [-2, 1.0]])
    s = BlockSystem(
        [Block(base, MAT), Block(SQ + np.array([1.0, 1.0]), MAT)],
        JointMaterial(friction_angle_deg=phi_deg),
    )
    s.fix_block(0)
    return s


def pulse_controls(amplitude, t0, duration):
    """One-sided horizontal acceleration pulse (Newmark's classic input)."""
    return SimulationControls(
        time_step=1e-3, dynamic=True, gravity=9.81,
        max_displacement_ratio=0.05,
        base_acceleration=lambda t: (
            amplitude if t0 <= t < t0 + duration else 0.0, 0.0
        ),
    )


def newmark_slip(phi_deg, amplitude_g, duration=0.1, settle=40, steps=300):
    """Measured net slip under a one-sided pulse starting after settling."""
    s = table_system(phi_deg)
    t0 = settle * 1e-3
    e = GpuEngine(s, pulse_controls(amplitude_g * 9.81, t0, duration))
    e.run(steps=settle)
    start = s.centroids[1, 0]
    e.run(steps=steps)
    return abs(s.centroids[1, 0] - start)


def newmark_analytic(phi_deg, amplitude_g, duration):
    """Closed-form Newmark sliding-block displacement for a box pulse."""
    g = 9.81
    ay = g * math.tan(math.radians(phi_deg))  # yield acceleration
    a = amplitude_g * g
    if a <= ay:
        return 0.0
    v_peak = (a - ay) * duration
    slip_during = 0.5 * (a - ay) * duration**2
    slip_after = v_peak**2 / (2.0 * ay)
    return slip_during + slip_after


class TestNewmarkSlidingBlock:
    def test_below_yield_acceleration_holds(self):
        # phi = 35 deg -> yield acceleration 0.70 g; pulse at 0.3 g
        moved = newmark_slip(35.0, 0.3)
        assert moved < 1e-3

    def test_above_yield_matches_newmark_analytic(self):
        # phi = 15 deg -> yield 0.268 g; pulse at 0.4 g for 0.1 s
        moved = newmark_slip(15.0, 0.4)
        expected = newmark_analytic(15.0, 0.4, 0.1)
        assert expected > 0.005
        assert moved == pytest.approx(expected, rel=0.5)

    def test_stronger_pulse_slides_farther(self):
        weak = newmark_slip(15.0, 0.35)
        strong = newmark_slip(15.0, 0.8)
        assert strong > weak

    def test_symmetric_sine_gives_no_net_slip(self):
        # symmetric shaking above yield slides back and forth with ~zero
        # net displacement — the block oscillates around its start
        s = table_system(15.0)
        c = SimulationControls(
            time_step=1e-3, dynamic=True, gravity=9.81,
            max_displacement_ratio=0.05,
            base_acceleration=lambda t: (
                0.4 * 9.81 * math.sin(2 * math.pi * 5.0 * t), 0.0
            ),
        )
        e = GpuEngine(s, c)
        e.run(steps=40)
        start = s.centroids[1, 0]
        e.run(steps=400)  # whole number of cycles
        assert abs(s.centroids[1, 0] - start) < 0.02

    def test_no_shaking_no_motion(self):
        s = table_system(15.0)
        c = SimulationControls(time_step=1e-3, dynamic=True, gravity=9.81,
                               max_displacement_ratio=0.05)
        e = GpuEngine(s, c)
        e.run(steps=40)
        start = s.centroids[1, 0]
        e.run(steps=200)
        assert abs(s.centroids[1, 0] - start) < 1e-3


class TestBaseAccelerationPlumbing:
    def test_sim_time_advances(self):
        s = table_system(30.0)
        e = GpuEngine(s, pulse_controls(0.0, 0.0, 0.0))
        e.run(steps=10)
        assert e.sim_time == pytest.approx(10 * 1e-3, rel=0.3)

    def test_constant_horizontal_acceleration_on_free_block(self):
        # d'Alembert check: shaking the base at +a pushes a free block -a
        s = BlockSystem([Block(SQ, MAT)])
        c = SimulationControls(
            time_step=1e-3, dynamic=True, gravity=0.0,
            max_displacement_ratio=1.0,
            base_acceleration=lambda t: (2.0, 0.0),
        )
        e = GpuEngine(s, c)
        e.run(steps=10)
        t = 10 * 1e-3
        assert s.velocities[0, 0] == pytest.approx(-2.0 * t, rel=1e-9)

    def test_vertical_shaking_adds_to_gravity(self):
        s = BlockSystem([Block(SQ, MAT)])
        c = SimulationControls(
            time_step=1e-3, dynamic=True, gravity=10.0,
            max_displacement_ratio=1.0,
            base_acceleration=lambda t: (0.0, 5.0),
        )
        e = GpuEngine(s, c)
        e.run(steps=10)
        t = 10 * 1e-3
        assert s.velocities[0, 1] == pytest.approx(-15.0 * t, rel=1e-9)

    def test_non_callable_rejected(self):
        with pytest.raises(ValueError, match="callable"):
            SimulationControls(base_acceleration=3.0)
