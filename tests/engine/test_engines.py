import math

import numpy as np
import pytest

from repro.core.blocks import Block, BlockSystem
from repro.core.materials import BlockMaterial, JointMaterial
from repro.core.state import SimulationControls
from repro.engine.gpu_engine import GpuEngine
from repro.engine.serial_engine import SerialEngine
from repro.meshing.slope_models import build_brick_wall

SQ = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
MAT = BlockMaterial(young=1e9)


def drop_system(gap=0.005, phi=30.0):
    base = np.array([[0, 0], [3, 0], [3, 1], [0, 1.0]])
    s = BlockSystem(
        [Block(base, MAT), Block(SQ + np.array([1.0, 1.0 + gap]), MAT)],
        JointMaterial(friction_angle_deg=phi),
    )
    s.fix_block(0)
    return s


def dyn_controls(**kw):
    defaults = dict(
        time_step=1e-3, dynamic=True, gravity=9.81,
        penalty_scale=50.0, max_displacement_ratio=0.05,
    )
    defaults.update(kw)
    return SimulationControls(**defaults)


class TestFreeFall:
    def test_free_fall_exact(self):
        # single unconstrained block: DDA's constant-acceleration scheme
        # integrates uniform gravity exactly
        s = BlockSystem([Block(SQ, MAT)])
        c = dyn_controls(gravity=10.0, max_displacement_ratio=1.0)
        e = GpuEngine(s, c)
        r = e.run(steps=20)
        t = 20 * c.time_step
        assert r.displacements[0, 1] == pytest.approx(-0.5 * 10.0 * t**2, rel=1e-9)
        assert r.displacements[0, 0] == pytest.approx(0.0, abs=1e-12)
        # velocity is exactly g t
        assert s.velocities[0, 1] == pytest.approx(-10.0 * t, rel=1e-9)

    def test_static_mode_creeps_with_reset_velocity(self):
        s = BlockSystem([Block(SQ, MAT)])
        c = SimulationControls(time_step=1e-3, dynamic=False, gravity=10.0,
                               max_displacement_ratio=1.0)
        e = GpuEngine(s, c)
        e.run(steps=5)
        # each static step moves g dt^2 / 2 (velocity zeroed)
        assert e.system.centroids[0, 1] - 0.5 == pytest.approx(
            -5 * 0.5 * 10.0 * 1e-6, rel=1e-6
        )
        np.testing.assert_allclose(e.system.velocities, 0.0)


class TestSettling:
    def test_block_settles_on_base(self):
        s = drop_system(gap=0.005)
        e = GpuEngine(s, dyn_controls())
        e.run(steps=300)
        # resting on the base surface (y = 1) with centroid at ~1.5
        assert s.centroids[1, 1] == pytest.approx(1.5, abs=5e-3)
        # no significant lateral drift (micro-slip during the bounce
        # transient allows ~mm), negligible residual motion
        assert abs(s.centroids[1, 0] - 1.5) < 5e-3
        assert abs(s.velocities[1, 0]) < 0.01

    def test_no_unbounded_penetration(self):
        s = drop_system(gap=0.005)
        e = GpuEngine(s, dyn_controls())
        r = e.run(steps=200)
        assert max(st.max_penetration for st in r.steps) < 0.01

    def test_elastic_area_preserved_after_settling(self):
        s = drop_system(gap=0.002)
        e = GpuEngine(s, dyn_controls())
        e.run(steps=200)
        # stress memory prevents ratcheting compression
        assert s.areas[1] == pytest.approx(1.0, abs=1e-3)

    def test_stress_memory_accumulates_compression(self):
        s = drop_system(gap=0.0)
        e = GpuEngine(s, dyn_controls())
        e.run(steps=100)
        # at rest the block carries the gravity-induced compression;
        # the sign is negative (compression), sized within an order of
        # magnitude of rho g h / 2 (bounce transients allowed)
        assert s.stresses[1, 1] < 0.0


class TestInclineFriction:
    def _ramp(self, slope_deg, phi_deg):
        th = math.radians(slope_deg)
        ramp = np.array([[0, 0], [10, 0], [10, 10 * math.tan(th)]])[::-1]
        c, s_ = math.cos(th), math.sin(th)
        rot = np.array([[c, -s_], [s_, c]])
        sq = (SQ - [0.5, 0]) @ rot.T
        center = np.array([5.0, 5 * math.tan(th)]) + rot @ [0, 0.001]
        system = BlockSystem(
            [Block(ramp, MAT), Block(sq + center, MAT)],
            JointMaterial(friction_angle_deg=phi_deg),
        )
        system.fix_block(0)
        return system

    def test_low_friction_slides(self):
        s = self._ramp(30.0, 10.0)
        e = GpuEngine(s, dyn_controls())
        start = s.centroids[1].copy()
        e.run(steps=150)
        assert np.linalg.norm(s.centroids[1] - start) > 0.01

    def test_high_friction_holds(self):
        s = self._ramp(30.0, 50.0)
        e = GpuEngine(s, dyn_controls())
        start = s.centroids[1].copy()
        e.run(steps=150)
        assert np.linalg.norm(s.centroids[1] - start) < 0.005

    def test_sliding_moves_downslope(self):
        s = self._ramp(30.0, 5.0)
        e = GpuEngine(s, dyn_controls())
        start = s.centroids[1].copy()
        e.run(steps=150)
        delta = s.centroids[1] - start
        assert delta[0] < 0  # downslope is -x for this ramp
        assert delta[1] < 0


class TestPipelineEquivalence:
    def test_serial_equals_gpu_trajectories(self):
        # floating-point contract: the serial per-contact loops and the
        # vectorised kernels sum in different orders, so trajectories
        # agree to accumulation noise, not bit-exactly
        c = dyn_controls(time_step=5e-4)
        g = GpuEngine(build_brick_wall(3, 4), c)
        s = SerialEngine(build_brick_wall(3, 4), c)
        g.run(steps=15)
        s.run(steps=15)
        np.testing.assert_allclose(
            g.system.centroids, s.system.centroids, atol=1e-8
        )
        np.testing.assert_allclose(
            g.system.velocities, s.system.velocities, atol=1e-5
        )

    def test_modeled_gpu_faster_at_scale(self):
        c = dyn_controls(time_step=5e-4)
        g = GpuEngine(build_brick_wall(6, 10), c)
        s = SerialEngine(build_brick_wall(6, 10), c)
        rg = g.run(steps=3)
        rs = s.run(steps=3)
        assert rs.device.total_time > rg.device.total_time

    def test_k40_profile_faster_than_k20(self):
        from repro.gpu.device import K20, K40

        c = dyn_controls(time_step=5e-4)
        g20 = GpuEngine(build_brick_wall(4, 6), c, profile=K20)
        g40 = GpuEngine(build_brick_wall(4, 6), c, profile=K40)
        r20 = g20.run(steps=3)
        r40 = g40.run(steps=3)
        assert r40.device.total_time < r20.device.total_time
        # identical physics regardless of profile
        np.testing.assert_allclose(
            g20.system.centroids, g40.system.centroids, atol=1e-14
        )


class TestDiagnostics:
    def test_step_records_populated(self):
        e = GpuEngine(drop_system(), dyn_controls())
        r = e.run(steps=5)
        assert r.n_steps == 5
        for st in r.steps:
            assert st.dt > 0
            assert st.open_close_iterations >= 1
            assert st.n_contacts >= 0

    def test_snapshots(self):
        e = GpuEngine(drop_system(), dyn_controls())
        r = e.run(steps=10, snapshot_every=5)
        assert len(r.snapshots) == 3  # steps 5, 10, final
        assert r.snapshots[0][0] == 5

    def test_module_times_cover_pipeline(self):
        e = GpuEngine(drop_system(), dyn_controls())
        r = e.run(steps=3)
        for module in ("contact_detection", "equation_solving", "data_updating"):
            assert r.module_times.times[module] > 0

    def test_device_ledger_attributed_to_modules(self):
        e = GpuEngine(drop_system(), dyn_controls())
        r = e.run(steps=3)
        by_mod = r.modeled_module_times()
        assert "equation_solving" in by_mod
        assert "contact_detection" in by_mod

    def test_invalid_steps(self):
        e = GpuEngine(drop_system(), dyn_controls())
        with pytest.raises(ValueError):
            e.run(steps=0)

    def test_cg_warm_start_effective(self):
        # a settled system re-solves in very few iterations
        e = GpuEngine(drop_system(gap=0.0), dyn_controls())
        r = e.run(steps=50)
        late = [st.cg_iterations for st in r.steps[-10:]]
        assert np.mean(late) < 30
