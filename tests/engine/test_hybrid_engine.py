import numpy as np
import pytest

from repro.core.state import SimulationControls
from repro.engine.gpu_engine import GpuEngine
from repro.engine.hybrid_engine import PCIE, HybridEngine
from repro.gpu.counters import KernelCounters
from repro.gpu.device import E5620, K40
from repro.gpu.kernel import RoutedVirtualDevice
from repro.meshing.slope_models import build_brick_wall


def controls():
    return SimulationControls(time_step=5e-4, dynamic=True)


class TestRoutedDevice:
    def test_routing_by_prefix(self):
        dev = RoutedVirtualDevice(K40, routes={"serial_": E5620, "pcie_": PCIE})
        c = KernelCounters(flops=1e9, global_bytes_read=1e8,
                           global_txn_read=1e8 / 128)
        t_gpu = dev.launch("spmv", c)
        t_cpu = dev.launch("serial_spmv", c)
        assert t_cpu > t_gpu  # the CPU profile prices the same work slower

    def test_pcie_transfer_priced_by_bandwidth(self):
        dev = RoutedVirtualDevice(K40, routes={"pcie_": PCIE})
        t = dev.launch(
            "pcie_h2d", KernelCounters(global_bytes_read=6e9,
                                       global_txn_read=6e9 / 128)
        )
        assert t == pytest.approx(1.0, rel=0.01)

    def test_region_attribution_preserved(self):
        dev = RoutedVirtualDevice(K40, routes={"pcie_": PCIE})
        with dev.region("equation_solving"):
            dev.launch("pcie_h2d", KernelCounters(global_bytes_read=8.0))
        assert "equation_solving" in dev.time_by_module()


class TestHybridEngine:
    def test_same_trajectory_as_gpu(self):
        h = HybridEngine(build_brick_wall(3, 4), controls())
        g = GpuEngine(build_brick_wall(3, 4), controls())
        h.run(steps=10)
        g.run(steps=10)
        np.testing.assert_allclose(
            h.system.centroids, g.system.centroids, atol=1e-9
        )

    def test_transfers_recorded(self):
        h = HybridEngine(build_brick_wall(3, 4), controls())
        h.run(steps=2)
        names = set(h.device.time_by_kernel())
        assert any(n.startswith("pcie_h2d_geometry") for n in names)
        assert any(n.startswith("pcie_h2d_matrix") for n in names)
        assert any(n.startswith("pcie_d2h_solution") for n in names)
        assert h.transfer_time() > 0

    def test_cpu_modules_priced_serially(self):
        h = HybridEngine(build_brick_wall(3, 4), controls())
        h.run(steps=2)
        serial_time = sum(
            r.seconds for r in h.device.records
            if r.name.startswith("serial_")
        )
        assert serial_time > 0

    def test_slower_than_full_gpu(self):
        h = HybridEngine(build_brick_wall(4, 8), controls())
        g = GpuEngine(build_brick_wall(4, 8), controls())
        rh = h.run(steps=3)
        rg = g.run(steps=3)
        assert rh.device.total_time > rg.device.total_time

    def test_matrix_upload_per_open_close_iteration(self):
        # the defining cost of the hybrid design: the matrix crosses PCIe
        # inside the innermost loop
        h = HybridEngine(build_brick_wall(3, 4), controls())
        r = h.run(steps=3)
        uploads = sum(
            1 for rec in h.device.records
            if rec.name.startswith("pcie_h2d_matrix")
        )
        oc_total = sum(s.open_close_iterations for s in r.steps)
        assert uploads >= oc_total
