"""Save / resume equivalence: a run split by persistence must continue
exactly like an uninterrupted one (geometry, velocities, stresses,
boundary conditions all round-trip; only the contact-state memory is
rebuilt by transfer, which the first resumed step re-detects)."""

import numpy as np
import pytest

from repro.core.blocks import Block, BlockSystem
from repro.core.materials import BlockMaterial, JointMaterial
from repro.core.state import SimulationControls
from repro.engine.gpu_engine import GpuEngine
from repro.io.model_io import load_system, save_system

SQ = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
MAT = BlockMaterial(young=1e9)


def make_system():
    base = np.array([[0, 0], [3, 0], [3, 1], [0, 1.0]])
    s = BlockSystem(
        [Block(base, MAT), Block(SQ + np.array([1.0, 1.003]), MAT)],
        JointMaterial(friction_angle_deg=30.0),
    )
    s.fix_block(0)
    return s


def controls():
    return SimulationControls(time_step=1e-3, dynamic=True,
                              max_displacement_ratio=0.05)


class TestSaveResume:
    def test_resumed_run_continues_consistently(self, tmp_path):
        # continuous reference
        ref = GpuEngine(make_system(), controls())
        ref.run(steps=40)

        # split run with a save/load at step 20
        first = GpuEngine(make_system(), controls())
        first.run(steps=20)
        save_system(first.system, tmp_path / "mid")
        resumed_system = load_system(tmp_path / "mid")
        second = GpuEngine(resumed_system, controls())
        second.run(steps=20)

        # the split loses only the warm-start vector and per-contact state
        # labels (rebuilt in one step); trajectories agree closely
        np.testing.assert_allclose(
            ref.system.centroids, resumed_system.centroids, atol=1e-4
        )
        np.testing.assert_allclose(
            ref.system.velocities, resumed_system.velocities, atol=1e-2
        )

    def test_state_arrays_roundtrip_exactly(self, tmp_path):
        e = GpuEngine(make_system(), controls())
        e.run(steps=15)
        save_system(e.system, tmp_path / "m")
        loaded = load_system(tmp_path / "m")
        np.testing.assert_array_equal(loaded.vertices, e.system.vertices)
        np.testing.assert_array_equal(loaded.velocities, e.system.velocities)
        np.testing.assert_array_equal(loaded.stresses, e.system.stresses)
        assert loaded.fixed_points == e.system.fixed_points

    def test_moved_fixed_points_persist(self, tmp_path):
        # fixed points move with their blocks during a run; the moved
        # positions are what must be saved
        e = GpuEngine(make_system(), controls())
        e.run(steps=10)
        save_system(e.system, tmp_path / "m")
        loaded = load_system(tmp_path / "m")
        for (b1, x1, y1), (b2, x2, y2) in zip(
            e.system.fixed_points, loaded.fixed_points
        ):
            assert b1 == b2
            assert x1 == x2 and y1 == y2
