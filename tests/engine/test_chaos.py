"""Chaos harness: the fault matrix.

Every fault class in ``FAULT_REGISTRY`` is injected into a live run and
must be (a) actually applied, (b) detected by a stage contract, and
(c) recovered by checkpoint rollback so the run still completes — never
silently absorbed into a wrong-but-plausible trajectory.
"""

import numpy as np
import pytest

from repro.core.blocks import Block, BlockSystem
from repro.core.materials import BlockMaterial
from repro.core.state import ResilienceControls, SimulationControls
from repro.engine.chaos import (
    FAULT_REGISTRY,
    FaultInjector,
    InjectedFault,
    corrupt_checkpoint_file,
)
from repro.engine.contracts import STAGES
from repro.engine.domain_engine import DomainEngine
from repro.engine.gpu_engine import GpuEngine
from repro.engine.resilience import CheckpointCorrupt
from repro.engine.serial_engine import SerialEngine
from repro.io.model_io import load_checkpoint

SQ = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
MAT = BlockMaterial(young=1e9)


def stacked() -> BlockSystem:
    base = np.array([[0, 0], [3, 0], [3, 1], [0, 1.0]])
    s = BlockSystem([Block(base, MAT), Block(SQ + np.array([1.0, 1.0]), MAT)])
    s.fix_block(0)
    return s


def chaos_controls(**over) -> SimulationControls:
    res = dict(checkpoint_every=1, max_rollbacks=10)
    res.update(over.pop("resilience", {}))
    # sanitize=True arms the scatter-write race sanitizer so the
    # scatter_duplicate_index fault (stage "scatter_write") is applicable
    return SimulationControls(
        time_step=1e-3, dynamic=True, max_displacement_ratio=0.05,
        contract_level="full", sanitize=True,
        resilience=ResilienceControls(**res), **over,
    )


# ----------------------------------------------------------------------
# registry hygiene
# ----------------------------------------------------------------------

def test_registry_well_formed():
    assert FAULT_REGISTRY, "registry must not be empty"
    for name, spec in FAULT_REGISTRY.items():
        assert spec.name == name
        assert spec.stage in STAGES
        assert hasattr(FaultInjector(), f"_apply_{name}")


def test_unknown_fault_rejected():
    with pytest.raises(ValueError, match="unknown fault"):
        FaultInjector(["cosmic_ray"])


# ----------------------------------------------------------------------
# the fault matrix
# ----------------------------------------------------------------------

def _domain2(system, controls, fault_injector=None):
    """Two-domain decomposed engine (the only engine with a halo)."""
    return DomainEngine(
        system, controls, n_domains=2, fault_injector=fault_injector
    )


def _fault_matrix():
    """(fault, engine factory) pairs: halo faults need a DomainEngine."""
    params = []
    for fault in sorted(FAULT_REGISTRY):
        if FAULT_REGISTRY[fault].stage == "halo_exchange":
            engines = [("DomainEngine2", _domain2)]
        else:
            engines = [
                ("SerialEngine", SerialEngine), ("GpuEngine", GpuEngine)
            ]
        params.extend(
            pytest.param(fault, factory, id=f"{fault}-{label}")
            for label, factory in engines
        )
    return params


@pytest.mark.parametrize("fault, engine_cls", _fault_matrix())
def test_fault_detected_and_recovered(fault, engine_cls):
    injector = FaultInjector([fault], seed=3, start_step=1)
    eng = engine_cls(stacked(), chaos_controls(), fault_injector=injector)
    result = eng.run(steps=4)
    # (a) applied: the perturbation actually landed on a stage output
    assert injector.injected, f"{fault} was never applicable in 4 steps"
    rec = injector.injected[0]
    assert rec.name == fault
    assert rec.stage == FAULT_REGISTRY[fault].stage
    # (b) detected: a contract violation was recorded, not absorbed
    assert sum(result.contract_violations.values()) >= 1, (
        f"{fault} was silently absorbed"
    )
    # (c) recovered: rollback happened and the run still completed
    assert result.rollbacks >= 1
    assert result.failure is None
    assert result.n_steps == 4
    assert np.isfinite(eng.system.vertices).all()


def test_multi_fault_schedule_drains_sequentially():
    # the DomainEngine runs every stage — including halo_exchange — so
    # it is the one engine on which the full registry can drain
    injector = FaultInjector(seed=11, start_step=1)  # all faults
    eng = _domain2(
        stacked(),
        chaos_controls(resilience=dict(max_rollbacks=30)),
        fault_injector=injector,
    )
    result = eng.run(steps=5)
    assert injector.exhausted, f"still pending: {injector.pending}"
    names = [f.name for f in injector.injected]
    assert sorted(names) == sorted(FAULT_REGISTRY)
    # halo_corrupt fires *inside* the solve whose CGResult the next
    # pending solution fault perturbs at the equation_solving boundary,
    # so those two injections share one detected violation — hence -1.
    assert sum(result.contract_violations.values()) >= len(FAULT_REGISTRY) - 1
    assert result.rollbacks >= len(FAULT_REGISTRY) - 1
    assert result.failure is None
    assert result.n_steps == 5


def test_unrecoverable_without_checkpoints_reports_cleanly():
    """No checkpointing: the violation must surface as a typed failure."""
    injector = FaultInjector(["matrix_nan"], seed=0, start_step=0)
    eng = GpuEngine(
        stacked(),
        chaos_controls(
            resilience=dict(checkpoint_every=0, on_failure="partial")
        ),
        fault_injector=injector,
    )
    result = eng.run(steps=3)
    assert result.failure is not None
    assert result.failure.error == "ContractViolation"
    assert "finite_diag" in result.failure.message


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------

def test_injection_is_deterministic():
    def run():
        injector = FaultInjector(
            ["contact_duplicate", "solution_nan"], seed=42, start_step=1
        )
        eng = GpuEngine(stacked(), chaos_controls(), fault_injector=injector)
        result = eng.run(steps=4)
        return injector.injected, eng.system.centroids.copy(), result

    injected_a, centroids_a, result_a = run()
    injected_b, centroids_b, result_b = run()
    assert injected_a == injected_b
    np.testing.assert_array_equal(centroids_a, centroids_b)
    assert result_a.contract_violations == result_b.contract_violations
    assert result_a.rollbacks == result_b.rollbacks


def test_injected_fault_records_are_frozen():
    rec = InjectedFault("contact_drop", "contact_detection", 3, "x")
    with pytest.raises(AttributeError):
        rec.step = 4


# ----------------------------------------------------------------------
# checkpoint corruption (the non-stage fault)
# ----------------------------------------------------------------------

def test_checkpoint_corruption_detected(tmp_path):
    eng = GpuEngine(
        stacked(),
        chaos_controls(
            resilience=dict(checkpoint_dir=str(tmp_path), checkpoint_every=1)
        ),
    )
    eng.run(steps=2)
    files = sorted(tmp_path.glob("checkpoint_*.npz"))
    assert files, "no checkpoint persisted"
    # the pristine file loads
    load_checkpoint(files[-1])
    corrupt_checkpoint_file(files[-1])
    with pytest.raises(CheckpointCorrupt):
        load_checkpoint(files[-1])


def test_corrupt_rejects_empty_file(tmp_path):
    path = tmp_path / "empty.npz"
    path.write_bytes(b"")
    with pytest.raises(ValueError, match="empty"):
        corrupt_checkpoint_file(path)
