import numpy as np
import pytest

from repro.core.blocks import Block, BlockSystem
from repro.core.materials import BlockMaterial
from repro.core.state import SimulationControls
from repro.engine.drivers import run_until_static
from repro.engine.gpu_engine import GpuEngine

SQ = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
MAT = BlockMaterial(young=1e9)


def resting_system():
    base = np.array([[0, 0], [3, 0], [3, 1], [0, 1.0]])
    s = BlockSystem([Block(base, MAT), Block(SQ + np.array([1.0, 1.0]), MAT)])
    s.fix_block(0)
    return s


class TestRunUntilStatic:
    def test_resting_system_stops_early(self):
        engine = GpuEngine(
            resting_system(),
            SimulationControls(time_step=1e-3, dynamic=True),
        )
        result, static = run_until_static(
            engine, max_steps=400, burst=20,
            displacement_tolerance=2e-6,
        )
        assert static
        assert result.n_steps < 400

    def test_free_faller_exhausts_budget(self):
        s = BlockSystem([Block(SQ, MAT)])
        engine = GpuEngine(
            s, SimulationControls(time_step=1e-3, dynamic=True,
                                  max_displacement_ratio=1.0),
        )
        result, static = run_until_static(
            engine, max_steps=30, burst=10, displacement_tolerance=1e-9
        )
        assert not static
        assert result.n_steps == 30

    def test_merged_steps_renumbered(self):
        engine = GpuEngine(
            resting_system(),
            SimulationControls(time_step=1e-3, dynamic=True),
        )
        result, _ = run_until_static(
            engine, max_steps=30, burst=10, displacement_tolerance=1e-12
        )
        ids = [s.step for s in result.steps]
        assert ids == list(range(len(ids)))

    def test_mid_burst_failure_returns_partial_merged_result(self, monkeypatch):
        # a fatal fault in the second burst must stop the driver and hand
        # back every accepted step with the failure report attached
        import repro.engine.base as engine_base
        from repro.core.state import ResilienceControls
        from repro.solvers.cg import CGResult, pcg as real_pcg

        calls = {"n": 0}

        def flaky(a, b, x0=None, preconditioner=None, **kwargs):
            calls["n"] += 1
            if calls["n"] > 12:  # fail forever from inside burst 2
                return CGResult(x=np.zeros(b.size), iterations=1,
                                converged=False, residuals=[1.0])
            return real_pcg(a, b, x0=x0, preconditioner=preconditioner,
                            **kwargs)

        monkeypatch.setattr(engine_base, "pcg", flaky)
        engine = GpuEngine(
            resting_system(),
            SimulationControls(
                time_step=1e-3, dynamic=True,
                resilience=ResilienceControls(
                    on_failure="partial", solver_fallback=False,
                    max_rollbacks=0,
                ),
            ),
        )
        result, static = run_until_static(
            engine, max_steps=40, burst=10, displacement_tolerance=1e-12
        )
        assert not static
        assert result.failure is not None
        assert result.failure.error == "StepRejected"
        assert 10 < result.n_steps < 40  # burst 1 whole, burst 2 truncated
        assert result.failure.steps_completed == result.n_steps
        ids = [s.step for s in result.steps]
        assert ids == list(range(len(ids)))  # merged numbering contiguous

    def test_invalid_args(self):
        engine = GpuEngine(
            resting_system(),
            SimulationControls(time_step=1e-3, dynamic=True),
        )
        with pytest.raises(ValueError):
            run_until_static(engine, max_steps=0)
        with pytest.raises(Exception):
            run_until_static(engine, displacement_tolerance=-1.0)


class TestResultExtras:
    def test_to_csv(self, tmp_path):
        engine = GpuEngine(
            resting_system(),
            SimulationControls(time_step=1e-3, dynamic=True),
        )
        result = engine.run(steps=3)
        path = tmp_path / "steps.csv"
        result.to_csv(path)
        lines = path.read_text().splitlines()
        assert lines[0].startswith("step,dt,cg_iterations")
        assert len(lines) == 4

    def test_merge_accumulates_module_times(self):
        engine = GpuEngine(
            resting_system(),
            SimulationControls(time_step=1e-3, dynamic=True),
        )
        a = engine.run(steps=2)
        b = engine.run(steps=3)
        merged = a.merge(b)
        assert merged.n_steps == 5
        assert merged.module_times.total >= a.module_times.total
