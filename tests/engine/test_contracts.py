"""Stage contracts: invariants, violation surfacing, and overhead."""

import time

import numpy as np
import pytest

from repro.core.blocks import Block, BlockSystem
from repro.core.materials import BlockMaterial
from repro.core.state import ResilienceControls, SimulationControls
from repro.engine.chaos import FaultInjector
from repro.engine.contracts import (
    CONTRACT_LEVELS,
    ContractViolation,
    StageContracts,
)
from repro.engine.gpu_engine import GpuEngine
from repro.engine.physics import StateUpdate
from repro.engine.serial_engine import SerialEngine
from repro.meshing.slope_models import build_brick_wall
from repro.solvers.cg import CGResult

SQ = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
MAT = BlockMaterial(young=1e9)


def stacked() -> BlockSystem:
    base = np.array([[0, 0], [3, 0], [3, 1], [0, 1.0]])
    s = BlockSystem([Block(base, MAT), Block(SQ + np.array([1.0, 1.0]), MAT)])
    s.fix_block(0)
    return s


def controls(level="cheap", **res) -> SimulationControls:
    return SimulationControls(
        time_step=1e-3, dynamic=True, max_displacement_ratio=0.05,
        contract_level=level, resilience=ResilienceControls(**res),
    )


def engine_with_artifacts(level="full"):
    """An engine plus one step's worth of real stage artifacts."""
    eng = GpuEngine(stacked(), controls(level))
    contacts = eng._detect_contacts()
    diag_idx, diag_blocks, f_base = eng._build_diagonal()
    normal_force = contacts.pn * np.maximum(0.0, contacts.normal_disp)
    (c_idx, c_blocks, rows, cols, blocks, f_c) = eng._build_nondiagonal(
        contacts, normal_force
    )
    matrix = eng._assemble(
        np.concatenate([diag_idx, c_idx]),
        np.concatenate([diag_blocks, c_blocks]),
        rows, cols, blocks,
    )
    return eng, contacts, matrix, f_base + f_c


# ----------------------------------------------------------------------
# configuration plumbing
# ----------------------------------------------------------------------

def test_level_validation():
    with pytest.raises(ValueError, match="contract level"):
        StageContracts("paranoid")
    with pytest.raises(ValueError, match="contract_level"):
        SimulationControls(contract_level="paranoid")
    for level in CONTRACT_LEVELS:
        assert StageContracts(level).level == level


def test_engines_wire_contract_level():
    for cls in (SerialEngine, GpuEngine):
        eng = cls(stacked(), controls("full"))
        assert eng.contracts.level == "full"
        assert eng.contracts.contact_threshold == eng.contact_threshold


def test_off_level_is_noop():
    checker = StageContracts("off")
    # a blatantly corrupt artifact sails through at level "off"
    eng, contacts, matrix, _ = engine_with_artifacts()
    matrix.diag[0, 0, 0] = np.nan
    checker.check_matrix(matrix)
    assert not checker.violations


# ----------------------------------------------------------------------
# contact-table contracts
# ----------------------------------------------------------------------

def test_valid_contacts_pass_all_levels():
    eng, contacts, _, _ = engine_with_artifacts("full")
    eng.contracts.check_contacts(eng.system, contacts)
    assert not eng.contracts.violations


@pytest.mark.parametrize(
    "corrupt,contract",
    [
        (lambda c: c.block_i.__setitem__(0, 99), "block_index_range"),
        (lambda c: c.vertex_idx.__setitem__(0, -1), "vertex_index_range"),
        (lambda c: c.kind.__setitem__(0, 7), "kind_code"),
        (lambda c: c.state.__setitem__(0, 9), "state_code"),
        (lambda c: c.pn.__setitem__(0, -5.0), "penalty_sign"),
        (lambda c: c.ps.__setitem__(0, np.nan), "penalty_sign"),
        (lambda c: c.ratio.__setitem__(0, 1.5), "ratio_range"),
    ],
)
def test_corrupt_contacts_detected(corrupt, contract):
    eng, contacts, _, _ = engine_with_artifacts("cheap")
    corrupt(contacts)
    with pytest.raises(ContractViolation) as exc:
        eng.contracts.check_contacts(eng.system, contacts)
    assert exc.value.contract == contract
    assert exc.value.stage == "contact_detection"
    assert exc.value.recoverable
    assert eng.contracts.violations["contact_detection"] == 1


def test_duplicate_contact_detected():
    eng, contacts, _, _ = engine_with_artifacts("cheap")
    dup = contacts.select(np.concatenate([np.arange(contacts.m), [0]]))
    with pytest.raises(ContractViolation) as exc:
        eng.contracts.check_contacts(eng.system, dup)
    assert exc.value.contract == "duplicate_contact"


def test_ownership_checked_at_full_only():
    eng, contacts, _, _ = engine_with_artifacts("full")
    # point the contact vertex at a vertex of the *other* block
    wrong = int(eng.system.offsets[contacts.block_j[0]])
    contacts.vertex_idx[0] = wrong
    cheap = StageContracts("cheap", contact_threshold=eng.contact_threshold)
    # cheap only checks ranges — dedup may or may not trip, so skip it by
    # keeping keys unique: assert full catches ownership specifically
    with pytest.raises(ContractViolation) as exc:
        eng.contracts.check_contacts(eng.system, contacts)
    assert exc.value.contract in ("vertex_ownership", "duplicate_contact")


def test_lost_closed_contact_detected():
    eng = GpuEngine(stacked(), controls("full"))
    eng.run(steps=2)  # settle: the square rests closed on the base
    previous = eng._contacts
    assert previous.m > 0
    fresh = eng._detect_contacts()
    # passing unchanged is fine
    eng.contracts.check_contacts(eng.system, fresh, previous=previous)
    # now silently drop every contact: closed rows must be flagged
    from repro.contact.contact_set import ContactSet

    with pytest.raises(ContractViolation) as exc:
        eng.contracts.check_contacts(
            eng.system, ContactSet.empty(), previous=previous
        )
    assert exc.value.contract == "lost_closed_contact"
    assert exc.value.indices


# ----------------------------------------------------------------------
# matrix contracts
# ----------------------------------------------------------------------

def test_valid_matrix_passes():
    eng, _, matrix, _ = engine_with_artifacts("full")
    eng.contracts.check_matrix(matrix)
    assert not eng.contracts.violations


@pytest.mark.parametrize(
    "corrupt,contract",
    [
        (lambda k: k.diag.__setitem__((0, 0, 0), np.nan), "finite_diag"),
        (lambda k: k.diag.__setitem__((0, 0, 0), -1.0), "spd_diagonal"),
        (
            lambda k: k.diag.__setitem__(
                (0, 0, 1), k.diag[0, 0, 1] + 0.5 * abs(k.diag[0]).max() + 1.0
            ),
            "symmetry",
        ),
    ],
)
def test_corrupt_matrix_detected(corrupt, contract):
    eng, _, matrix, _ = engine_with_artifacts("cheap")
    corrupt(matrix)
    with pytest.raises(ContractViolation) as exc:
        eng.contracts.check_matrix(matrix)
    assert exc.value.contract == contract
    assert exc.value.stage == "matrix_assembly"


def test_corrupt_offdiag_detected():
    eng, _, matrix, _ = engine_with_artifacts("cheap")
    if matrix.blocks.size == 0:
        pytest.skip("no off-diagonal blocks in this configuration")
    matrix.blocks[0, 2, 3] = np.inf
    with pytest.raises(ContractViolation) as exc:
        eng.contracts.check_matrix(matrix)
    assert exc.value.contract == "finite_offdiag"


# ----------------------------------------------------------------------
# solution contracts
# ----------------------------------------------------------------------

def test_solution_checks():
    eng, _, matrix, rhs = engine_with_artifacts("full")
    n = rhs.size
    good = CGResult(
        x=np.zeros(n), iterations=1, converged=True, residuals=[1e-12]
    )
    # a zero solution against a nonzero rhs: true residual 1.0 vs
    # reported 1e-12 — the full-level cross-check must fire
    with pytest.raises(ContractViolation) as exc:
        eng.contracts.check_solution(matrix, rhs, good)
    assert exc.value.contract == "residual_mismatch"

    bad = CGResult(
        x=np.full(n, np.nan), iterations=1, converged=True, residuals=[1e-12]
    )
    cheap = StageContracts("cheap")
    with pytest.raises(ContractViolation) as exc:
        cheap.check_solution(matrix, rhs, bad)
    assert exc.value.contract == "finite_solution"


# ----------------------------------------------------------------------
# state-update contracts
# ----------------------------------------------------------------------

def _update(m, **over):
    base = dict(
        states=np.zeros(m, dtype=np.int64),
        shear_sign=np.ones(m),
        normal_force=np.zeros(m),
        changed=0,
        significant_changes=0,
        max_penetration=0.0,
    )
    base.update(over)
    return StateUpdate(**base)


def test_state_update_checks():
    eng, contacts, _, _ = engine_with_artifacts("full")
    m = contacts.m
    eng.contracts.check_state_update(contacts, _update(m))
    with pytest.raises(ContractViolation) as exc:
        eng.contracts.check_state_update(
            contacts, _update(m, states=np.full(m, 9, dtype=np.int64))
        )
    assert exc.value.contract == "state_code"
    with pytest.raises(ContractViolation) as exc:
        eng.contracts.check_state_update(
            contacts, _update(m, shear_sign=np.full(m, 0.5))
        )
    assert exc.value.contract == "shear_sign"
    with pytest.raises(ContractViolation) as exc:
        eng.contracts.check_state_update(
            contacts, _update(m, normal_force=np.full(m, -1.0))
        )
    assert exc.value.contract == "normal_force_sign"
    with pytest.raises(ContractViolation) as exc:
        eng.contracts.check_state_update(
            contacts,
            _update(m, max_penetration=100.0 * eng.contact_threshold),
        )
    assert exc.value.contract == "penetration_bound"


# ----------------------------------------------------------------------
# geometry contracts
# ----------------------------------------------------------------------

def test_geometry_checks():
    eng, *_ = engine_with_artifacts("full")
    eng.contracts.check_geometry(eng.system)
    eng.system.vertices[0, 0] = np.nan
    with pytest.raises(ContractViolation) as exc:
        eng.contracts.check_geometry(eng.system)
    assert exc.value.contract == "finite_vertices"


def test_geometry_self_intersection_detected():
    eng, *_ = engine_with_artifacts("full")
    # rewrite block 1 as a bowtie with positive signed area
    lo = int(eng.system.offsets[1])
    eng.system.vertices[lo:lo + 4] = np.array(
        [[0.0, 10.0], [2.0, 10.0], [0.5, 11.0], [1.5, 11.0]]
    )
    eng.system._refresh_cache()
    with pytest.raises(ContractViolation) as exc:
        eng.contracts.check_geometry(eng.system)
    assert exc.value.contract == "simple_polygon"
    assert exc.value.indices == [1]


# ----------------------------------------------------------------------
# end-to-end surfacing + overhead
# ----------------------------------------------------------------------

def test_violations_surface_in_result():
    injector = FaultInjector(["matrix_nan"], seed=1, start_step=1)
    eng = GpuEngine(
        stacked(),
        controls("cheap", checkpoint_every=1, max_rollbacks=5),
        fault_injector=injector,
    )
    result = eng.run(steps=3)
    assert injector.injected, "fault never fired"
    assert result.contract_violations.get("matrix_assembly", 0) >= 1
    assert result.rollbacks >= 1
    assert result.failure is None
    assert result.n_steps == 3


def test_clean_run_reports_no_violations():
    eng = GpuEngine(stacked(), controls("full", checkpoint_every=1))
    result = eng.run(steps=3)
    assert result.contract_violations == {}
    assert result.rollbacks == 0


@pytest.mark.slow
def test_cheap_contract_overhead_bounded():
    """`cheap` contracts must cost < 10% on the quickstart workload."""

    def run_once(level):
        eng = GpuEngine(build_brick_wall(rows=4, cols=6), controls(level))
        t0 = time.perf_counter()
        eng.run(steps=5)
        return time.perf_counter() - t0

    t_off = min(run_once("off") for _ in range(3))
    t_cheap = min(run_once("cheap") for _ in range(3))
    # 10% target with a small absolute floor for timer noise on tiny runs
    assert t_cheap <= 1.10 * t_off + 0.05, (
        f"cheap contracts cost {t_cheap:.3f}s vs {t_off:.3f}s baseline"
    )
