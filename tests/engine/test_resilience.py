"""Resilience layer: taxonomy, fallback ladder, guards, checkpoint/rollback.

The headline scenario: a run that previously died with a bare
``RuntimeError`` on forced mid-run non-convergence now rolls back to the
last checkpoint, retries at a smaller dt, and completes (or returns a
partial result with an attached ``FailureReport``) — on all three
engines, with the fallback-ladder rung visible in the step records.
"""

import numpy as np
import pytest

import repro.engine.base as engine_base
from repro.core.blocks import Block, BlockSystem
from repro.core.materials import BlockMaterial
from repro.core.state import ResilienceControls, SimulationControls
from repro.engine.gpu_engine import GpuEngine
from repro.engine.hybrid_engine import HybridEngine
from repro.engine.resilience import (
    Checkpoint,
    CheckpointCorrupt,
    CheckpointManager,
    HealthMonitor,
    NumericalBlowup,
    SimulationError,
    SolverBreakdown,
    StepContext,
    StepRejected,
    kinetic_energy,
    solver_ladder,
)
from repro.engine.results import StepRecord
from repro.engine.serial_engine import SerialEngine
from repro.solvers.cg import CGResult, pcg
from repro.solvers.preconditioners import stronger_preconditioner

SQ = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
MAT = BlockMaterial(young=1e9)

ENGINES = [SerialEngine, GpuEngine, HybridEngine]


def stacked():
    base = np.array([[0, 0], [3, 0], [3, 1], [0, 1.0]])
    s = BlockSystem([Block(base, MAT), Block(SQ + np.array([1.0, 1.0]), MAT)])
    s.fix_block(0)
    return s


def controls(**resilience_kwargs) -> SimulationControls:
    return SimulationControls(
        time_step=1e-3, dynamic=True, max_displacement_ratio=0.05,
        resilience=ResilienceControls(**resilience_kwargs),
    )


class FlakyPCG:
    """Wrap the real pcg, failing a chosen window of calls.

    Calls ``fail_from <= i < fail_from + fail_count`` (0-based) return a
    non-converged result without running CG; everything else passes
    through. Deterministic, so rollback-retries land on healed calls.
    """

    def __init__(self, fail_from: int, fail_count: int, breakdown=False):
        self.fail_from = fail_from
        self.fail_count = fail_count
        self.breakdown = breakdown
        self.calls = 0
        self.failed = 0
        self.rungs_seen: list[tuple[str, bool]] = []

    def __call__(self, a, b, x0=None, preconditioner=None, **kwargs):
        i = self.calls
        self.calls += 1
        self.rungs_seen.append(
            (getattr(preconditioner, "name", "none"), x0 is not None)
        )
        if self.fail_from <= i < self.fail_from + self.fail_count:
            self.failed += 1
            return CGResult(
                x=np.zeros(b.size), iterations=1, converged=False,
                residuals=[1.0], breakdown=self.breakdown,
            )
        return pcg(a, b, x0=x0, preconditioner=preconditioner, **kwargs)


# ----------------------------------------------------------------------
# taxonomy
# ----------------------------------------------------------------------
class TestTaxonomy:
    def test_hierarchy(self):
        for cls in (StepRejected, SolverBreakdown, NumericalBlowup,
                    CheckpointCorrupt):
            assert issubclass(cls, SimulationError)
            assert issubclass(cls, RuntimeError)

    def test_context_carried_and_described(self):
        ctx = StepContext(step=7, dt=1e-4, retries=3,
                          cg_residuals=[0.5, 0.1], max_penetration=2e-3,
                          cause="cg_breakdown")
        err = SolverBreakdown("boom", ctx)
        assert err.context.step == 7
        text = err.context.describe()
        assert "step 7" in text and "cg_breakdown" in text
        assert "1.000e-01" in text  # last residual

    def test_blowup_policy_controls_recoverability(self):
        assert NumericalBlowup("x", policy="rollback").recoverable
        assert not NumericalBlowup("x", policy="fail_fast").recoverable
        assert not CheckpointCorrupt("x").recoverable

    def test_step_rejection_carries_context(self):
        c = SimulationControls(
            time_step=1e-3, dynamic=True, cg_tolerance=1e-300,
            cg_max_iterations=2, max_displacement_ratio=0.05,
        )
        engine = GpuEngine(stacked(), c)
        with pytest.raises(StepRejected) as exc_info:
            engine.run(steps=1)
        ctx = exc_info.value.context
        assert ctx.step == 0
        assert ctx.retries == engine_base.MAX_STEP_RETRIES
        assert ctx.cause == "cg_non_convergence"
        assert len(ctx.cg_residuals) > 0


# ----------------------------------------------------------------------
# fallback ladder
# ----------------------------------------------------------------------
class TestFallbackLadder:
    def test_ladder_shape(self):
        assert solver_ladder("bj") == [
            ("bj", True), ("ssor", True), ("ssor", False),
        ]
        assert solver_ladder("ilu") == [("ilu", True), ("ilu", False)]
        assert solver_ladder("bj", enabled=False) == [("bj", True)]

    def test_strength_order(self):
        assert stronger_preconditioner("none") == "jacobi"
        assert stronger_preconditioner("bj") == "ssor"
        assert stronger_preconditioner("ilu") == "ilu"
        assert stronger_preconditioner("mystery") == "mystery"

    def test_rung_recorded_on_escalation(self, monkeypatch):
        # fail exactly the first solve: rung 0 rejected, rung 1 converges
        flaky = FlakyPCG(fail_from=0, fail_count=1)
        monkeypatch.setattr(engine_base, "pcg", flaky)
        engine = GpuEngine(stacked(), controls())
        result = engine.run(steps=3)
        assert result.steps[0].solver_rung == 1
        assert result.steps[0].retries == 0  # no dt-halving burned
        assert result.max_solver_rung == 1
        # the escalation used the stronger preconditioner
        assert flaky.rungs_seen[0] == ("bj", True)
        assert flaky.rungs_seen[1] == ("ssor", True)

    def test_cold_restart_rung(self, monkeypatch):
        # fail rungs 0 and 1: rung 2 must drop the warm start
        flaky = FlakyPCG(fail_from=0, fail_count=2)
        monkeypatch.setattr(engine_base, "pcg", flaky)
        engine = GpuEngine(stacked(), controls())
        result = engine.run(steps=2)
        assert result.steps[0].solver_rung == 2
        assert flaky.rungs_seen[2] == ("ssor", False)

    def test_ladder_disabled_burns_dt_halving(self, monkeypatch):
        flaky = FlakyPCG(fail_from=0, fail_count=1)
        monkeypatch.setattr(engine_base, "pcg", flaky)
        engine = GpuEngine(stacked(), controls(solver_fallback=False))
        result = engine.run(steps=2)
        assert result.steps[0].retries == 1
        assert result.steps[0].solver_rung == 0

    def test_breakdown_classified(self, monkeypatch):
        flaky = FlakyPCG(fail_from=0, fail_count=10_000, breakdown=True)
        monkeypatch.setattr(engine_base, "pcg", flaky)
        engine = GpuEngine(stacked(), controls())
        with pytest.raises(SolverBreakdown) as exc_info:
            engine.run(steps=1)
        assert exc_info.value.context.cause == "cg_breakdown"


# ----------------------------------------------------------------------
# accepted-dt recording (satellite fix)
# ----------------------------------------------------------------------
class TestAcceptedDtRecording:
    def test_recorded_dt_is_integrated_dt(self, monkeypatch):
        # force one rejection on step 3's first solve (ladder off): the
        # step then integrates the halved dt, and the record must show
        # that dt — not the regrown value carried into step 4
        flaky = FlakyPCG(fail_from=3, fail_count=1)
        monkeypatch.setattr(engine_base, "pcg", flaky)
        engine = GpuEngine(stacked(), controls(solver_fallback=False))
        result = engine.run(steps=6)
        retried = [st for st in result.steps if st.retries == 1]
        assert len(retried) == 1
        assert retried[0].dt == pytest.approx(0.5e-3)
        # the records' dt series sums to the engine's accumulated time
        assert engine.sim_time == pytest.approx(
            sum(st.dt for st in result.steps)
        )
        # and the following step grew dt again (1.5x growth, capped)
        following = result.steps[retried[0].step + 1]
        assert following.dt == pytest.approx(min(0.75e-3, 1e-3))


# ----------------------------------------------------------------------
# health monitor
# ----------------------------------------------------------------------
def _record(step=0, oc_converged=True, max_penetration=0.0):
    return StepRecord(
        step=step, dt=1e-3, cg_iterations=1, open_close_iterations=1,
        n_contacts=0, n_offdiag_blocks=0, max_displacement=0.0,
        max_penetration=max_penetration, retries=0,
        oc_converged=oc_converged,
    )


class TestHealthMonitor:
    def make(self, **kwargs):
        rc = ResilienceControls(**kwargs)
        return HealthMonitor(rc, contact_threshold=1e-3, energy_scale=1.0)

    def test_finite_guard_raises(self):
        monitor = self.make(guard_finite="rollback")
        system = BlockSystem([Block(SQ, MAT)])
        system.velocities[0, 0] = np.nan
        with pytest.raises(NumericalBlowup) as exc_info:
            monitor.after_step(system, _record())
        assert exc_info.value.guard == "finite"
        assert exc_info.value.recoverable

    def test_penetration_guard_warns(self):
        monitor = self.make(guard_penetration="warn", penetration_factor=10.0)
        system = BlockSystem([Block(SQ, MAT)])
        warnings = monitor.after_step(
            system, _record(max_penetration=0.5)  # >> 10 x 1e-3
        )
        assert [w.guard for w in warnings] == ["penetration"]

    def test_energy_guard_trips_on_blowup(self):
        monitor = self.make(guard_energy="fail_fast", energy_factor=100.0)
        system = BlockSystem([Block(SQ, MAT)])
        system.velocities[0, :2] = 0.01
        monitor.after_step(system, _record(step=0))  # establishes baseline
        system.velocities[0, :2] = 100.0  # 1e8x energy jump, above floor
        with pytest.raises(NumericalBlowup) as exc_info:
            monitor.after_step(system, _record(step=1))
        assert exc_info.value.guard == "energy"
        assert not exc_info.value.recoverable  # fail_fast

    def test_energy_guard_silent_below_floor(self):
        monitor = self.make(guard_energy="fail_fast", energy_factor=100.0)
        system = BlockSystem([Block(SQ, MAT)])
        system.velocities[0, :2] = 1e-8
        monitor.after_step(system, _record(step=0))
        system.velocities[0, :2] = 1e-5  # huge ratio, negligible energy
        assert monitor.after_step(system, _record(step=1)) == []

    def test_oscillation_streak(self):
        monitor = self.make(guard_oscillation="warn", oscillation_streak=3)
        system = BlockSystem([Block(SQ, MAT)])
        warnings = []
        for step in range(3):
            warnings += monitor.after_step(
                system, _record(step=step, oc_converged=False)
            )
        assert [w.guard for w in warnings] == ["oscillation"]
        # a converged step resets the streak
        monitor.after_step(system, _record(step=3, oc_converged=True))
        assert monitor._oscillation_streak == 0

    def test_kinetic_energy(self):
        system = BlockSystem([Block(SQ, MAT)])
        system.velocities[0, 0] = 2.0
        # 0.5 * rho * area * v^2 = 0.5 * 2600 * 1 * 4
        assert kinetic_energy(system) == pytest.approx(0.5 * 2600.0 * 4.0)


# ----------------------------------------------------------------------
# checkpoints
# ----------------------------------------------------------------------
class TestCheckpoint:
    def test_restore_is_bit_exact(self):
        engine = GpuEngine(stacked(), controls())
        engine.run(steps=5)
        cp = engine.checkpoint(step=5)
        after_a = engine.run(steps=5)
        va = engine.system.vertices.copy()
        engine.restore_checkpoint(cp)
        after_b = engine.run(steps=5)
        np.testing.assert_array_equal(va, engine.system.vertices)
        assert after_a.steps[-1].cg_iterations == after_b.steps[-1].cg_iterations

    def test_restore_rolls_back_boundary_conditions(self):
        engine = GpuEngine(stacked(), controls())
        cp = engine.checkpoint(step=0)
        fixed_before = list(engine.system.fixed_points)
        engine.run(steps=10)  # fixed points move with their block
        engine.restore_checkpoint(cp)
        assert engine.system.fixed_points == fixed_before
        assert engine.sim_time == 0.0

    def test_manager_ring_bounded(self):
        engine = GpuEngine(stacked(), controls())
        manager = CheckpointManager(keep=2)
        for step in range(5):
            manager.take(engine, step=step)
        assert len(manager) == 2
        assert manager.latest.step == 4

    def test_manager_persists(self, tmp_path):
        from repro.io.model_io import load_checkpoint

        engine = GpuEngine(stacked(), controls())
        manager = CheckpointManager(keep=1, persist_dir=tmp_path)
        manager.take(engine, step=3)
        cp = load_checkpoint(tmp_path / "checkpoint_00000003.npz")
        assert cp.step == 3
        np.testing.assert_array_equal(cp.vertices, engine.system.vertices)


# ----------------------------------------------------------------------
# end-to-end recovery (the acceptance scenario) — all three engines
# ----------------------------------------------------------------------
class TestEndToEndRecovery:
    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_transient_fault_rolls_back_and_completes(
        self, engine_cls, monkeypatch
    ):
        # Fault window: every solve fails from call 12 until one full
        # step has exhausted its retries (ladder off => 1 call per
        # attempt, 11 attempts), then the fault heals. Without the
        # resilience layer this run died with a RuntimeError.
        retries = engine_base.MAX_STEP_RETRIES + 1
        flaky = FlakyPCG(fail_from=6, fail_count=retries)
        monkeypatch.setattr(engine_base, "pcg", flaky)
        engine = engine_cls(
            stacked(),
            controls(checkpoint_every=2, max_rollbacks=2,
                     solver_fallback=False),
        )
        result = engine.run(steps=10)
        assert result.failure is None
        assert result.n_steps == 10
        assert result.rollbacks >= 1
        assert flaky.failed == retries  # the whole window was consumed
        rollback_notes = [w for w in result.warnings if w.guard == "rollback"]
        assert rollback_notes and "rolled back to step" in rollback_notes[0].message
        # renumbering stayed contiguous through the rollback
        assert [s.step for s in result.steps] == list(range(10))

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_persistent_fault_returns_partial_with_report(
        self, engine_cls, monkeypatch
    ):
        flaky = FlakyPCG(fail_from=6, fail_count=10_000_000)
        monkeypatch.setattr(engine_base, "pcg", flaky)
        engine = engine_cls(
            stacked(),
            controls(checkpoint_every=2, max_rollbacks=1,
                     solver_fallback=False, on_failure="partial"),
        )
        result = engine.run(steps=10)
        assert result.is_partial
        assert result.failure.error == "StepRejected"
        assert result.failure.rollbacks == 1
        assert 0 < result.n_steps < 10
        assert result.failure.steps_completed == result.n_steps
        # the partial prefix is still a usable result
        assert result.displacements is not None

    def test_nan_injection_triggers_rollback_recovery(self, monkeypatch):
        engine = GpuEngine(
            stacked(),
            controls(checkpoint_every=1, max_rollbacks=2,
                     guard_finite="rollback"),
        )
        original = engine._update_data
        poisoned = {"armed": True}

        def poison_once(d):
            original(d)
            if poisoned["armed"] and engine.sim_time > 3e-3:
                poisoned["armed"] = False
                engine.system.velocities[0, 0] = np.nan

        monkeypatch.setattr(engine, "_update_data", poison_once)
        result = engine.run(steps=8)
        assert result.failure is None
        assert result.rollbacks == 1
        assert np.isfinite(engine.system.velocities).all()

    def test_fail_fast_guard_skips_rollback(self, monkeypatch):
        engine = GpuEngine(
            stacked(),
            controls(checkpoint_every=1, max_rollbacks=5,
                     guard_finite="fail_fast"),
        )
        original = engine._update_data

        def poison(d):
            original(d)
            engine.system.velocities[0, 0] = np.nan

        monkeypatch.setattr(engine, "_update_data", poison)
        with pytest.raises(NumericalBlowup):
            engine.run(steps=5)
