"""Sanity checks of the virtual-device ledgers produced by full runs."""

import dataclasses

import numpy as np
import pytest

from repro.core.state import SimulationControls
from repro.engine.gpu_engine import GpuEngine
from repro.engine.serial_engine import SerialEngine
from repro.meshing.slope_models import build_brick_wall
from repro.util.timing import PIPELINE_MODULES


@pytest.fixture(scope="module")
def gpu_run():
    engine = GpuEngine(
        build_brick_wall(3, 4),
        SimulationControls(time_step=5e-4, dynamic=True),
    )
    return engine.run(steps=5), engine


@pytest.fixture(scope="module")
def serial_run():
    engine = SerialEngine(
        build_brick_wall(3, 4),
        SimulationControls(time_step=5e-4, dynamic=True),
    )
    return engine.run(steps=5), engine


class TestLedgerSanity:
    def test_all_counters_finite_nonnegative(self, gpu_run):
        result, _ = gpu_run
        for record in result.device.records:
            for f in dataclasses.fields(record.counters):
                v = getattr(record.counters, f.name)
                assert np.isfinite(v), (record.name, f.name)
                assert v >= 0.0, (record.name, f.name)

    def test_every_kernel_has_positive_time(self, gpu_run):
        result, _ = gpu_run
        assert all(r.seconds > 0 for r in result.device.records)

    def test_every_module_present(self, gpu_run):
        result, _ = gpu_run
        modeled = result.modeled_module_times()
        for module in PIPELINE_MODULES:
            assert module in modeled, module
            assert modeled[module] > 0

    def test_no_unattributed_kernels(self, gpu_run):
        result, _ = gpu_run
        assert "other" not in result.device.time_by_module()

    def test_wall_times_cover_modules(self, gpu_run):
        result, _ = gpu_run
        for module in PIPELINE_MODULES:
            assert result.module_times.times[module] > 0

    def test_counters_scale_with_steps(self):
        def total_flops(steps):
            e = GpuEngine(
                build_brick_wall(3, 4),
                SimulationControls(time_step=5e-4, dynamic=True),
            )
            r = e.run(steps=steps)
            return r.device.total_counters.flops

        f2, f6 = total_flops(2), total_flops(6)
        # roughly linear in steps; early steps run extra open–close sweeps
        # so sublinearity up to ~2x is expected
        assert 1.5 < f6 / f2 < 4.5

    def test_serial_ledger_single_threaded(self, serial_run):
        result, _ = serial_run
        # serial kernels report warp width 1 (no SIMT parallelism claimed)
        for record in result.device.records:
            if record.name.startswith("serial_"):
                assert record.counters.warps <= 1

    def test_serial_profile_is_cpu(self, serial_run):
        _, engine = serial_run
        assert engine.device.profile.kind == "cpu"

    def test_gpu_profile_is_gpu(self, gpu_run):
        _, engine = gpu_run
        assert engine.device.profile.kind == "gpu"

    def test_divergence_only_from_divergent_kernels(self, gpu_run):
        result, _ = gpu_run
        total = result.device.total_counters
        assert total.divergent_branch_regions <= total.branch_regions
