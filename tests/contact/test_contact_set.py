import numpy as np
import pytest

from repro.assembly.contact_springs import LOCK, OPEN
from repro.contact.contact_set import VE, VV2, ContactSet
from repro.core.blocks import Block, BlockSystem

SQ = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])


def make_set(m=3):
    return ContactSet(
        block_i=np.zeros(m, dtype=np.int64),
        block_j=np.ones(m, dtype=np.int64),
        vertex_idx=np.arange(m, dtype=np.int64),
        e1_idx=np.arange(m, dtype=np.int64) + 4,
        e2_idx=np.arange(m, dtype=np.int64) + 5,
        kind=np.full(m, VE, dtype=np.int64),
    )


class TestContactSet:
    def test_defaults(self):
        cs = make_set()
        assert cs.m == 3
        assert (cs.state == OPEN).all()
        assert (cs.ratio == 0.5).all()
        assert (cs.shear_sign == 1.0).all()

    def test_empty(self):
        cs = ContactSet.empty()
        assert cs.m == 0

    def test_self_contact_rejected(self):
        with pytest.raises(ValueError, match="self-contact"):
            ContactSet(
                block_i=np.array([0]),
                block_j=np.array([0]),
                vertex_idx=np.array([0]),
                e1_idx=np.array([1]),
                e2_idx=np.array([2]),
                kind=np.array([VE]),
            )

    def test_keys_unique_per_contact_data(self):
        cs = make_set(4)
        keys = cs.keys(100)
        assert np.unique(keys).size == 4

    def test_keys_equal_for_equal_data(self):
        a = make_set(2)
        b = make_set(2)
        np.testing.assert_array_equal(a.keys(50), b.keys(50))

    def test_minor_block(self):
        cs = ContactSet(
            block_i=np.array([3, 1]),
            block_j=np.array([2, 5]),
            vertex_idx=np.zeros(2, dtype=np.int64),
            e1_idx=np.ones(2, dtype=np.int64),
            e2_idx=np.full(2, 2, dtype=np.int64),
            kind=np.zeros(2, dtype=np.int64),
        )
        np.testing.assert_array_equal(cs.minor_block(), [2, 1])

    def test_select(self):
        cs = make_set(5)
        cs.state[:] = np.arange(5) % 3
        sub = cs.select(np.array([4, 0]))
        assert sub.m == 2
        np.testing.assert_array_equal(sub.vertex_idx, [4, 0])
        np.testing.assert_array_equal(sub.state, [1, 0])

    def test_copy_independent(self):
        cs = make_set()
        c = cs.copy()
        c.state[0] = LOCK
        assert cs.state[0] == OPEN

    def test_geometry(self):
        system = BlockSystem([Block(SQ), Block(SQ + np.array([2.0, 0.0]))])
        cs = ContactSet(
            block_i=np.array([0]),
            block_j=np.array([1]),
            vertex_idx=np.array([1]),  # (1, 0) of block 0
            e1_idx=np.array([4]),  # (2, 0)
            e2_idx=np.array([7]),  # (2, 1)
            kind=np.array([VV2]),
        )
        p1, e1, e2, ci, cj = cs.geometry(system)
        np.testing.assert_allclose(p1[0], [1.0, 0.0])
        np.testing.assert_allclose(e1[0], [2.0, 0.0])
        np.testing.assert_allclose(ci[0], [0.5, 0.5])
        np.testing.assert_allclose(cj[0], [2.5, 0.5])
