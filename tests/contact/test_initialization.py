import numpy as np
import pytest

from repro.contact.contact_set import VE, VV1, VV2, ContactSet
from repro.contact.initialization import (
    initialize_contacts_classified,
    initialize_contacts_unclassified,
)
from repro.core.blocks import Block, BlockSystem
from repro.core.materials import BlockMaterial
from repro.gpu.device import K40
from repro.gpu.kernel import VirtualDevice

SQ = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])


def make_fixture(n_contacts=96, seed=0):
    system = BlockSystem(
        [Block(SQ, BlockMaterial(young=2e9)), Block(SQ + 2, BlockMaterial(young=4e9))]
    )
    rng = np.random.default_rng(seed)
    kinds = np.sort(rng.integers(0, 3, size=n_contacts))  # grouped layout
    cs = ContactSet(
        block_i=np.zeros(n_contacts, dtype=np.int64),
        block_j=np.ones(n_contacts, dtype=np.int64),
        vertex_idx=rng.integers(0, 4, size=n_contacts),
        e1_idx=rng.integers(4, 8, size=n_contacts),
        e2_idx=rng.integers(4, 8, size=n_contacts),
        kind=kinds,
    )
    # avoid degenerate edges
    cs.e2_idx = np.where(cs.e2_idx == cs.e1_idx, 4 + (cs.e1_idx - 4 + 1) % 4, cs.e2_idx)
    return system, cs


class TestInitialization:
    def test_penalties_set_from_materials(self):
        system, cs = make_fixture()
        out = initialize_contacts_classified(system, cs, penalty_scale=10.0)
        np.testing.assert_allclose(out.pn, 10.0 * 0.5 * (2e9 + 4e9))
        np.testing.assert_allclose(out.ps, out.pn)

    def test_classified_equals_unclassified(self):
        system, cs = make_fixture()
        a = initialize_contacts_classified(system, cs, 10.0)
        b = initialize_contacts_unclassified(system, cs, 10.0)
        np.testing.assert_allclose(a.pn, b.pn)
        np.testing.assert_allclose(a.ratio, b.ratio)

    def test_input_not_mutated(self):
        system, cs = make_fixture()
        before = cs.pn.copy()
        initialize_contacts_classified(system, cs, 10.0)
        np.testing.assert_array_equal(cs.pn, before)

    def test_classified_no_divergence(self):
        system, cs = make_fixture()
        dev = VirtualDevice(K40)
        initialize_contacts_classified(system, cs, 10.0, dev)
        assert dev.total_counters.divergent_branch_regions == 0.0

    def test_unclassified_on_shuffled_data_diverges(self):
        system, cs = make_fixture(n_contacts=32 * 20)
        dev = VirtualDevice(K40)
        initialize_contacts_unclassified(system, cs, 10.0, dev, shuffle_seed=1)
        c = dev.total_counters
        assert c.divergent_branch_regions > 0
        assert c.wasted_lane_flops > 0

    def test_classification_saves_modelled_time(self):
        # the paper's case analysis: classified init is faster and less
        # divergent than the shuffled-unclassified baseline
        system, cs = make_fixture(n_contacts=32 * 64)
        d_cls, d_uncls = VirtualDevice(K40), VirtualDevice(K40)
        initialize_contacts_classified(system, cs, 10.0, d_cls)
        initialize_contacts_unclassified(system, cs, 10.0, d_uncls, shuffle_seed=2)
        assert d_cls.total_counters.divergence_rate < d_uncls.total_counters.divergence_rate

    def test_ratio_refreshed(self):
        system, cs = make_fixture(n_contacts=8)
        cs.ratio[:] = -1.0  # stale
        out = initialize_contacts_classified(system, cs, 10.0)
        assert ((out.ratio >= 0.0) & (out.ratio <= 1.0)).all()
