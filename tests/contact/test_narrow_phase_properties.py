"""Property-based tests of the narrow phase over random block scenes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.contact.broad_phase import broad_phase_pairs
from repro.contact.narrow_phase import narrow_phase
from repro.core.blocks import Block, BlockSystem

SQ = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])


def random_scene(seed: int, n: int) -> BlockSystem:
    """n unit squares at random positions/rotations in a small arena."""
    rng = np.random.default_rng(seed)
    blocks = []
    for _ in range(n):
        th = rng.uniform(0, 2 * np.pi)
        rot = np.array(
            [[np.cos(th), -np.sin(th)], [np.sin(th), np.cos(th)]]
        )
        center = rng.uniform(0, 3.0, size=2)
        blocks.append(Block((SQ - 0.5) @ rot.T + center))
    return BlockSystem(blocks)


@given(st.integers(min_value=0, max_value=400),
       st.integers(min_value=2, max_value=7))
@settings(max_examples=40, deadline=None)
def test_property_contact_invariants(seed, n):
    system = random_scene(seed, n)
    threshold = 0.1
    i, j = broad_phase_pairs(system.aabbs, threshold)
    contacts = narrow_phase(system, i, j, threshold)
    if contacts.m == 0:
        return
    pair_set = set(zip(i.tolist(), j.tolist()))
    owner = system.block_of_vertex()
    for k in range(contacts.m):
        bi = int(contacts.block_i[k])
        bj = int(contacts.block_j[k])
        # 1. contacts only between broad-phase survivor pairs
        assert (min(bi, bj), max(bi, bj)) in pair_set
        # 2. vertex belongs to block_i, edge endpoints to block_j
        assert owner[contacts.vertex_idx[k]] == bi
        assert owner[contacts.e1_idx[k]] == bj
        assert owner[contacts.e2_idx[k]] == bj
        # 3. the stored edge is a real boundary edge of block_j (reversed)
        lo, hi = system.offsets[bj], system.offsets[bj + 1]
        e1l = contacts.e1_idx[k] - lo
        e2l = contacts.e2_idx[k] - lo
        count = hi - lo
        assert (e2l + 1) % count == e1l  # E1 = CCW successor of E2
        # 4. ratio within the edge
        assert 0.0 <= contacts.ratio[k] <= 1.0
        # 5. kind codes valid
        assert contacts.kind[k] in (0, 1, 2)


@given(st.integers(min_value=0, max_value=200))
@settings(max_examples=30, deadline=None)
def test_property_kind_grouping(seed):
    system = random_scene(seed, 5)
    i, j = broad_phase_pairs(system.aabbs, 0.15)
    contacts = narrow_phase(system, i, j, 0.15)
    # the framework contract: successive arrays grouped by kind
    assert (np.diff(contacts.kind) >= 0).all()


@given(st.integers(min_value=0, max_value=200))
@settings(max_examples=20, deadline=None)
def test_property_detection_is_deterministic(seed):
    a = random_scene(seed, 4)
    b = random_scene(seed, 4)
    ia, ja = broad_phase_pairs(a.aabbs, 0.1)
    ib, jb = broad_phase_pairs(b.aabbs, 0.1)
    ca = narrow_phase(a, ia, ja, 0.1)
    cb = narrow_phase(b, ib, jb, 0.1)
    assert ca.m == cb.m
    np.testing.assert_array_equal(ca.vertex_idx, cb.vertex_idx)
    np.testing.assert_array_equal(ca.kind, cb.kind)
