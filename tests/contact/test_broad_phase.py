import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.contact.broad_phase import (
    broad_phase_pairs,
    broad_phase_pairs_python,
    gpu_pair_mapping,
    sort_pairs,
)


def random_aabbs(rng, n, world=10.0, size=1.0):
    lo = rng.uniform(0, world, size=(n, 2))
    hi = lo + rng.uniform(0.1, size, size=(n, 2))
    return np.concatenate([lo, hi], axis=1)


class TestGpuPairMapping:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 9, 16, 31])
    def test_covers_all_pairs_exactly_once(self, n):
        i, j = gpu_pair_mapping(n)
        assert i.size == n * (n - 1) // 2
        keys = set(zip(i.tolist(), j.tolist()))
        expected = {(a, b) for a in range(n) for b in range(a + 1, n)}
        assert keys == expected

    def test_trivial_sizes(self):
        i, j = gpu_pair_mapping(1)
        assert i.size == 0

    def test_load_balance(self):
        # each row of the reshaped matrix holds (about) n/2 tests —
        # that is the point of the reshape
        n = 32
        rows = np.repeat(np.arange(n), n // 2)
        # row r appears as originating row n//2 times before dedup;
        # after dedup each unordered pair appears once and rows are
        # near-uniform
        i, j = gpu_pair_mapping(n)
        counts = np.bincount(np.concatenate([i, j]), minlength=n)
        assert counts.max() - counts.min() <= 1


class TestBroadPhase:
    def test_matches_python_reference(self, rng, device):
        aabbs = random_aabbs(rng, 40)
        gi, gj = sort_pairs(*broad_phase_pairs(aabbs, 0.1, device))
        pi, pj = sort_pairs(*broad_phase_pairs_python(aabbs, 0.1))
        np.testing.assert_array_equal(gi, pi)
        np.testing.assert_array_equal(gj, pj)
        assert device.launches() == 1

    def test_disjoint_boxes(self):
        aabbs = np.array([[0, 0, 1, 1], [5, 5, 6, 6.0]])
        i, j = broad_phase_pairs(aabbs, 0.1)
        assert i.size == 0

    def test_touching_with_margin(self):
        aabbs = np.array([[0, 0, 1, 1], [1.05, 0, 2, 1.0]])
        i, j = broad_phase_pairs(aabbs, 0.1)
        assert i.size == 1
        i, j = broad_phase_pairs(aabbs, 0.01)
        assert i.size == 0

    def test_single_block(self):
        i, j = broad_phase_pairs(np.array([[0, 0, 1, 1.0]]), 0.1)
        assert i.size == 0

    def test_all_overlapping(self):
        aabbs = np.tile(np.array([[0, 0, 1, 1.0]]), (5, 1))
        i, j = broad_phase_pairs(aabbs, 0.0)
        assert i.size == 10

    @given(st.integers(min_value=2, max_value=40), st.integers(0, 9999))
    @settings(max_examples=30, deadline=None)
    def test_property_gpu_equals_python(self, n, seed):
        rng = np.random.default_rng(seed)
        aabbs = random_aabbs(rng, n, world=5.0, size=2.0)
        gi, gj = sort_pairs(*broad_phase_pairs(aabbs, 0.05))
        pi, pj = sort_pairs(*broad_phase_pairs_python(aabbs, 0.05))
        np.testing.assert_array_equal(gi, pi)
        np.testing.assert_array_equal(gj, pj)
