import numpy as np
import pytest

from repro.contact.contact_set import VE, VV1, VV2
from repro.contact.narrow_phase import narrow_phase
from repro.core.blocks import Block, BlockSystem
from repro.geometry.distance import edge_penetration

SQ = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])


def system_of(polys):
    return BlockSystem([Block(p) for p in polys])


def detect(system, threshold=0.05):
    n = system.n_blocks
    pairs = np.array(
        [(i, j) for i in range(n) for j in range(i + 1, n)], dtype=np.int64
    ).reshape(-1, 2)
    return narrow_phase(system, pairs[:, 0], pairs[:, 1], threshold)


class TestVertexEdge:
    def test_vertex_on_edge_interior(self):
        # small block sitting on a wide block: corners land on edge interior
        base = np.array([[0, 0], [4, 0], [4, 1], [0, 1.0]])
        top = SQ * 0.5 + np.array([1.5, 1.0 + 0.01])
        s = system_of([base, top])
        cs = detect(s, threshold=0.05)
        assert cs.m >= 2
        # the top block's two bottom corners are VE against the base edge
        ve = cs.select(np.flatnonzero(cs.kind == VE))
        assert ve.m >= 2
        assert (ve.block_i == 1).all()
        assert (ve.block_j == 0).all()

    def test_edges_outside_positive(self):
        base = np.array([[0, 0], [4, 0], [4, 1], [0, 1.0]])
        top = SQ * 0.5 + np.array([1.5, 1.02])
        s = system_of([base, top])
        cs = detect(s)
        p1, e1, e2, _, _ = cs.geometry(s)
        d = edge_penetration(p1, e1, e2)
        # gap contacts: outside-positive convention
        assert (d > 0).all()

    def test_penetrating_vertex_detected_with_negative_distance(self):
        base = np.array([[0, 0], [4, 0], [4, 1], [0, 1.0]])
        top = SQ * 0.5 + np.array([1.5, 0.98])  # 0.02 penetration
        s = system_of([base, top])
        cs = detect(s)
        p1, e1, e2, _, _ = cs.geometry(s)
        d = edge_penetration(p1, e1, e2)
        assert (d < 0).any()

    def test_far_blocks_no_contact(self):
        s = system_of([SQ, SQ + np.array([5.0, 0.0])])
        cs = detect(s)
        assert cs.m == 0

    def test_ratio_matches_position(self):
        base = np.array([[0, 0], [4, 0], [4, 1], [0, 1.0]])
        top = SQ * 0.5 + np.array([1.5, 1.01])
        s = system_of([base, top])
        cs = detect(s)
        # contact point at x = 1.5 or 2.0 on the reversed top edge of the
        # base, which runs (0,1) -> (4,1) reversed = (4,1)...(0,1)?
        # verify via geometry: E1 + r*(E2-E1) is the vertex's projection
        p1, e1, e2, _, _ = cs.geometry(s)
        proj = e1 + cs.ratio[:, None] * (e2 - e1)
        np.testing.assert_allclose(proj[:, 0], p1[:, 0], atol=1e-9)


class TestVertexVertex:
    def test_corner_to_corner_parallel_edges_vv1(self):
        # axis-aligned squares touching corner-to-corner: the facing edges
        # are antiparallel, so per the paper's definition ("contacts with
        # parallel edges are classified as VV1") this is VV1
        a = SQ
        b = SQ + np.array([1.02, 1.02])
        s = system_of([a, b])
        cs = detect(s, threshold=0.1)
        assert cs.m >= 1
        assert (cs.kind == VV1).all()

    def _vv2_system(self):
        # 45-degree square whose bottom apex points at A's (1, 1) corner:
        # corners face each other and no edges are parallel -> true VV2
        th = np.radians(45.0)
        rot = np.array([[np.cos(th), -np.sin(th)], [np.sin(th), np.cos(th)]])
        b = (SQ - 0.5) @ rot.T + np.array([1.05, 1.05 + np.sqrt(0.5)])
        return system_of([SQ, b])

    def test_rotated_corner_is_vv2(self):
        cs = detect(self._vv2_system(), threshold=0.2)
        assert cs.m >= 1
        assert (cs.kind == VV2).any()

    def test_vv2_deduplicated(self):
        cs = detect(self._vv2_system(), threshold=0.2)
        vv2 = cs.select(np.flatnonzero(cs.kind == VV2))
        # only one orientation survives (block_i < block_j)
        assert vv2.m >= 1
        assert (vv2.block_i < vv2.block_j).all()

    def test_aligned_corners_vv1(self):
        # two identical squares side by side: facing edges are antiparallel,
        # corner pairs classify as VV1
        s = system_of([SQ, SQ + np.array([1.02, 0.0])])
        cs = detect(s, threshold=0.1)
        assert cs.m >= 2
        assert (np.isin(cs.kind, (VE, VV1))).all()
        assert (cs.kind == VV1).any()

    def test_rotated_corner_vv2(self):
        # rotate the second square 30 degrees: no antiparallel edges
        th = np.radians(30.0)
        rot = np.array([[np.cos(th), -np.sin(th)], [np.sin(th), np.cos(th)]])
        b = (SQ - 0.5) @ rot.T + np.array([1.55, 0.5])
        s = system_of([SQ, b])
        cs = detect(s, threshold=0.15)
        if cs.m:
            assert (cs.kind != VV1).all()


class TestFrameworkLayout:
    def test_grouped_by_kind(self):
        base = np.array([[0, 0], [6, 0], [6, 1], [0, 1.0]])
        top1 = SQ * 0.5 + np.array([1.0, 1.01])
        top2 = SQ + np.array([4.0, 1.02])
        s = system_of([base, top1, top2])
        cs = detect(s, threshold=0.06)
        assert cs.m >= 2
        # kinds are non-decreasing (successive array segments)
        assert (np.diff(cs.kind) >= 0).all()

    def test_records_kernels_on_device(self, device):
        base = np.array([[0, 0], [4, 0], [4, 1], [0, 1.0]])
        top = SQ * 0.5 + np.array([1.5, 1.01])
        s = system_of([base, top])
        pairs = np.array([[0, 1]], dtype=np.int64)
        narrow_phase(s, pairs[:, 0], pairs[:, 1], 0.05, device)
        names = set(device.time_by_kernel())
        assert any("distance_judgment" in n for n in names)

    def test_empty_pairs(self):
        s = system_of([SQ])
        cs = narrow_phase(
            s, np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), 0.05
        )
        assert cs.m == 0

    def test_no_self_contacts(self):
        s = system_of([SQ, SQ + np.array([1.01, 0.0])])
        cs = detect(s, threshold=0.1)
        assert (cs.block_i != cs.block_j).all()
