import numpy as np
import pytest

from repro.assembly.contact_springs import LOCK, OPEN, SLIDE
from repro.contact.contact_set import VE, ContactSet
from repro.contact.transfer import transfer_contacts


def make_set(vertex_idx, e1_idx, e2_idx, block_i=None, block_j=None):
    m = len(vertex_idx)
    return ContactSet(
        block_i=np.asarray(block_i if block_i is not None else [0] * m, dtype=np.int64),
        block_j=np.asarray(block_j if block_j is not None else [1] * m, dtype=np.int64),
        vertex_idx=np.asarray(vertex_idx, dtype=np.int64),
        e1_idx=np.asarray(e1_idx, dtype=np.int64),
        e2_idx=np.asarray(e2_idx, dtype=np.int64),
        kind=np.full(m, VE, dtype=np.int64),
    )


class TestTransferContacts:
    def test_matched_contact_inherits_state(self):
        prev = make_set([0], [4], [5])
        prev.state[:] = LOCK
        prev.shear_disp[:] = 0.3
        prev.normal_disp[:] = -0.1
        prev.shear_sign[:] = -1.0
        cur = make_set([0], [4], [5])
        out = transfer_contacts(prev, cur, n_vertices=10)
        assert out.state[0] == LOCK
        assert out.prev_state[0] == LOCK
        assert out.shear_disp[0] == 0.3
        assert out.normal_disp[0] == -0.1
        assert out.shear_sign[0] == -1.0

    def test_unmatched_current_stays_open(self):
        prev = make_set([0], [4], [5])
        prev.state[:] = LOCK
        cur = make_set([1], [4], [5])
        out = transfer_contacts(prev, cur, n_vertices=10)
        assert out.state[0] == OPEN
        assert out.prev_state[0] == OPEN

    def test_unmatched_previous_dropped(self):
        prev = make_set([0, 1], [4, 6], [5, 7])
        prev.state[:] = [LOCK, SLIDE]
        cur = make_set([1], [6], [7])
        out = transfer_contacts(prev, cur, n_vertices=10)
        assert out.m == 1
        assert out.state[0] == SLIDE

    def test_mixed_batch(self, device):
        prev = make_set([0, 1, 2], [4, 5, 6], [5, 6, 7])
        prev.state[:] = [LOCK, SLIDE, LOCK]
        cur = make_set([2, 3, 0], [6, 9, 4], [7, 8, 5])
        out = transfer_contacts(prev, cur, n_vertices=16, device=device)
        assert out.state[0] == LOCK  # matched (2, 6, 7)
        assert out.state[1] == OPEN  # new
        assert out.state[2] == LOCK  # matched (0, 4, 5)
        assert device.launches() >= 1

    def test_row_order_preserved(self):
        prev = make_set([5], [6], [7])
        cur = make_set([9, 5, 1], [2, 6, 3], [3, 7, 4])
        out = transfer_contacts(prev, cur, n_vertices=16)
        np.testing.assert_array_equal(out.vertex_idx, cur.vertex_idx)

    def test_empty_previous(self):
        cur = make_set([0], [4], [5])
        cur.state[:] = SLIDE
        out = transfer_contacts(ContactSet.empty(), cur, n_vertices=10)
        assert out.m == 1
        assert out.prev_state[0] == SLIDE

    def test_empty_current(self):
        prev = make_set([0], [4], [5])
        out = transfer_contacts(prev, ContactSet.empty(), n_vertices=10)
        assert out.m == 0

    def test_same_edge_different_vertex_not_matched(self):
        prev = make_set([0], [4], [5])
        prev.state[:] = LOCK
        cur = make_set([3], [4], [5])
        out = transfer_contacts(prev, cur, n_vertices=10)
        assert out.state[0] == OPEN
