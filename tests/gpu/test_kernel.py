import pytest

from repro.gpu.counters import KernelCounters
from repro.gpu.device import K40
from repro.gpu.kernel import VirtualDevice


class TestVirtualDevice:
    def test_launch_records_and_returns_time(self):
        dev = VirtualDevice(K40)
        t = dev.launch("k", KernelCounters(flops=1e9))
        assert t > 0
        assert dev.launches() == 1
        assert dev.total_time == pytest.approx(t)

    def test_region_attribution(self):
        dev = VirtualDevice(K40)
        with dev.region("equation_solving"):
            dev.launch("spmv", KernelCounters(flops=1.0))
        dev.launch("misc", KernelCounters(flops=1.0))
        by_mod = dev.time_by_module()
        assert "equation_solving" in by_mod
        assert "other" in by_mod

    def test_explicit_module_overrides_region(self):
        dev = VirtualDevice(K40)
        with dev.region("a"):
            dev.launch("k", KernelCounters(), module="b")
        assert "b" in dev.time_by_module()

    def test_nested_regions(self):
        dev = VirtualDevice(K40)
        with dev.region("outer"):
            with dev.region("inner"):
                dev.launch("k", KernelCounters())
        assert list(dev.time_by_module()) == ["inner"]

    def test_total_counters_sum(self):
        dev = VirtualDevice(K40)
        dev.launch("a", KernelCounters(flops=2.0))
        dev.launch("b", KernelCounters(flops=3.0, atomic_ops=1.0))
        total = dev.total_counters
        assert total.flops == 5.0
        assert total.atomic_ops == 1.0

    def test_time_by_kernel_groups(self):
        dev = VirtualDevice(K40)
        dev.launch("k", KernelCounters(flops=1.0))
        dev.launch("k", KernelCounters(flops=1.0))
        assert len(dev.time_by_kernel()) == 1

    def test_counters_by_module(self):
        dev = VirtualDevice(K40)
        with dev.region("m"):
            dev.launch("k", KernelCounters(flops=4.0))
        assert dev.counters_by_module()["m"].flops == 4.0

    def test_reset(self):
        dev = VirtualDevice(K40)
        dev.launch("k", KernelCounters())
        dev.reset()
        assert dev.launches() == 0
        assert dev.total_time == 0.0
