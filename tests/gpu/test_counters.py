import pytest

from repro.gpu.counters import KernelCounters


class TestKernelCounters:
    def test_add(self):
        a = KernelCounters(flops=1.0, warps=2.0)
        b = KernelCounters(flops=3.0, global_bytes_read=8.0)
        c = a + b
        assert c.flops == 4.0
        assert c.warps == 2.0
        assert c.global_bytes_read == 8.0
        # originals untouched
        assert a.flops == 1.0

    def test_iadd(self):
        a = KernelCounters(flops=1.0)
        a += KernelCounters(flops=2.0, atomic_ops=5.0)
        assert a.flops == 3.0
        assert a.atomic_ops == 5.0

    def test_scaled(self):
        a = KernelCounters(flops=2.0, texture_bytes=4.0)
        b = a.scaled(10)
        assert b.flops == 20.0
        assert b.texture_bytes == 40.0
        assert a.flops == 2.0

    def test_divergence_rate_zero_when_no_branches(self):
        assert KernelCounters().divergence_rate == 0.0

    def test_divergence_rate(self):
        c = KernelCounters(branch_regions=10, divergent_branch_regions=3)
        assert c.divergence_rate == pytest.approx(0.3)

    def test_coalescing_efficiency_perfect(self):
        c = KernelCounters(global_bytes_read=1280, global_txn_read=10)
        assert c.coalescing_efficiency() == pytest.approx(1.0)

    def test_coalescing_efficiency_poor(self):
        # 32 lanes each in their own transaction, 8 useful bytes each
        c = KernelCounters(global_bytes_read=256, global_txn_read=32)
        assert c.coalescing_efficiency() == pytest.approx(256 / (32 * 128))

    def test_coalescing_efficiency_no_traffic(self):
        assert KernelCounters().coalescing_efficiency() == 1.0
