import pytest

from repro.gpu.counters import KernelCounters
from repro.gpu.device import E5620, K20, K40, DeviceProfile


class TestProfiles:
    def test_k40_matches_paper_intro_numbers(self):
        assert K40.peak_flops_dp == pytest.approx(1.43e12)
        assert K40.mem_bandwidth == pytest.approx(288e9)

    def test_k40_faster_than_k20(self):
        c = KernelCounters(
            flops=1e9, global_bytes_read=1e9, global_txn_read=1e9 / 128
        )
        assert K40.kernel_time(c) < K20.kernel_time(c)

    def test_cpu_has_no_launch_overhead(self):
        assert E5620.kernel_time(KernelCounters()) == 0.0
        assert K40.kernel_time(KernelCounters()) == K40.launch_overhead

    def test_invalid_kind(self):
        with pytest.raises(ValueError, match="kind"):
            DeviceProfile(
                name="x", kind="tpu", peak_flops_dp=1, mem_bandwidth=1,
                shared_throughput=1, texture_bandwidth=1, transaction_bytes=128,
                launch_overhead=0, warp_size=32, num_sms=1,
            )

    def test_invalid_efficiency(self):
        with pytest.raises(ValueError, match="efficiency"):
            DeviceProfile(
                name="x", kind="gpu", peak_flops_dp=1, mem_bandwidth=1,
                shared_throughput=1, texture_bandwidth=1, transaction_bytes=128,
                launch_overhead=0, warp_size=32, num_sms=1, efficiency=1.5,
            )


class TestTimingModel:
    def test_memory_bound_kernel_scales_with_bytes(self):
        small = KernelCounters(global_txn_read=1e6)
        large = KernelCounters(global_txn_read=2e6)
        dt_small = K40.kernel_time(small) - K40.launch_overhead
        dt_large = K40.kernel_time(large) - K40.launch_overhead
        assert dt_large == pytest.approx(2 * dt_small)

    def test_divergence_waste_charged_as_compute(self):
        base = KernelCounters(flops=1e10)
        wasted = KernelCounters(flops=1e10, wasted_lane_flops=1e10)
        assert K40.kernel_time(wasted) > K40.kernel_time(base)

    def test_uncoalesced_charged_by_transactions(self):
        # same useful bytes, different transaction counts
        good = KernelCounters(global_bytes_read=1e8, global_txn_read=1e8 / 128)
        bad = KernelCounters(global_bytes_read=1e8, global_txn_read=1e8 / 8)
        assert K40.kernel_time(bad) > K40.kernel_time(good)

    def test_gpu_beats_cpu_on_large_parallel_work(self):
        c = KernelCounters(
            flops=1e10, global_bytes_read=1e9, global_txn_read=1e9 / 128
        )
        assert K40.kernel_time(c) < E5620.kernel_time(c)

    def test_cpu_beats_gpu_on_tiny_kernels(self):
        # launch overhead dominates tiny work — the reason the paper keeps
        # the whole pipeline on the device instead of bouncing tiny kernels
        c = KernelCounters(flops=100.0, global_bytes_read=800.0)
        assert E5620.kernel_time(c) < K40.kernel_time(c)

    def test_pipeline_time_sums(self):
        c = KernelCounters(flops=1e9)
        assert K40.pipeline_time([c, c]) == pytest.approx(2 * K40.kernel_time(c))

    def test_atomics_add_time(self):
        base = KernelCounters(flops=1e6)
        with_atomics = KernelCounters(flops=1e6, atomic_ops=1e6)
        assert K40.kernel_time(with_atomics) > K40.kernel_time(base)
