import numpy as np
import pytest

from repro.gpu.warp import (
    WARP_SIZE,
    divergence_stats,
    multiway_divergence_stats,
    pad_to_warps,
)


class TestPadToWarps:
    def test_exact_multiple(self):
        out = pad_to_warps(np.ones(64, dtype=bool))
        assert out.shape == (2, WARP_SIZE)

    def test_padding_replicates_last(self):
        mask = np.zeros(33, dtype=bool)
        mask[-1] = True
        out = pad_to_warps(mask)
        assert out.shape == (2, WARP_SIZE)
        assert out[1].all()  # pad lanes copy the last (True) predicate

    def test_empty(self):
        assert pad_to_warps(np.zeros(0, dtype=bool)).shape == (0, WARP_SIZE)


class TestDivergenceStats:
    def test_uniform_true_no_divergence(self):
        s = divergence_stats(np.ones(128, dtype=bool))
        assert s.warps == 4
        assert s.divergent_warps == 0
        assert s.wasted_lanes == 0
        assert s.divergence_rate == 0.0

    def test_uniform_false_no_divergence(self):
        s = divergence_stats(np.zeros(64, dtype=bool))
        assert s.divergent_warps == 0

    def test_alternating_fully_divergent(self):
        mask = np.arange(128) % 2 == 0
        s = divergence_stats(mask)
        assert s.divergent_warps == 4
        assert s.wasted_lanes == 4 * WARP_SIZE
        assert s.divergence_rate == 1.0

    def test_sorted_data_minimises_divergence(self):
        # The paper's data-classification argument: grouping equal-predicate
        # data adjacently leaves at most one divergent boundary warp.
        rng = np.random.default_rng(0)
        mask = rng.random(32 * 64) < 0.5
        scattered = divergence_stats(mask)
        grouped = divergence_stats(np.sort(mask))
        assert grouped.divergent_warps <= 1
        assert grouped.divergent_warps < scattered.divergent_warps

    def test_taken_fraction(self):
        mask = np.zeros(64, dtype=bool)
        mask[:16] = True
        assert divergence_stats(mask).taken_fraction == pytest.approx(0.25)

    def test_empty(self):
        s = divergence_stats(np.zeros(0, dtype=bool))
        assert s.warps == 0 and s.divergence_rate == 0.0

    def test_bad_warp_size(self):
        with pytest.raises(ValueError):
            divergence_stats(np.ones(4, dtype=bool), warp_size=0)


class TestMultiwayDivergence:
    def test_uniform_labels(self):
        s = multiway_divergence_stats(np.zeros(64, dtype=np.int64), 5)
        assert s.divergent_warps == 0
        assert s.wasted_lanes == 0

    def test_all_distinct_paths_in_warp(self):
        labels = np.arange(32) % 4
        s = multiway_divergence_stats(labels, 4)
        assert s.warps == 1
        assert s.divergent_warps == 1
        assert s.wasted_lanes == 3 * WARP_SIZE

    def test_grouped_labels_waste_less(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 5, size=32 * 40)
        scattered = multiway_divergence_stats(labels, 5)
        grouped = multiway_divergence_stats(np.sort(labels), 5)
        assert grouped.wasted_lanes < scattered.wasted_lanes

    def test_invalid_n_paths(self):
        with pytest.raises(ValueError):
            multiway_divergence_stats(np.zeros(4, dtype=np.int64), 0)
