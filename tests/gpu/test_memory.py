import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.memory import (
    SHARED_BANKS,
    TRANSACTION_BYTES,
    coalesced_transactions,
    gather_transactions,
    shared_bank_conflicts,
    shared_bank_conflicts_fast,
    strided_transactions,
)


class TestCoalesced:
    def test_exact_fit(self):
        assert coalesced_transactions(16, 8) == 1  # 128 bytes

    def test_round_up(self):
        assert coalesced_transactions(17, 8) == 2

    def test_zero(self):
        assert coalesced_transactions(0, 8) == 0

    def test_bad_elem_bytes(self):
        with pytest.raises(Exception):
            coalesced_transactions(4, 0)


class TestStrided:
    def test_stride_one_matches_coalesced(self):
        assert strided_transactions(128, 8, 1) == coalesced_transactions(128, 8)

    def test_large_stride_one_txn_per_element(self):
        assert strided_transactions(100, 8, 16) == 100

    def test_intermediate_stride(self):
        # stride 2 of 8-byte elements: 8 useful elements per 128B txn
        assert strided_transactions(64, 8, 2) == 8


class TestGather:
    def test_contiguous_is_coalesced(self):
        idx = np.arange(128)
        assert gather_transactions(idx, 8) == coalesced_transactions(128, 8)

    def test_random_worse_than_contiguous(self):
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 1_000_000, size=1024)
        assert gather_transactions(idx, 8) > gather_transactions(np.arange(1024), 8)

    def test_broadcast_single_txn_per_warp(self):
        idx = np.zeros(64, dtype=np.int64)
        assert gather_transactions(idx, 8) == 2  # one per warp

    def test_empty(self):
        assert gather_transactions(np.zeros(0, dtype=np.int64), 8) == 0

    def test_worst_case_one_per_lane(self):
        # every lane in its own 128-byte segment
        idx = np.arange(32) * (TRANSACTION_BYTES // 8)
        assert gather_transactions(idx, 8) == 32


class TestBankConflicts:
    def test_sequential_no_conflict(self):
        idx = np.arange(32)
        assert shared_bank_conflicts(idx) == 0

    def test_same_word_broadcast_no_conflict(self):
        idx = np.zeros(32, dtype=np.int64)
        assert shared_bank_conflicts(idx) == 0

    def test_stride_bank_conflict(self):
        # stride 32 words: all lanes hit bank 0 at distinct words -> 31 extra
        idx = np.arange(32) * SHARED_BANKS
        assert shared_bank_conflicts(idx) == 31

    def test_two_way_conflict(self):
        # stride 2: pairs of lanes share each even bank -> 1 extra cycle
        idx = np.arange(32) * 2
        assert shared_bank_conflicts(idx) == 1

    def test_sixteen_way_conflict(self):
        # stride 16: only banks 0 and 16 are hit, 16 distinct words each
        idx = np.arange(32) * 16
        assert shared_bank_conflicts(idx) == 15

    def test_empty(self):
        assert shared_bank_conflicts(np.zeros(0, dtype=np.int64)) == 0

    @given(
        st.lists(st.integers(min_value=0, max_value=512), min_size=1, max_size=96)
    )
    @settings(max_examples=50, deadline=None)
    def test_fast_matches_reference(self, indices):
        idx = np.asarray(indices, dtype=np.int64)
        assert shared_bank_conflicts_fast(idx) == shared_bank_conflicts(idx)
