import numpy as np
import pytest

from repro.gpu.counters import KernelCounters
from repro.gpu.device import K40
from repro.gpu.kernel import VirtualDevice
from repro.gpu.multi import PartitionStats, partition_blocks, predict_multi_gpu_time
from repro.meshing.slope_models import build_brick_wall


@pytest.fixture
def system():
    return build_brick_wall(4, 8)


class TestPartitionBlocks:
    def test_labels_cover_all_blocks(self, system):
        labels, stats = partition_blocks(system, 4)
        assert labels.size == system.n_blocks
        assert set(np.unique(labels)) <= set(range(4))
        assert stats.counts.sum() == system.n_blocks

    def test_balanced_counts(self, system):
        _, stats = partition_blocks(system, 3)
        assert stats.counts.max() - stats.counts.min() <= 1
        assert stats.imbalance < 1.1

    def test_single_device(self, system):
        labels, stats = partition_blocks(system, 1)
        assert (labels == 0).all()
        assert stats.cut_fraction == 0.0

    def test_stripes_are_spatial(self, system):
        labels, _ = partition_blocks(system, 2)
        x = system.centroids[:, 0]
        assert x[labels == 0].max() <= x[labels == 1].min() + 1e-9

    def test_cut_fraction_bounded(self, system):
        _, stats = partition_blocks(system, 4, margin=0.1)
        assert 0.0 <= stats.cut_fraction <= 1.0

    def test_more_devices_more_cut(self, system):
        _, s2 = partition_blocks(system, 2, margin=0.1)
        _, s8 = partition_blocks(system, 8, margin=0.1)
        assert s8.cut_fraction >= s2.cut_fraction

    def test_invalid_count(self, system):
        with pytest.raises(ValueError):
            partition_blocks(system, 0)


class TestPredictMultiGpuTime:
    def _ledger(self, solve=1.0, other=1.0):
        dev = VirtualDevice(K40)
        # synthesize one memory-bound kernel per module, scaled to land at
        # the requested modelled seconds
        bw = K40.mem_bandwidth * K40.efficiency
        dev.launch("k", KernelCounters(global_bytes_read=solve * bw),
                   module="equation_solving")
        dev.launch("k", KernelCounters(global_bytes_read=other * bw),
                   module="contact_detection")
        return dev

    def _stats(self, cut=0.1, imbalance=1.05):
        return PartitionStats(np.array([10, 10]), cut, imbalance)

    def test_single_device_identity(self):
        out = predict_multi_gpu_time(
            self._ledger(), self._stats(), 1, cg_iterations=100, halo_dof=60
        )
        assert out["speedup"] == 1.0

    def test_two_devices_faster(self):
        out = predict_multi_gpu_time(
            self._ledger(), self._stats(), 2, cg_iterations=100, halo_dof=60
        )
        assert 1.0 < out["speedup"] <= 2.0

    def test_comm_grows_with_iterations(self):
        a = predict_multi_gpu_time(
            self._ledger(), self._stats(), 2, cg_iterations=10, halo_dof=60
        )
        b = predict_multi_gpu_time(
            self._ledger(), self._stats(), 2, cg_iterations=1000, halo_dof=60
        )
        assert b["comm"] > a["comm"]

    def test_ghost_and_imbalance_hurt(self):
        clean = predict_multi_gpu_time(
            self._ledger(), self._stats(cut=0.0, imbalance=1.0), 4,
            cg_iterations=100, halo_dof=60,
        )
        messy = predict_multi_gpu_time(
            self._ledger(), self._stats(cut=0.4, imbalance=1.5), 4,
            cg_iterations=100, halo_dof=60,
        )
        assert messy["multi"] > clean["multi"]

    def test_latency_floor_limits_tiny_problems(self):
        # a tiny run with many iterations is communication-dominated
        out = predict_multi_gpu_time(
            self._ledger(solve=1e-5, other=1e-5), self._stats(), 8,
            cg_iterations=10_000, halo_dof=600,
        )
        assert out["speedup"] < 1.0  # slower than one device

    def test_invalid_devices(self):
        with pytest.raises(ValueError):
            predict_multi_gpu_time(
                self._ledger(), self._stats(), 0, cg_iterations=1, halo_dof=6
            )
