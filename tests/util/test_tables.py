import pytest

from repro.util.tables import Table


class TestTable:
    def test_render_contains_cells(self):
        t = Table("Demo", ["name", "value"])
        t.add_row(["alpha", 1.5])
        t.add_row(["beta", 2])
        text = t.render()
        assert "Demo" in text
        assert "alpha" in text
        assert "1.5" in text

    def test_row_width_mismatch(self):
        t = Table("Demo", ["a", "b"])
        with pytest.raises(ValueError, match="cells"):
            t.add_row([1])

    def test_empty_header_rejected(self):
        with pytest.raises(ValueError):
            Table("Demo", [])

    def test_float_formatting_large(self):
        t = Table("Demo", ["v"], precision=3)
        t.add_row([1.23456789e12])
        assert "e+" in t.render()

    def test_zero_formats_plain(self):
        t = Table("Demo", ["v"])
        t.add_row([0.0])
        assert "| 0" in t.render()

    def test_markdown(self):
        t = Table("Demo", ["a", "b"])
        t.add_row([1, 2])
        md = t.to_markdown()
        assert md.startswith("### Demo")
        assert "| a | b |" in md
        assert "| 1 | 2 |" in md

    def test_str_is_render(self):
        t = Table("Demo", ["a"])
        t.add_row([1])
        assert str(t) == t.render()

    def test_alignment_consistent(self):
        t = Table("Demo", ["long-column-name", "b"])
        t.add_row(["x", "yyyyyyyyyyyy"])
        lines = t.render().splitlines()
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1
