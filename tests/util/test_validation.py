import numpy as np
import pytest

from repro.util.validation import (
    ReproError,
    ShapeError,
    check_array,
    check_in_range,
    check_positive,
)


class TestCheckArray:
    def test_passthrough(self):
        a = np.arange(5)
        out = check_array("a", a)
        assert out is a

    def test_list_coerced(self):
        out = check_array("a", [1, 2, 3])
        assert isinstance(out, np.ndarray)

    def test_ndim_mismatch(self):
        with pytest.raises(ShapeError, match="expected 2 dimensions"):
            check_array("a", np.arange(4), ndim=2)

    def test_shape_wildcards(self):
        out = check_array("a", np.zeros((3, 6)), shape=(None, 6))
        assert out.shape == (3, 6)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError, match="axis 1"):
            check_array("a", np.zeros((3, 5)), shape=(None, 6))

    def test_shape_rank_mismatch(self):
        with pytest.raises(ShapeError):
            check_array("a", np.zeros(3), shape=(3, 1))

    def test_dtype_cast(self):
        out = check_array("a", np.arange(3, dtype=np.int32), dtype=np.float64)
        assert out.dtype == np.float64

    def test_unsafe_cast_rejected(self):
        with pytest.raises(ShapeError, match="castable"):
            check_array("a", np.array([1.5]), dtype=np.int64)

    def test_finite_rejects_nan(self):
        with pytest.raises(ShapeError, match="non-finite"):
            check_array("a", np.array([1.0, np.nan]), finite=True)

    def test_empty_rejected(self):
        with pytest.raises(ShapeError, match="empty"):
            check_array("a", np.zeros(0), allow_empty=False)

    def test_shape_error_is_repro_and_value_error(self):
        assert issubclass(ShapeError, ReproError)
        assert issubclass(ShapeError, ValueError)


class TestScalars:
    def test_positive_ok(self):
        assert check_positive("x", 2) == 2.0

    def test_positive_rejects_zero(self):
        with pytest.raises(ShapeError):
            check_positive("x", 0.0)

    def test_nonneg_allows_zero(self):
        assert check_positive("x", 0.0, strict=False) == 0.0

    def test_positive_rejects_inf(self):
        with pytest.raises(ShapeError):
            check_positive("x", float("inf"))

    def test_in_range_inclusive(self):
        assert check_in_range("x", 1.0, 1.0, 2.0) == 1.0

    def test_in_range_exclusive_rejects_boundary(self):
        with pytest.raises(ShapeError):
            check_in_range("x", 1.0, 1.0, 2.0, inclusive=False)
