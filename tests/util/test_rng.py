import numpy as np
import pytest

from repro.util.rng import make_rng, spawn


class TestMakeRng:
    def test_deterministic(self):
        a = make_rng(7).random(4)
        b = make_rng(7).random(4)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert make_rng(g) is g

    def test_different_seeds_differ(self):
        assert not np.array_equal(make_rng(1).random(8), make_rng(2).random(8))


class TestSpawn:
    def test_children_independent_and_deterministic(self):
        kids1 = spawn(make_rng(3), 2)
        kids2 = spawn(make_rng(3), 2)
        np.testing.assert_array_equal(kids1[0].random(4), kids2[0].random(4))
        assert not np.array_equal(kids1[0].random(4), kids1[1].random(4))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(make_rng(0), -1)
