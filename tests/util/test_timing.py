import time

import pytest

from repro.util.timing import PIPELINE_MODULES, ModuleTimes, WallTimer


class TestWallTimer:
    def test_accumulates(self):
        t = WallTimer()
        with t:
            time.sleep(0.01)
        first = t.seconds
        assert first >= 0.009
        with t:
            time.sleep(0.01)
        assert t.seconds > first


class TestModuleTimes:
    def test_known_modules_prepopulated(self):
        mt = ModuleTimes()
        assert set(mt.times) == set(PIPELINE_MODULES)

    def test_add_unknown_module_rejected(self):
        mt = ModuleTimes()
        with pytest.raises(KeyError):
            mt.add("nonsense", 1.0)

    def test_total(self):
        mt = ModuleTimes()
        mt.add("equation_solving", 2.0)
        mt.add("contact_detection", 1.0)
        assert mt.total == pytest.approx(3.0)

    def test_measure_context(self):
        mt = ModuleTimes()
        with mt.measure("data_updating"):
            time.sleep(0.005)
        assert mt.times["data_updating"] >= 0.004

    def test_speedup_over(self):
        fast, slow = ModuleTimes(), ModuleTimes()
        fast.add("equation_solving", 1.0)
        slow.add("equation_solving", 50.0)
        sp = fast.speedup_over(slow)
        assert sp["equation_solving"] == pytest.approx(50.0)
        assert sp["contact_detection"] == 1.0  # both zero

    def test_speedup_infinite_when_self_zero(self):
        fast, slow = ModuleTimes(), ModuleTimes()
        slow.add("data_updating", 5.0)
        assert fast.speedup_over(slow)["data_updating"] == float("inf")

    def test_as_rows_order_and_total(self):
        mt = ModuleTimes()
        rows = mt.as_rows()
        assert [r[0] for r in rows[:-1]] == list(PIPELINE_MODULES)
        assert rows[-1][0] == "total"
