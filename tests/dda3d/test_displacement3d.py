import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dda3d.displacement3d import (
    DOF3,
    affine_decomposition,
    displacement_matrix_3d,
    rodrigues,
    update_geometry_3d,
)
from repro.dda3d.geometry3d import make_box


class TestDisplacementMatrix:
    def test_shape(self):
        p = np.zeros((5, 3))
        t = displacement_matrix_3d(p, p)
        assert t.shape == (5, 3, DOF3)

    def test_translation_identity(self):
        p = np.array([[1.0, 2.0, 3.0]])
        t = displacement_matrix_3d(p, p)
        np.testing.assert_allclose(t[0, :, :3], np.eye(3))

    def test_rotation_antisymmetric(self):
        # the rotation columns at offset r produce u = r x X... i.e.
        # displacement = omega cross position: check against np.cross
        c = np.zeros((1, 3))
        p = np.array([[0.3, -0.7, 1.1]])
        t = displacement_matrix_3d(p, c)
        omega = np.array([0.2, -0.5, 0.9])
        d = np.zeros(DOF3)
        d[3:6] = omega
        u = t[0] @ d
        np.testing.assert_allclose(u, np.cross(omega, p[0]), atol=1e-12)

    def test_normal_strain_columns(self):
        c = np.zeros((1, 3))
        p = np.array([[2.0, 3.0, 4.0]])
        t = displacement_matrix_3d(p, c)
        d = np.zeros(DOF3)
        d[6] = 0.1  # ex
        u = t[0] @ d
        np.testing.assert_allclose(u, [0.2, 0.0, 0.0])

    def test_shear_symmetric(self):
        c = np.zeros((1, 3))
        p = np.array([[1.0, 1.0, 1.0]])
        t = displacement_matrix_3d(p, c)
        d = np.zeros(DOF3)
        d[11] = 0.2  # gxy
        u = t[0] @ d
        np.testing.assert_allclose(u, [0.1, 0.1, 0.0])

    def test_affine_decomposition_consistent(self):
        # A + B r must reproduce T's columns at random points
        a, b = affine_decomposition()
        rng = np.random.default_rng(3)
        p = rng.normal(size=(4, 3))
        c = rng.normal(size=(4, 3))
        t = displacement_matrix_3d(p, c)
        r = p - c
        for k in range(4):
            recon = a + np.einsum("irj,j->ir", b, r[k])
            np.testing.assert_allclose(t[k].T, recon, atol=1e-12)


class TestRodrigues:
    def test_identity_at_zero(self):
        np.testing.assert_allclose(rodrigues(np.zeros(3)), np.eye(3))

    def test_orthogonal(self):
        r = rodrigues(np.array([0.3, -0.8, 0.5]))
        np.testing.assert_allclose(r @ r.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(r) == pytest.approx(1.0)

    def test_quarter_turn_z(self):
        r = rodrigues(np.array([0.0, 0.0, np.pi / 2]))
        np.testing.assert_allclose(r @ [1, 0, 0], [0, 1, 0], atol=1e-12)

    @given(st.floats(-1.0, 1.0), st.floats(-1.0, 1.0), st.floats(-1.0, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_property_rotation_preserves_norm(self, a, b, c):
        r = rodrigues(np.array([a, b, c]))
        v = np.array([1.0, 2.0, 3.0])
        assert np.linalg.norm(r @ v) == pytest.approx(np.linalg.norm(v))


class TestUpdateGeometry3D:
    def test_translation(self):
        box = make_box()
        d = np.zeros(DOF3)
        d[:3] = [1.0, -2.0, 3.0]
        out = update_geometry_3d(box.vertices, box.centroid, d)
        np.testing.assert_allclose(out, box.vertices + [1.0, -2.0, 3.0])

    def test_finite_rotation_preserves_volume(self):
        from repro.dda3d.geometry3d import Polyhedron

        box = make_box((1, 2, 3))
        d = np.zeros(DOF3)
        d[3:6] = [0.4, -0.3, 0.6]
        out = Polyhedron(
            update_geometry_3d(box.vertices, box.centroid, d),
            [list(f) for f in box.faces],
        )
        assert out.volume == pytest.approx(6.0, rel=1e-12)

    def test_uniform_strain_scales_volume(self):
        from repro.dda3d.geometry3d import Polyhedron

        box = make_box()
        d = np.zeros(DOF3)
        d[6:9] = 0.1
        out = Polyhedron(
            update_geometry_3d(box.vertices, box.centroid, d),
            [list(f) for f in box.faces],
        )
        assert out.volume == pytest.approx(1.1**3, rel=1e-12)

    def test_first_order_agreement(self):
        rng = np.random.default_rng(1)
        box = make_box()
        d = rng.normal(0, 1e-7, DOF3)
        t = displacement_matrix_3d(
            box.vertices, np.broadcast_to(box.centroid, box.vertices.shape)
        )
        linear = box.vertices + np.einsum("vij,j->vi", t, d)
        exact = update_geometry_3d(box.vertices, box.centroid, d)
        np.testing.assert_allclose(linear, exact, atol=1e-12)
