import numpy as np
import pytest

from repro.dda3d.geometry3d import Polyhedron, make_box, make_tetrahedron
from repro.util.validation import ShapeError


class TestMakeBox:
    def test_volume(self):
        assert make_box((2, 3, 4)).volume == pytest.approx(24.0)

    def test_centroid(self):
        b = make_box((2, 2, 2), origin=(1, 1, 1))
        np.testing.assert_allclose(b.centroid, [2, 2, 2])

    def test_second_moments_analytic(self):
        # central M2 of a box: diag(V a^2/12, V b^2/12, V c^2/12)
        a, b, c = 2.0, 3.0, 4.0
        box = make_box((a, b, c), origin=(-5, 2, 7))
        m2 = box.second_moments()
        v = a * b * c
        np.testing.assert_allclose(
            m2, np.diag([v * a**2 / 12, v * b**2 / 12, v * c**2 / 12]),
            atol=1e-9,
        )

    def test_aabb(self):
        b = make_box((1, 2, 3), origin=(1, 1, 1))
        np.testing.assert_allclose(b.aabb, [1, 1, 1, 2, 3, 4])

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            make_box((0, 1, 1))

    def test_face_normals_outward(self):
        b = make_box()
        center = b.centroid
        for fid in range(len(b.faces)):
            n = b.face_normal(fid)
            anchor = b.face_polygon(fid).mean(axis=0)
            assert np.dot(anchor - center, n) > 0  # points away

    def test_translated(self):
        b = make_box().translated(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(b.centroid, [1.5, 2.5, 3.5])


class TestTetrahedron:
    def test_volume(self):
        assert make_tetrahedron().volume == pytest.approx(1.0 / 6.0)

    def test_scaled_volume(self):
        assert make_tetrahedron(2.0).volume == pytest.approx(8.0 / 6.0)

    def test_centroid(self):
        t = make_tetrahedron()
        np.testing.assert_allclose(t.centroid, [0.25, 0.25, 0.25])

    def test_moments_match_quadrature(self):
        t = make_tetrahedron()
        m2 = t.second_moments()
        # Monte-Carlo quadrature in the reference tetrahedron
        rng = np.random.default_rng(0)
        pts = rng.random((400_000, 3))
        inside = pts.sum(axis=1) <= 1.0
        p = pts[inside] - t.centroid
        v = 1.0 / 6.0
        quad = (p[:, :, None] * p[:, None, :]).mean(axis=0) * v
        np.testing.assert_allclose(m2, quad, rtol=0.03, atol=1e-4)


class TestValidation:
    def test_inverted_faces_rejected(self):
        b = make_box()
        flipped = [list(reversed(f)) for f in b.faces]
        with pytest.raises(ShapeError, match="orientation"):
            Polyhedron(b.vertices, flipped)

    def test_too_few_vertices(self):
        with pytest.raises(ShapeError):
            Polyhedron(np.zeros((3, 3)), [[0, 1, 2]] * 4)

    def test_bad_face_index(self):
        b = make_box()
        with pytest.raises(ShapeError, match="out of range"):
            Polyhedron(b.vertices, [[0, 1, 99]] + b.faces[1:])

    def test_second_moments_positive_definite(self):
        for poly in (make_box((1, 2, 3)), make_tetrahedron()):
            eigs = np.linalg.eigvalsh(poly.second_moments())
            assert (eigs > 0).all()
