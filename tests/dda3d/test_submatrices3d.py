import numpy as np
import pytest

from repro.dda3d.displacement3d import DOF3, displacement_matrix_3d
from repro.dda3d.geometry3d import make_box, make_tetrahedron
from repro.dda3d.submatrices3d import (
    body_force_vector_3d,
    elastic_matrix_3d,
    elastic_submatrix_3d,
    fixed_point_contribution_3d,
    inertia_contribution_3d,
    mass_integral_matrix_3d,
    point_load_vector_3d,
)


def quadrature_mass_matrix(poly, n=24):
    """Midpoint-rule quadrature of int T^T T dV (boxes only)."""
    lo = poly.vertices.min(axis=0)
    hi = poly.vertices.max(axis=0)
    axes = [
        lo[k] + (np.arange(n) + 0.5) * (hi[k] - lo[k]) / n for k in range(3)
    ]
    gx, gy, gz = np.meshgrid(*axes, indexing="ij")
    pts = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1)
    dv = np.prod((hi - lo) / n)
    c = poly.centroid
    t = displacement_matrix_3d(pts, np.broadcast_to(c, pts.shape))
    return np.einsum("mki,mkj->ij", t, t) * dv


class TestMassIntegralMatrix3D:
    def test_matches_quadrature_on_box(self):
        box = make_box((2, 1, 3), origin=(-1, 0, 1))
        exact = mass_integral_matrix_3d(box.volume, box.second_moments())
        quad = quadrature_mass_matrix(box, n=30)
        np.testing.assert_allclose(exact, quad, rtol=0.05, atol=0.05)

    def test_symmetric_positive_definite(self):
        for poly in (make_box((1, 2, 3)), make_tetrahedron()):
            m = mass_integral_matrix_3d(poly.volume, poly.second_moments())
            np.testing.assert_allclose(m, m.T, atol=1e-12)
            assert (np.linalg.eigvalsh(m) > 0).all()

    def test_translation_block(self):
        box = make_box((2, 2, 2))
        m = mass_integral_matrix_3d(box.volume, box.second_moments())
        np.testing.assert_allclose(m[:3, :3], 8.0 * np.eye(3), atol=1e-12)

    def test_rotation_block_is_inertia_tensor(self):
        # the (r, r) block is the classic rigid-body inertia tensor:
        # for a cube of side a: I = V a^2 / 6 on the diagonal
        a = 2.0
        box = make_box((a, a, a))
        m = mass_integral_matrix_3d(box.volume, box.second_moments())
        v = a**3
        np.testing.assert_allclose(
            m[3:6, 3:6], (v * a**2 / 6.0) * np.eye(3), atol=1e-9
        )


class TestElastic3D:
    def test_isotropic_matrix_spd(self):
        c = elastic_matrix_3d(1e9, 0.25)
        np.testing.assert_allclose(c, c.T)
        assert (np.linalg.eigvalsh(c) > 0).all()

    def test_zero_poisson_diagonal(self):
        c = elastic_matrix_3d(1.0, 0.0)
        np.testing.assert_allclose(c[:3, :3], np.eye(3))
        np.testing.assert_allclose(c[3:, 3:], 0.5 * np.eye(3))

    def test_submatrix_in_strain_rows_only(self):
        k = elastic_submatrix_3d(2.0, 1e9, 0.25)
        assert np.all(k[:6, :] == 0.0)
        assert np.all(k[:, :6] == 0.0)
        assert k[6, 6] > 0

    def test_invalid_poisson(self):
        with pytest.raises(ValueError):
            elastic_matrix_3d(1.0, 0.5)


class TestLoadsAndConstraints3D:
    def test_inertia_scaling(self):
        box = make_box()
        k1, _ = inertia_contribution_3d(
            box.volume, box.second_moments(), 1000.0, 0.01, np.zeros(DOF3)
        )
        k2, _ = inertia_contribution_3d(
            box.volume, box.second_moments(), 1000.0, 0.005, np.zeros(DOF3)
        )
        np.testing.assert_allclose(k2, 4.0 * k1)

    def test_inertia_velocity_load(self):
        box = make_box()
        v = np.zeros(DOF3)
        v[2] = 3.0
        _, f = inertia_contribution_3d(
            box.volume, box.second_moments(), 1000.0, 0.01, v
        )
        assert f[2] == pytest.approx(2 * 1000.0 * 1.0 * 3.0 / 0.01)

    def test_body_force(self):
        f = body_force_vector_3d(2.0, np.array([0.0, 0.0, -9.81]))
        assert f[2] == pytest.approx(-19.62)
        assert np.all(f[3:] == 0.0)

    def test_point_load_torque(self):
        c = np.zeros(3)
        p = np.array([1.0, 0.0, 0.0])
        f = point_load_vector_3d(p, c, np.array([0.0, 0.0, 1.0]))
        # force +z at +x lever arm -> torque about -y: r2 row gets -X... the
        # conjugate moment is r2 with T[2,4] = -X -> f[4] = -1
        assert f[4] == pytest.approx(-1.0)
        assert f[2] == pytest.approx(1.0)

    def test_fixed_point_rank(self):
        k = fixed_point_contribution_3d(
            np.array([1.0, 2.0, 3.0]), np.zeros(3), 1.0
        )
        assert np.linalg.matrix_rank(k) == 3
        np.testing.assert_allclose(k, k.T, atol=1e-12)
