import numpy as np
import pytest

from repro.dda3d.contact3d import LOCK3, OPEN3, detect_contacts_3d
from repro.dda3d.engine3d import Block3D, Controls3D, Engine3D, System3D
from repro.dda3d.geometry3d import make_box


def slab_and_box(gap=0.002, young=1e9, phi=30.0):
    slab = Block3D(make_box((4, 4, 1), origin=(-1.5, -1.5, -1.0)),
                   young=young, fixed=True)
    box = Block3D(make_box(origin=(0.0, 0.0, gap)), young=young)
    system = System3D([slab, box])
    controls = Controls3D(
        time_step=1e-3, gravity=9.81, contact_threshold=0.05,
        friction_angle_deg=phi,
    )
    return system, controls


class TestContactDetection3D:
    def test_box_on_slab_four_corner_contacts(self):
        system, controls = slab_and_box(gap=0.002)
        polys = [b.poly for b in system.blocks]
        contacts = detect_contacts_3d(polys, 0.05)
        vf = [(c.block_i, c.block_j) for c in contacts]
        # the box's four bottom corners against the slab's top face
        assert vf.count((1, 0)) == 4

    def test_far_blocks_no_contacts(self):
        polys = [make_box().translated(np.zeros(3)),
                 make_box().translated(np.array([5.0, 0, 0]))]
        assert detect_contacts_3d(polys, 0.05) == []

    def test_state_transfer(self):
        system, _ = slab_and_box()
        polys = [b.poly for b in system.blocks]
        first = detect_contacts_3d(polys, 0.05)
        first[0].state = LOCK3
        second = detect_contacts_3d(polys, 0.05, previous=first)
        keyed = {
            (c.block_i, c.vertex_id, c.block_j, c.face_id): c for c in second
        }
        k0 = (first[0].block_i, first[0].vertex_id,
              first[0].block_j, first[0].face_id)
        assert keyed[k0].state == LOCK3

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            detect_contacts_3d([make_box()], 0.0)


class TestEngine3D:
    def test_free_fall_exact(self):
        system = System3D([Block3D(make_box())])
        engine = Engine3D(system, Controls3D(time_step=1e-3, gravity=10.0))
        engine.run(steps=20)
        t = 0.02
        assert system.centroids[0, 2] - 0.5 == pytest.approx(
            -0.5 * 10.0 * t * t, rel=1e-9
        )
        assert system.velocities[0, 2] == pytest.approx(-10.0 * t, rel=1e-9)

    def test_box_settles_on_slab(self):
        system, controls = slab_and_box(gap=0.002)
        engine = Engine3D(system, controls)
        infos = engine.run(steps=150)
        assert system.centroids[1, 2] == pytest.approx(0.5, abs=5e-3)
        assert np.abs(system.velocities[1, :3]).max() < 0.05
        assert max(i.max_penetration for i in infos) < 1e-3

    def test_fixed_slab_does_not_move(self):
        # the anchored penalty springs bound the fixed slab's drift at a
        # few spring deflections regardless of step count
        system, controls = slab_and_box()
        engine = Engine3D(system, controls)
        start = system.centroids[0].copy()
        engine.run(steps=100)
        np.testing.assert_allclose(system.centroids[0], start, atol=5e-5)

    def test_sliding_friction_matches_stopping_distance(self):
        # settle first, then shove: arrest distance = v^2 / (2 g tan phi),
        # measured at the step the forward motion stops (the settled box
        # keeps micro-rocking afterwards, which is not sliding)
        def arrest_distance(phi, shove=0.2, max_steps=150):
            system, controls = slab_and_box(gap=0.0005, phi=phi)
            engine = Engine3D(system, controls)
            engine.run(steps=60)
            system.velocities[1, :] = 0.0
            system.velocities[1, 0] = shove
            start = float(system.centroids[1, 0])
            for _ in range(max_steps):
                engine.run(steps=1)
                if system.velocities[1, 0] <= 0.0:
                    break
            return float(system.centroids[1, 0] - start)

        grippy = arrest_distance(45.0)
        # theory: 0.2^2 / (2 * 9.81 * tan 45) = 2.0 mm
        assert grippy == pytest.approx(0.2**2 / (2 * 9.81), rel=0.5)
        slick = arrest_distance(2.0)
        assert slick > 5.0 * grippy  # barely decelerates at phi = 2

    def test_volume_preserved_through_rotating_fall(self):
        system = System3D([Block3D(make_box((1, 2, 3)))])
        system.velocities[0, 3:6] = [1.0, -2.0, 0.5]  # tumbling
        engine = Engine3D(system, Controls3D(time_step=1e-3, gravity=9.81))
        engine.run(steps=50)
        assert system.volumes[0] == pytest.approx(6.0, rel=1e-6)

    def test_invalid_steps(self):
        system = System3D([Block3D(make_box())])
        with pytest.raises(ValueError):
            Engine3D(system).run(steps=0)

    def test_empty_system_rejected(self):
        with pytest.raises(ValueError):
            System3D([])
