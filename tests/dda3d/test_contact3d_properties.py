"""Property tests of the 3-D vertex–face contact machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dda3d.contact3d import (
    detect_contacts_3d,
    normal_vectors_3d,
    relative_slip_3d,
    tangent_vectors_3d,
)
from repro.dda3d.displacement3d import DOF3
from repro.dda3d.geometry3d import make_box


def two_boxes(dz, dx=0.05, dy=0.05):
    """A small box hovering ``dz`` above a big box's top face."""
    lower = make_box((2, 2, 1))
    upper = make_box((0.8, 0.8, 0.8), origin=(0.6 + dx, 0.6 + dy, 1.0 + dz))
    return [lower, upper]


class TestNormalLinearisation:
    def test_gap_measured_correctly(self):
        polys = two_boxes(dz=0.01)
        contacts = detect_contacts_3d(polys, 0.05)
        centroids = np.array([p.centroid for p in polys])
        assert contacts
        for c in contacts:
            _, _, d0, _ = normal_vectors_3d(c, polys, centroids)
            assert d0 == pytest.approx(0.01, abs=1e-12)

    def test_penetration_negative(self):
        polys = two_boxes(dz=-0.01)
        contacts = detect_contacts_3d(polys, 0.05)
        centroids = np.array([p.centroid for p in polys])
        for c in contacts:
            _, _, d0, _ = normal_vectors_3d(c, polys, centroids)
            assert d0 == pytest.approx(-0.01, abs=1e-12)

    @given(
        st.floats(min_value=-1e-7, max_value=1e-7),
        st.floats(min_value=-1e-7, max_value=1e-7),
        st.floats(min_value=-1e-7, max_value=1e-7),
        st.integers(min_value=0, max_value=99),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_linearisation_fd(self, du, dw, dr, seed):
        # d_n(d_i, d_j) = d0 + e.d_i + g.d_j to first order
        polys = two_boxes(dz=0.005)
        centroids = np.array([p.centroid for p in polys])
        contacts = detect_contacts_3d(polys, 0.05)
        c = contacts[0]
        rng = np.random.default_rng(seed)
        di = rng.normal(0, 1e-7, DOF3) + np.array(
            [du, dw, dr] + [0.0] * 9
        )
        dj = rng.normal(0, 1e-7, DOF3)
        e, g, d0, nrm = normal_vectors_3d(c, polys, centroids)
        predicted = d0 + float(e @ di + g @ dj)
        # move the geometry (di on the vertex owner, dj on the face owner)
        from repro.dda3d.displacement3d import update_geometry_3d
        from repro.dda3d.geometry3d import Polyhedron

        per_block = {c.block_i: di, c.block_j: dj}
        moved = [
            Polyhedron(
                update_geometry_3d(p.vertices, centroids[k], per_block[k]),
                [list(f) for f in p.faces],
            )
            for k, p in enumerate(polys)
        ]
        e2, g2, d0_new, _ = normal_vectors_3d(c, moved, centroids)
        assert d0_new == pytest.approx(predicted, abs=1e-10)

    def test_action_reaction(self):
        # translating both blocks together leaves the gap unchanged
        polys = two_boxes(dz=0.01)
        centroids = np.array([p.centroid for p in polys])
        c = detect_contacts_3d(polys, 0.05)[0]
        e, g, _, _ = normal_vectors_3d(c, polys, centroids)
        np.testing.assert_allclose(e[:3] + g[:3], 0.0, atol=1e-12)


class TestTangentAndSlip:
    def test_tangent_orthogonal_to_normal(self):
        polys = two_boxes(dz=0.005)
        centroids = np.array([p.centroid for p in polys])
        c = detect_contacts_3d(polys, 0.05)[0]
        _, _, _, nrm = normal_vectors_3d(c, polys, centroids)
        t = np.array([1.0, 0.0, 0.0])
        et, gt = tangent_vectors_3d(c, polys, centroids, t)
        # pure tangential translation of block i slips by +1 along t
        d = np.zeros(DOF3)
        d[:3] = t
        assert float(et @ d) == pytest.approx(1.0)

    def test_relative_slip_in_plane(self):
        polys = two_boxes(dz=0.005)
        centroids = np.array([p.centroid for p in polys])
        c = detect_contacts_3d(polys, 0.05)[0]
        _, _, _, nrm = normal_vectors_3d(c, polys, centroids)
        d = np.zeros(2 * DOF3)
        d[1 * DOF3 + 0] = 0.0  # (block order: i may be 1)
        d[c.block_i * DOF3 + 0] = 1e-3
        slip = relative_slip_3d(c, polys, centroids, d)
        assert float(np.dot(slip, nrm)) == pytest.approx(0.0, abs=1e-15)
        assert slip[0] == pytest.approx(1e-3)

    def test_common_translation_no_slip(self):
        polys = two_boxes(dz=0.005)
        centroids = np.array([p.centroid for p in polys])
        c = detect_contacts_3d(polys, 0.05)[0]
        d = np.zeros(2 * DOF3)
        d[0:3] = [1e-3, 2e-3, -1e-3]
        d[DOF3 : DOF3 + 3] = [1e-3, 2e-3, -1e-3]
        slip = relative_slip_3d(c, polys, centroids, d)
        np.testing.assert_allclose(slip, 0.0, atol=1e-15)
