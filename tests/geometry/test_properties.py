"""Property-based tests: geometry predicates under similarity transforms.

The degenerate-geometry hardening replaced absolute epsilons with
scale-relative tolerances; these properties pin that down — rotating,
translating, and uniformly scaling a model must transform every
geometric quantity covariantly (areas by s^2, distances by s, parameter
values not at all) across six orders of magnitude of scale.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.geometry.distance import (
    edge_penetration,
    point_segment_distance,
)
from repro.geometry.polygon import (
    polygon_area,
    polygon_centroid,
    polygon_second_moments,
)
from repro.geometry.segments import segment_intersections
from repro.geometry.tolerances import Tolerances

#: An irregular, convex-free simple pentagon (no symmetry to hide bugs).
PENTAGON = np.array(
    [[0.0, 0.0], [4.0, 0.5], [5.0, 3.0], [2.0, 4.5], [-0.5, 2.0]]
)

angles = st.floats(0.0, 2.0 * np.pi, allow_nan=False)
# Translations are expressed in *scaled-model diameters* (tx = rx * s):
# shoelace-style formulas lose ~(shift/size)^k digits to catastrophic
# cancellation, which is inherent to the arithmetic, not a tolerance
# bug — 500 diameters at every scale keeps fixed rtols honest while
# still exercising far-from-origin geometry.
shifts = st.floats(-500.0, 500.0, allow_nan=False)
log_scales = st.floats(-3.0, 3.0, allow_nan=False)  # scales 1e-3 .. 1e3

COMMON = dict(max_examples=25, deadline=None)


def transform(points, angle, tx, ty, s):
    c, sn = np.cos(angle), np.sin(angle)
    rot = np.array([[c, -sn], [sn, c]])
    return s * (points @ rot.T) + np.array([tx, ty])


@settings(**COMMON)
@given(angle=angles, rx=shifts, ry=shifts, ls=log_scales)
def test_area_covariance(angle, rx, ry, ls):
    s = 10.0 ** ls
    tx, ty = rx * s, ry * s
    a0 = polygon_area(PENTAGON)
    a1 = polygon_area(transform(PENTAGON, angle, tx, ty, s))
    assert a1 == pytest.approx(s * s * a0, rel=1e-7, abs=1e-12 * s * s)


@settings(**COMMON)
@given(angle=angles, rx=shifts, ry=shifts, ls=log_scales)
def test_centroid_covariance(angle, rx, ry, ls):
    s = 10.0 ** ls
    tx, ty = rx * s, ry * s
    c0 = polygon_centroid(PENTAGON)
    c1 = polygon_centroid(transform(PENTAGON, angle, tx, ty, s))
    expect = transform(c0[None, :], angle, tx, ty, s)[0]
    span = max(abs(tx), abs(ty), s * 10.0)
    np.testing.assert_allclose(c1, expect, rtol=1e-7, atol=1e-9 * span)


@settings(**COMMON)
@given(angle=angles, rx=shifts, ry=shifts, ls=log_scales)
def test_second_moment_trace_invariance(angle, rx, ry, ls):
    s = 10.0 ** ls
    tx, ty = rx * s, ry * s
    sxx0, syy0, _ = polygon_second_moments(PENTAGON)
    sxx1, syy1, _ = polygon_second_moments(
        transform(PENTAGON, angle, tx, ty, s)
    )
    # the trace of the central second-moment tensor is rotation- and
    # translation-invariant and scales by s^4
    assert sxx1 + syy1 == pytest.approx(s ** 4 * (sxx0 + syy0), rel=1e-6)


@settings(**COMMON)
@given(angle=angles, rx=shifts, ry=shifts, ls=log_scales)
def test_point_segment_distance_covariance(angle, rx, ry, ls):
    s = 10.0 ** ls
    tx, ty = rx * s, ry * s
    p = np.array([[1.0, 2.0], [0.3, -0.7], [5.0, 5.0]])
    a = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 0.0]])
    b = np.array([[4.0, 0.0], [1.0, 3.0], [2.0, 4.0]])
    d0, t0 = point_segment_distance(p, a, b)
    d1, t1 = point_segment_distance(
        transform(p, angle, tx, ty, s),
        transform(a, angle, tx, ty, s),
        transform(b, angle, tx, ty, s),
    )
    np.testing.assert_allclose(d1, s * d0, rtol=1e-6, atol=1e-9 * s)
    # the projection parameter is a pure ratio: transform-invariant
    np.testing.assert_allclose(t1, t0, rtol=1e-6, atol=1e-9)


@settings(**COMMON)
@given(angle=angles, rx=shifts, ry=shifts, ls=log_scales)
def test_edge_penetration_covariance(angle, rx, ry, ls):
    s = 10.0 ** ls
    tx, ty = rx * s, ry * s
    p1 = np.array([[1.0, -0.5], [2.0, 0.3]])
    p2 = np.array([[0.0, 0.0], [0.0, 0.0]])
    p3 = np.array([[4.0, 0.0], [4.0, 0.0]])
    tol = Tolerances(length_scale=10.0)
    d0 = edge_penetration(p1, p2, p3, tol=tol)
    d1 = edge_penetration(
        transform(p1, angle, tx, ty, s),
        transform(p2, angle, tx, ty, s),
        transform(p3, angle, tx, ty, s),
        tol=tol.scaled(s),
    )
    np.testing.assert_allclose(d1, s * d0, rtol=1e-6, atol=1e-9 * s)


@settings(**COMMON)
@given(angle=angles, rx=shifts, ry=shifts, ls=log_scales)
def test_segment_intersection_params_invariant(angle, rx, ry, ls):
    s = 10.0 ** ls
    tx, ty = rx * s, ry * s
    segs = np.array(
        [
            [0.0, 0.0, 4.0, 0.0],
            [1.0, -1.0, 1.0, 3.0],   # proper crossing of segment 0
            [0.0, 2.0, 4.0, -2.0],   # crosses both
        ]
    )
    pts = segs.reshape(-1, 2)
    moved = transform(pts, angle, tx, ty, s).reshape(-1, 4)
    hits0 = sorted(segment_intersections(segs))
    hits1 = sorted(segment_intersections(moved))
    assert [(i, j) for i, j, *_ in hits0] == [(i, j) for i, j, *_ in hits1]
    for (_, _, ti0, tj0), (_, _, ti1, tj1) in zip(hits0, hits1):
        assert ti1 == pytest.approx(ti0, abs=1e-7)
        assert tj1 == pytest.approx(tj0, abs=1e-7)


@settings(**COMMON)
@given(angle=angles, rx=shifts, ry=shifts, ls=log_scales)
def test_collinear_overlap_detected_at_any_scale(angle, rx, ry, ls):
    s = 10.0 ** ls
    tx, ty = rx * s, ry * s
    segs = np.array(
        [
            [0.0, 0.0, 4.0, 0.0],
            [2.0, 0.0, 6.0, 0.0],  # collinear, overlapping in [2, 4]
        ]
    )
    moved = transform(segs.reshape(-1, 2), angle, tx, ty, s).reshape(-1, 4)
    hits = segment_intersections(moved)
    assert hits, "collinear overlap lost under similarity transform"


@settings(**COMMON)
@given(ls=log_scales)
def test_tolerances_scale_with_model(ls):
    s = 10.0 ** ls
    tol0 = Tolerances.from_points(PENTAGON)
    tol1 = Tolerances.from_points(s * PENTAGON)
    assert tol1.eps_length == pytest.approx(s * tol0.eps_length, rel=1e-9)
    assert tol1.eps_area == pytest.approx(s * s * tol0.eps_area, rel=1e-9)
