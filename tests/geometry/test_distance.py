import numpy as np
import pytest

from repro.geometry.distance import (
    edge_penetration,
    point_point_distance,
    point_segment_distance,
    signed_triangle_area2,
)


class TestPointPoint:
    def test_basic(self):
        p = np.array([[0.0, 0.0], [1.0, 1.0]])
        q = np.array([[3.0, 4.0], [1.0, 1.0]])
        np.testing.assert_allclose(point_point_distance(p, q), [5.0, 0.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            point_point_distance(np.zeros((2, 2)), np.zeros((3, 2)))


class TestPointSegment:
    def test_projection_interior(self):
        p = np.array([[0.5, 1.0]])
        a = np.array([[0.0, 0.0]])
        b = np.array([[1.0, 0.0]])
        d, t = point_segment_distance(p, a, b)
        assert d[0] == pytest.approx(1.0)
        assert t[0] == pytest.approx(0.5)

    def test_clamped_to_endpoint(self):
        p = np.array([[-1.0, 0.0]])
        a = np.array([[0.0, 0.0]])
        b = np.array([[1.0, 0.0]])
        d, t = point_segment_distance(p, a, b)
        assert d[0] == pytest.approx(1.0)
        assert t[0] == 0.0

    def test_degenerate_segment(self):
        p = np.array([[3.0, 4.0]])
        a = b = np.array([[0.0, 0.0]])
        d, t = point_segment_distance(p, a, b)
        assert d[0] == pytest.approx(5.0)
        assert t[0] == 0.0


class TestSignedArea:
    def test_left_positive(self):
        # vertex left of directed edge p2->p3 gives a positive determinant
        p1 = np.array([[0.0, 1.0]])
        p2 = np.array([[0.0, 0.0]])
        p3 = np.array([[1.0, 0.0]])
        assert signed_triangle_area2(p1, p2, p3)[0] > 0

    def test_sign_convention(self):
        # det convention: positive when (p1, p2, p3) is CCW
        p1 = np.array([[0.0, 0.0]])
        p2 = np.array([[1.0, 0.0]])
        p3 = np.array([[0.0, 1.0]])
        assert signed_triangle_area2(p1, p2, p3)[0] == pytest.approx(1.0)

    def test_collinear_zero(self):
        p = np.array([[0.0, 0.0]])
        q = np.array([[1.0, 1.0]])
        r = np.array([[2.0, 2.0]])
        assert signed_triangle_area2(p, q, r)[0] == pytest.approx(0.0)


class TestEdgePenetration:
    def test_positive_outside(self):
        # vertex above a left-to-right edge: det([[p1],[p2],[p3]]) with
        # p2->p3 rightward and p1 above gives negative 2-area in the
        # (p1,p2,p3) ordering; check magnitude is the perpendicular distance
        p1 = np.array([[0.5, 2.0]])
        p2 = np.array([[0.0, 0.0]])
        p3 = np.array([[1.0, 0.0]])
        d = edge_penetration(p1, p2, p3)
        assert abs(d[0]) == pytest.approx(2.0)

    def test_sign_flips_across_edge(self):
        above = np.array([[0.5, 1.0]])
        below = np.array([[0.5, -1.0]])
        p2 = np.array([[0.0, 0.0]])
        p3 = np.array([[1.0, 0.0]])
        da = edge_penetration(above, p2, p3)[0]
        db = edge_penetration(below, p2, p3)[0]
        assert da * db < 0

    def test_zero_length_edge_rejected(self):
        p = np.array([[0.0, 1.0]])
        q = np.array([[0.0, 0.0]])
        with pytest.raises(ValueError, match="degenerate"):
            edge_penetration(p, q, q)

    def test_scaling(self):
        # distance is independent of edge length
        p1 = np.array([[0.0, 3.0]])
        p2 = np.array([[-1.0, 0.0]])
        p3 = np.array([[1.0, 0.0]])
        d_short = edge_penetration(p1, p2, p3)[0]
        d_long = edge_penetration(p1, p2 * 5, p3 * 5)[0]
        assert abs(d_short) == pytest.approx(abs(d_long)) == pytest.approx(3.0)
