import numpy as np
import pytest

from repro.geometry.segments import segment_intersections, split_segments_at_points


class TestSegmentIntersections:
    def test_cross(self):
        segs = np.array([[0, 0, 2, 2], [0, 2, 2, 0]], dtype=float)
        hits = segment_intersections(segs)
        assert len(hits) == 1
        i, j, ti, tj = hits[0]
        assert (i, j) == (0, 1)
        assert ti == pytest.approx(0.5)
        assert tj == pytest.approx(0.5)

    def test_no_intersection(self):
        segs = np.array([[0, 0, 1, 0], [0, 1, 1, 1]], dtype=float)
        assert segment_intersections(segs) == []

    def test_touching_endpoint(self):
        segs = np.array([[0, 0, 1, 0], [1, 0, 1, 1]], dtype=float)
        hits = segment_intersections(segs)
        assert len(hits) == 1
        _, _, ti, tj = hits[0]
        assert ti == pytest.approx(1.0)
        assert tj == pytest.approx(0.0)

    def test_parallel_disjoint(self):
        segs = np.array([[0, 0, 1, 1], [2, 0, 3, 1]], dtype=float)
        assert segment_intersections(segs) == []

    def test_collinear_overlap_reports_endpoints(self):
        segs = np.array([[0, 0, 2, 0], [1, 0, 3, 0]], dtype=float)
        hits = segment_intersections(segs)
        assert hits  # overlap endpoints reported
        params_on_0 = sorted(t for i, j, t, _ in hits if i == 0)
        assert any(abs(t - 0.5) < 1e-9 for t in params_on_0)

    def test_single_segment(self):
        assert segment_intersections(np.array([[0, 0, 1, 1.0]])) == []

    def test_many_grid(self):
        # 2 horizontal x 2 vertical = 4 crossings
        segs = np.array(
            [
                [0, 1, 3, 1],
                [0, 2, 3, 2],
                [1, 0, 1, 3],
                [2, 0, 2, 3],
            ],
            dtype=float,
        )
        assert len(segment_intersections(segs)) == 4


class TestSplitSegments:
    def test_split_middle(self):
        segs = np.array([[0, 0, 2, 0]], dtype=float)
        out = split_segments_at_points(segs, [[0.5]])
        assert out.shape == (2, 4)
        np.testing.assert_allclose(out[0], [0, 0, 1, 0])
        np.testing.assert_allclose(out[1], [1, 0, 2, 0])

    def test_no_cuts_passthrough(self):
        segs = np.array([[0, 0, 1, 1]], dtype=float)
        out = split_segments_at_points(segs, [[]])
        np.testing.assert_allclose(out, segs)

    def test_duplicate_and_endpoint_params_ignored(self):
        segs = np.array([[0, 0, 4, 0]], dtype=float)
        out = split_segments_at_points(segs, [[0.0, 0.25, 0.25, 1.0]])
        assert out.shape == (2, 4)

    def test_mismatched_params_rejected(self):
        with pytest.raises(ValueError):
            split_segments_at_points(np.array([[0, 0, 1, 0.0]]), [[], []])

    def test_total_length_conserved(self):
        segs = np.array([[0, 0, 3, 4]], dtype=float)
        out = split_segments_at_points(segs, [[0.3, 0.7]])
        lengths = np.hypot(out[:, 2] - out[:, 0], out[:, 3] - out[:, 1])
        assert lengths.sum() == pytest.approx(5.0)
