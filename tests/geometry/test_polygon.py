import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.polygon import (
    ensure_ccw,
    is_ccw,
    point_in_polygon,
    polygon_aabb,
    polygon_area,
    polygon_centroid,
    polygon_second_moments,
)
from repro.util.validation import ShapeError

UNIT_SQUARE = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])


def regular_polygon(n, radius=1.0, center=(0.0, 0.0)):
    ang = np.linspace(0, 2 * np.pi, n, endpoint=False)
    return np.stack(
        [center[0] + radius * np.cos(ang), center[1] + radius * np.sin(ang)], axis=1
    )


class TestArea:
    def test_unit_square(self):
        assert polygon_area(UNIT_SQUARE) == pytest.approx(1.0)

    def test_cw_negative(self):
        assert polygon_area(UNIT_SQUARE[::-1]) == pytest.approx(-1.0)

    def test_triangle(self):
        tri = np.array([[0, 0], [2, 0], [0, 2]], dtype=float)
        assert polygon_area(tri) == pytest.approx(2.0)

    def test_too_few_vertices(self):
        with pytest.raises(ShapeError):
            polygon_area(np.array([[0, 0], [1, 1]], dtype=float))

    def test_translation_invariant(self):
        shifted = UNIT_SQUARE + np.array([100.0, -3.0])
        assert polygon_area(shifted) == pytest.approx(1.0)


class TestOrientation:
    def test_is_ccw(self):
        assert is_ccw(UNIT_SQUARE)
        assert not is_ccw(UNIT_SQUARE[::-1])

    def test_ensure_ccw_flips(self):
        out = ensure_ccw(UNIT_SQUARE[::-1])
        assert is_ccw(out)

    def test_ensure_ccw_keeps(self):
        out = ensure_ccw(UNIT_SQUARE)
        np.testing.assert_array_equal(out, UNIT_SQUARE)


class TestCentroid:
    def test_square_center(self):
        np.testing.assert_allclose(polygon_centroid(UNIT_SQUARE), [0.5, 0.5])

    def test_triangle(self):
        tri = np.array([[0, 0], [3, 0], [0, 3]], dtype=float)
        np.testing.assert_allclose(polygon_centroid(tri), [1.0, 1.0])

    def test_matches_vertex_mean_for_regular(self):
        poly = regular_polygon(7, center=(2.0, -1.0))
        np.testing.assert_allclose(polygon_centroid(poly), [2.0, -1.0], atol=1e-12)

    def test_degenerate_raises(self):
        degenerate = np.array([[0, 0], [1, 1], [2, 2]], dtype=float)
        with pytest.raises(ShapeError, match="degenerate"):
            polygon_centroid(degenerate)


class TestSecondMoments:
    def test_unit_square_analytic(self):
        # central moment of a unit square: 1/12 each, Sxy = 0
        sxx, syy, sxy = polygon_second_moments(UNIT_SQUARE)
        assert sxx == pytest.approx(1.0 / 12.0)
        assert syy == pytest.approx(1.0 / 12.0)
        assert sxy == pytest.approx(0.0, abs=1e-14)

    def test_rectangle_analytic(self):
        rect = np.array([[0, 0], [4, 0], [4, 2], [0, 2]], dtype=float)
        sxx, syy, sxy = polygon_second_moments(rect)
        # Sxx = w^3 h / 12, Syy = w h^3 / 12
        assert sxx == pytest.approx(4**3 * 2 / 12.0)
        assert syy == pytest.approx(4 * 2**3 / 12.0)
        assert sxy == pytest.approx(0.0, abs=1e-12)

    def test_translation_invariant(self):
        a = polygon_second_moments(UNIT_SQUARE)
        b = polygon_second_moments(UNIT_SQUARE + np.array([17.0, -9.0]))
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_orientation_invariant(self):
        a = polygon_second_moments(UNIT_SQUARE)
        b = polygon_second_moments(UNIT_SQUARE[::-1])
        np.testing.assert_allclose(a, b)

    @given(
        st.floats(min_value=0.5, max_value=10.0),
        st.floats(min_value=0.5, max_value=10.0),
        st.floats(min_value=-50.0, max_value=50.0),
        st.floats(min_value=-50.0, max_value=50.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_rectangle(self, w, h, ox, oy):
        rect = np.array(
            [[ox, oy], [ox + w, oy], [ox + w, oy + h], [ox, oy + h]]
        )
        sxx, syy, sxy = polygon_second_moments(rect)
        assert sxx == pytest.approx(w**3 * h / 12.0, rel=1e-6)
        assert syy == pytest.approx(w * h**3 / 12.0, rel=1e-6)
        assert abs(sxy) < 1e-6 * max(1.0, sxx, syy)


class TestAabbAndContainment:
    def test_aabb(self):
        np.testing.assert_allclose(
            polygon_aabb(UNIT_SQUARE * 2 - 1), [-1, -1, 1, 1]
        )

    def test_point_in_polygon(self):
        pts = np.array([[0.5, 0.5], [1.5, 0.5], [-0.1, 0.0]])
        np.testing.assert_array_equal(
            point_in_polygon(UNIT_SQUARE, pts), [True, False, False]
        )

    def test_point_in_concave_polygon(self):
        concave = np.array(
            [[0, 0], [4, 0], [4, 4], [2, 4], [2, 2], [0, 2]], dtype=float
        )
        pts = np.array([[1.0, 1.0], [3.0, 3.0], [1.0, 3.0]])
        np.testing.assert_array_equal(
            point_in_polygon(concave, pts), [True, True, False]
        )
