"""Degenerate-geometry regression corpus.

Zero-length edges, coincident/collinear vertices, near-parallel segment
pairs, and slivers — every case that used to crash a kernel or silently
misclassify now has a pinned behaviour: cleaned up, classified safely,
or rejected with a typed error.
"""

import numpy as np
import pytest

from repro.contact.narrow_phase import _angle_between, narrow_phase
from repro.core.blocks import Block, BlockSystem
from repro.core.materials import BlockMaterial
from repro.geometry.distance import edge_penetration
from repro.geometry.polygon import polygon_centroid
from repro.geometry.segments import segment_intersections
from repro.geometry.tolerances import Tolerances
from repro.util.validation import ShapeError

SQ = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])


# ----------------------------------------------------------------------
# Tolerances
# ----------------------------------------------------------------------

def test_tolerances_from_points_ignores_nonfinite():
    pts = np.array([[0.0, 0.0], [np.nan, 1.0], [3.0, 4.0]])
    tol = Tolerances.from_points(pts)
    assert tol.length_scale == pytest.approx(5.0)


def test_tolerances_fallbacks():
    # single point: falls back to the max |coordinate|, then 1.0
    assert Tolerances.from_points(np.array([[7.0, 0.0]])).length_scale == 7.0
    assert Tolerances.from_points(np.zeros((1, 2))).length_scale == 1.0
    assert Tolerances.from_points(np.zeros((0, 2))).length_scale == 1.0


def test_tolerances_scaled():
    tol = Tolerances(length_scale=2.0, rel=1e-9)
    assert tol.scaled(3.0).eps_length == pytest.approx(3.0 * tol.eps_length)


# ----------------------------------------------------------------------
# Block construction: coincident vertices, slivers
# ----------------------------------------------------------------------

def test_block_dedupes_coincident_vertices():
    poly = np.array(
        [[0.0, 0.0], [1.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]]
    )
    b = Block(poly)
    assert b.n_vertices == 4
    assert b.area == pytest.approx(1.0)


def test_block_dedup_is_scale_relative():
    for s in (1e-6, 1.0, 1e6):
        poly = s * np.array(
            [[0.0, 0.0], [1.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]]
        )
        assert Block(poly).n_vertices == 4


def test_block_rejects_collapsed_polygon():
    with pytest.raises(ShapeError, match="fewer than 3"):
        Block(np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 1.0], [1.0, 1.0]]))


def test_block_rejects_sliver_at_any_scale():
    for s in (1e-6, 1.0, 1e6):
        with pytest.raises(ShapeError, match="zero area"):
            Block(s * np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]]))


def test_centroid_degeneracy_is_scale_relative():
    for s in (1e-6, 1.0, 1e6):
        with pytest.raises(ShapeError, match="degenerate"):
            polygon_centroid(s * np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]]))
        # and a healthy polygon passes at the same scales
        np.testing.assert_allclose(
            polygon_centroid(s * SQ), s * np.array([0.5, 0.5])
        )


# ----------------------------------------------------------------------
# distance kernels
# ----------------------------------------------------------------------

def test_edge_penetration_zero_length_edge_with_tol():
    p1 = np.array([[0.5, 1.0]])
    p2 = np.array([[0.0, 0.0]])
    p3 = np.array([[0.0, 0.0]])  # degenerate edge
    # historical behaviour without tol: hard error
    with pytest.raises(ValueError):
        edge_penetration(p1, p2, p3)
    # with tol: falls back to the unsigned point distance
    d = edge_penetration(p1, p2, p3, tol=Tolerances(length_scale=1.0))
    assert d[0] == pytest.approx(np.hypot(0.5, 1.0))


def test_angle_between_degenerate_directions():
    d1 = np.array([[0.0, 0.0], [1.0, 0.0]])
    d2 = np.array([[1.0, 0.0], [1.0, 0.0]])
    ang = _angle_between(d1, d2)
    assert ang[0] == pytest.approx(np.pi / 2.0)  # degenerate: never parallel
    assert ang[1] == pytest.approx(0.0)


# ----------------------------------------------------------------------
# segment intersection: near-parallel and zero-length cases
# ----------------------------------------------------------------------

def test_zero_length_segment_does_not_crash():
    segs = np.array(
        [[0.0, 0.0, 4.0, 0.0], [2.0, 0.0, 2.0, 0.0]]  # second is a point
    )
    hits = segment_intersections(segs)
    assert isinstance(hits, list)  # classification is best-effort, no crash


def test_near_parallel_judgment_is_angle_based():
    # two long segments meeting at ~1e-6 rad: a *proper* crossing that an
    # absolute cross-product epsilon would misclassify as parallel at
    # small scales
    for s in (1e-4, 1.0, 1e4):
        segs = s * np.array(
            [[0.0, 0.0, 1.0, 0.0], [0.0, -5e-7, 1.0, 5e-7]]
        )
        hits = segment_intersections(segs)
        proper = [h for h in hits if 0.4 < h[2] < 0.6]
        assert proper, f"crossing lost at scale {s}"
        assert proper[0][2] == pytest.approx(0.5, abs=1e-3)


def test_truly_parallel_pairs_stay_parallel_at_any_scale():
    for s in (1e-4, 1.0, 1e4):
        segs = s * np.array(
            [[0.0, 0.0, 1.0, 0.0], [0.0, 0.5, 1.0, 0.5]]
        )
        assert segment_intersections(segs) == []


# ----------------------------------------------------------------------
# narrow phase end-to-end with degenerate blocks
# ----------------------------------------------------------------------

def test_narrow_phase_survives_coincident_vertices():
    # Block construction dedupes, but vertices can *become* coincident
    # after a geometry update; write them into the system directly
    mat = BlockMaterial(young=1e9)
    sys_ = BlockSystem(
        [Block(SQ, mat), Block(SQ + np.array([1.05, 0.0]), mat)]
    )
    # collapse one edge of block 1 to zero length
    lo = int(sys_.offsets[1])
    sys_.vertices[lo + 1] = sys_.vertices[lo + 2]
    sys_._refresh_cache()
    contacts = narrow_phase(
        sys_, np.array([0]), np.array([1]), 0.2,
        tol=Tolerances.from_points(sys_.vertices),
    )
    # no contact may reference the zero-length edge
    e = sys_.vertices[contacts.e2_idx] - sys_.vertices[contacts.e1_idx]
    lengths = np.hypot(e[:, 0], e[:, 1])
    assert (lengths > 1e-12).all()
    assert np.isfinite(contacts.ratio).all()
