import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assembly.global_matrix import BS
from repro.spmv.formats import ELLMatrix
from repro.spmv.sell import SELLMatrix, sell_spmv
from repro.spmv.synthetic import synthetic_block_matrix


@pytest.fixture
def matrix():
    return synthetic_block_matrix(14, 30, seed=13)


class TestSELLLayout:
    def test_perm_is_permutation(self, matrix):
        s = SELLMatrix.from_block_matrix(matrix)
        np.testing.assert_array_equal(
            np.sort(s.perm), np.arange(matrix.n * BS)
        )

    def test_slice_widths_cover_rows(self, matrix):
        s = SELLMatrix.from_block_matrix(matrix, c=8, sigma=64)
        csr = matrix.to_scipy_csr()
        lengths = np.diff(csr.indptr)
        for k in range(matrix.n * BS):
            slice_id = np.searchsorted(
                np.arange(s.slice_width.size) * s.c, k, side="right"
            ) - 1
            assert s.slice_width[slice_id] >= lengths[s.perm[k]]

    def test_better_fill_than_plain_ell(self, matrix):
        sell = SELLMatrix.from_block_matrix(matrix, c=4, sigma=512)
        ell = ELLMatrix.from_block_matrix(matrix)
        assert sell.fill_ratio >= ell.fill_ratio

    def test_smaller_storage_than_ell(self, matrix):
        sell = SELLMatrix.from_block_matrix(matrix, c=4, sigma=512)
        ell = ELLMatrix.from_block_matrix(matrix)
        assert sell.data.nbytes <= ell.data.nbytes

    def test_invalid_params(self, matrix):
        with pytest.raises(ValueError):
            SELLMatrix.from_block_matrix(matrix, c=0)
        with pytest.raises(ValueError):
            SELLMatrix.from_block_matrix(matrix, sigma=0)


class TestSELLSpmv:
    def test_matches_scipy(self, matrix, rng):
        s = SELLMatrix.from_block_matrix(matrix)
        x = rng.normal(size=matrix.n * BS)
        np.testing.assert_allclose(
            sell_spmv(s, x), matrix.to_scipy_csr() @ x, rtol=1e-12
        )

    def test_device_recording(self, matrix, device, rng):
        s = SELLMatrix.from_block_matrix(matrix)
        sell_spmv(s, rng.normal(size=matrix.n * BS), device)
        assert "sell_spmv" in device.time_by_kernel()

    @given(
        st.integers(min_value=2, max_value=16),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=512),
        st.integers(min_value=0, max_value=999),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_matches_dense(self, n, c, sigma, seed):
        m = min(2 * n, n * (n - 1) // 2)
        a = synthetic_block_matrix(n, m, seed=seed)
        s = SELLMatrix.from_block_matrix(a, c=c, sigma=sigma)
        rng = np.random.default_rng(seed + 1)
        x = rng.normal(size=n * BS)
        np.testing.assert_allclose(
            sell_spmv(s, x), a.to_dense() @ x, rtol=1e-9, atol=1e-9
        )
