import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assembly.global_matrix import BS
from repro.spmv.csr_ref import CSRMatrix, csr_spmv
from repro.spmv.merge_path import merge_csr_spmv, merge_path_partitions
from repro.spmv.synthetic import synthetic_block_matrix


@pytest.fixture
def csr():
    return CSRMatrix.from_block_matrix(synthetic_block_matrix(12, 25, seed=23))


class TestMergePathPartitions:
    def test_covers_whole_path(self, csr):
        coords = merge_path_partitions(csr.indptr, 8)
        assert tuple(coords[0]) == (0, 0)
        assert tuple(coords[-1]) == (csr.n_rows, csr.nnz)

    def test_monotone(self, csr):
        coords = merge_path_partitions(csr.indptr, 16)
        assert (np.diff(coords[:, 0]) >= 0).all()
        assert (np.diff(coords[:, 1]) >= 0).all()

    def test_balanced_path_lengths(self, csr):
        n_workers = 8
        coords = merge_path_partitions(csr.indptr, n_workers)
        work = np.diff(coords[:, 0] + coords[:, 1])
        assert work.max() - work.min() <= 1

    def test_single_worker(self, csr):
        coords = merge_path_partitions(csr.indptr, 1)
        assert coords.shape == (2, 2)

    def test_invalid_workers(self, csr):
        with pytest.raises(ValueError):
            merge_path_partitions(csr.indptr, 0)

    def test_pathological_row_distribution_balanced(self):
        # one row with almost all non-zeros: the killer of row-split
        # kernels, handled by construction here
        import scipy.sparse as sp

        dense = np.zeros((64, 64))
        dense[0, :] = 1.0  # a full row
        dense[np.arange(64), np.arange(64)] = 2.0
        m = sp.csr_matrix(dense)
        indptr = m.indptr.astype(np.int64)
        coords = merge_path_partitions(indptr, 8)
        work = np.diff(coords[:, 0] + coords[:, 1])
        assert work.max() - work.min() <= 1


class TestMergeCsrSpmv:
    def test_matches_reference(self, csr, rng):
        x = rng.normal(size=csr.n_rows)
        np.testing.assert_allclose(
            merge_csr_spmv(csr, x), csr_spmv(csr, x), rtol=1e-12
        )

    def test_various_worker_counts(self, csr, rng):
        x = rng.normal(size=csr.n_rows)
        expect = csr_spmv(csr, x)
        for w in (1, 2, 7, 64, 1000):
            np.testing.assert_allclose(
                merge_csr_spmv(csr, x, n_workers=w), expect, rtol=1e-10,
                err_msg=f"workers={w}",
            )

    def test_device_recording(self, csr, device, rng):
        merge_csr_spmv(csr, rng.normal(size=csr.n_rows), device)
        names = device.time_by_kernel()
        assert "merge_path_search" in names
        assert "merge_csr_spmv" in names
        assert "merge_fixup" in names

    def test_no_imbalance_flops(self, csr, device, rng):
        # merge-path charges exactly 2(nnz + rows) flops — no padding
        merge_csr_spmv(csr, rng.normal(size=csr.n_rows), device)
        main = [r for r in device.records if r.name == "merge_csr_spmv"][0]
        assert main.counters.flops == pytest.approx(
            2.0 * (csr.nnz + csr.n_rows)
        )

    @given(
        st.integers(min_value=2, max_value=15),
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=0, max_value=99),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_matches_dense(self, n, m_req, workers, seed):
        m = min(m_req, n * (n - 1) // 2)
        a = synthetic_block_matrix(n, m, seed=seed)
        csr = CSRMatrix.from_block_matrix(a)
        x = np.random.default_rng(seed).normal(size=n * BS)
        np.testing.assert_allclose(
            merge_csr_spmv(csr, x, n_workers=workers),
            a.to_dense() @ x, rtol=1e-9, atol=1e-9,
        )
