import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assembly.global_matrix import BS
from repro.spmv.hsbcsr import SLICE_ALIGN, HSBCSRMatrix, hsbcsr_spmv
from repro.spmv.synthetic import synthetic_block_matrix


@pytest.fixture
def small_matrix():
    return synthetic_block_matrix(12, 20, seed=3)


class TestHSBCSRLayout:
    def test_slice_alignment(self, small_matrix):
        h = HSBCSRMatrix.from_block_matrix(small_matrix)
        assert h.nd_data.shape[1] % SLICE_ALIGN == 0
        assert h.d_data.shape[1] % SLICE_ALIGN == 0

    def test_slice_content(self, small_matrix):
        # slice s of the nd array holds row s of each block in order
        h = HSBCSRMatrix.from_block_matrix(small_matrix)
        v = h.nd_view()
        for k in range(small_matrix.n_offdiag):
            np.testing.assert_array_equal(v[:, k, :], small_matrix.blocks[k])

    def test_row_up_indptr(self, small_matrix):
        h = HSBCSRMatrix.from_block_matrix(small_matrix)
        assert h.row_up_i[0] == 0
        assert h.row_up_i[-1] == small_matrix.n_offdiag
        counts = np.bincount(small_matrix.rows, minlength=small_matrix.n)
        np.testing.assert_array_equal(np.diff(h.row_up_i), counts)

    def test_row_low_permutation(self, small_matrix):
        # row_low_p maps lower-order positions to upper-storage positions:
        # walking it must visit every upper entry once, sorted by column
        h = HSBCSRMatrix.from_block_matrix(small_matrix)
        np.testing.assert_array_equal(
            np.sort(h.row_low_p), np.arange(small_matrix.n_offdiag)
        )
        cols_in_low_order = small_matrix.cols[h.row_low_p]
        assert (np.diff(cols_in_low_order) >= 0).all()

    def test_half_storage_vs_full(self, small_matrix):
        from repro.spmv.formats import BCSRMatrix

        h = HSBCSRMatrix.from_block_matrix(small_matrix)
        b = BCSRMatrix.from_block_matrix(small_matrix)
        # HSBCSR stores roughly half the non-diagonal data
        assert h.storage_bytes < b.storage_bytes


class TestHSBCSRSpmv:
    def test_matches_scipy(self, small_matrix, rng):
        h = HSBCSRMatrix.from_block_matrix(small_matrix)
        x = rng.normal(size=small_matrix.n * BS)
        expect = small_matrix.to_scipy_csr() @ x
        np.testing.assert_allclose(hsbcsr_spmv(h, x), expect, rtol=1e-12)

    def test_matches_block_matvec(self, small_matrix, rng):
        h = HSBCSRMatrix.from_block_matrix(small_matrix)
        x = rng.normal(size=small_matrix.n * BS)
        np.testing.assert_allclose(
            hsbcsr_spmv(h, x), small_matrix.matvec(x), rtol=1e-12
        )

    def test_diagonal_only_matrix(self, rng):
        a = synthetic_block_matrix(5, 0, seed=0)
        h = HSBCSRMatrix.from_block_matrix(a)
        x = rng.normal(size=5 * BS)
        np.testing.assert_allclose(hsbcsr_spmv(h, x), a.matvec(x), rtol=1e-12)

    def test_records_three_kernels(self, small_matrix, device, rng):
        h = HSBCSRMatrix.from_block_matrix(small_matrix)
        hsbcsr_spmv(h, rng.normal(size=small_matrix.n * BS), device)
        names = list(device.time_by_kernel())
        assert "hsbcsr_stage1" in names
        assert "hsbcsr_stage2" in names
        assert "hsbcsr_diag" in names

    def test_linear(self, small_matrix, rng):
        h = HSBCSRMatrix.from_block_matrix(small_matrix)
        x = rng.normal(size=small_matrix.n * BS)
        y = rng.normal(size=small_matrix.n * BS)
        np.testing.assert_allclose(
            hsbcsr_spmv(h, 2 * x + y),
            2 * hsbcsr_spmv(h, x) + hsbcsr_spmv(h, y),
            rtol=1e-10, atol=1e-9,
        )

    @given(
        st.integers(min_value=2, max_value=30),
        st.integers(min_value=0, max_value=60),
        st.integers(min_value=0, max_value=9999),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_matches_dense(self, n, m_req, seed):
        m = min(m_req, n * (n - 1) // 2)
        a = synthetic_block_matrix(n, m, seed=seed)
        h = HSBCSRMatrix.from_block_matrix(a)
        rng = np.random.default_rng(seed + 1)
        x = rng.normal(size=n * BS)
        np.testing.assert_allclose(
            hsbcsr_spmv(h, x), a.to_dense() @ x, rtol=1e-10, atol=1e-9
        )
