"""Cross-format consistency and storage-claim property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assembly.global_matrix import BS
from repro.spmv.csr_ref import CSRMatrix, csr_spmv
from repro.spmv.formats import BCSRMatrix, ELLMatrix, bcsr_spmv, ell_spmv
from repro.spmv.hsbcsr import HSBCSRMatrix, hsbcsr_spmv
from repro.spmv.sell import SELLMatrix, sell_spmv
from repro.spmv.synthetic import synthetic_block_matrix


@given(
    st.integers(min_value=2, max_value=20),
    st.integers(min_value=0, max_value=40),
    st.integers(min_value=0, max_value=999),
)
@settings(max_examples=25, deadline=None)
def test_property_all_five_formats_agree(n, m_req, seed):
    m = min(m_req, n * (n - 1) // 2)
    a = synthetic_block_matrix(n, m, seed=seed)
    x = np.random.default_rng(seed + 7).normal(size=n * BS)
    reference = a.matvec(x)
    ys = [
        hsbcsr_spmv(HSBCSRMatrix.from_block_matrix(a), x),
        csr_spmv(CSRMatrix.from_block_matrix(a), x),
        bcsr_spmv(BCSRMatrix.from_block_matrix(a), x),
        ell_spmv(ELLMatrix.from_block_matrix(a), x),
        sell_spmv(SELLMatrix.from_block_matrix(a), x),
    ]
    for y in ys:
        np.testing.assert_allclose(y, reference, rtol=1e-9, atol=1e-9)


class TestStorageClaims:
    @pytest.fixture(scope="class")
    def matrix(self):
        return synthetic_block_matrix(60, 170, seed=19)

    def test_hsbcsr_half_the_nd_payload_of_bcsr(self, matrix):
        h = HSBCSRMatrix.from_block_matrix(matrix)
        b = BCSRMatrix.from_block_matrix(matrix)
        nd_h = h.nd_data.nbytes
        nd_b = b.data.nbytes - matrix.n * BS * BS * 8  # minus diagonal
        assert nd_h < 0.6 * nd_b

    def test_hsbcsr_index_overhead_below_csr(self, matrix):
        # one (row, col) pair per 6x6 block vs one column index per scalar
        h = HSBCSRMatrix.from_block_matrix(matrix)
        c = CSRMatrix.from_block_matrix(matrix)
        idx_h = (h.rows.nbytes + h.cols.nbytes + h.row_up_i.nbytes
                 + h.row_low_i.nbytes + h.row_low_p.nbytes)
        assert idx_h < 0.25 * c.indices.nbytes

    def test_sell_between_csr_and_ell(self, matrix):
        e = ELLMatrix.from_block_matrix(matrix)
        s = SELLMatrix.from_block_matrix(matrix, c=32, sigma=512)
        c = CSRMatrix.from_block_matrix(matrix)
        assert c.data.nbytes <= s.data.nbytes <= e.data.nbytes

    def _times(self, n, m, seed=3):
        from repro.gpu.device import K40
        from repro.gpu.kernel import VirtualDevice

        a = synthetic_block_matrix(n, m, seed=seed)
        x = np.random.default_rng(0).normal(size=a.n * BS)
        times = {}
        for name, build, run in (
            ("hsbcsr", HSBCSRMatrix.from_block_matrix, hsbcsr_spmv),
            ("csr", CSRMatrix.from_block_matrix, csr_spmv),
            ("bcsr", BCSRMatrix.from_block_matrix, bcsr_spmv),
        ):
            dev = VirtualDevice(K40)
            run(build(a), x, dev)
            times[name] = dev.total_time
        return times

    def test_hsbcsr_beats_csr_at_mid_size(self):
        times = self._times(500, 2000)
        assert times["hsbcsr"] < times["csr"]

    def test_hsbcsr_bcsr_crossover_with_scale(self):
        # honest crossover: BCSR's single launch wins while launch
        # overhead dominates; HSBCSR's half-traffic advantage takes over
        # once the matrix is large enough (the Fig-10 regime)
        small = self._times(500, 2000)
        large = self._times(4361, 18731)
        assert small["bcsr"] < small["hsbcsr"]
        assert large["hsbcsr"] < large["bcsr"]
