import numpy as np
import pytest

from repro.assembly.global_matrix import BS
from repro.spmv.csr_ref import CSRMatrix, csr_spmv
from repro.spmv.formats import BCSRMatrix, ELLMatrix, bcsr_spmv, ell_spmv
from repro.spmv.synthetic import synthetic_block_matrix


@pytest.fixture
def matrix():
    return synthetic_block_matrix(10, 18, seed=7)


class TestCSR:
    def test_matches_scipy(self, matrix, rng):
        c = CSRMatrix.from_block_matrix(matrix)
        x = rng.normal(size=matrix.n * BS)
        np.testing.assert_allclose(
            csr_spmv(c, x), matrix.to_scipy_csr() @ x, rtol=1e-12
        )

    def test_nnz_counts_both_triangles(self, matrix):
        c = CSRMatrix.from_block_matrix(matrix)
        assert c.nnz == matrix.nnz_scalar

    def test_recovery_cost_recorded(self, matrix, device):
        CSRMatrix.from_block_matrix(matrix, device)
        assert "csr_recover_full" in device.time_by_kernel()

    def test_recovery_cost_skippable(self, matrix, device):
        CSRMatrix.from_block_matrix(matrix, device, include_recovery_cost=False)
        assert device.launches() == 0

    def test_spmv_kernel_recorded(self, matrix, device, rng):
        c = CSRMatrix.from_block_matrix(matrix)
        csr_spmv(c, rng.normal(size=matrix.n * BS), device)
        assert "csr_vector_spmv" in device.time_by_kernel()


class TestBCSR:
    def test_matches_scipy(self, matrix, rng):
        b = BCSRMatrix.from_block_matrix(matrix)
        x = rng.normal(size=matrix.n * BS)
        np.testing.assert_allclose(
            bcsr_spmv(b, x), matrix.to_scipy_csr() @ x, rtol=1e-12
        )

    def test_stores_both_triangles(self, matrix):
        b = BCSRMatrix.from_block_matrix(matrix)
        assert b.indices.size == matrix.n + 2 * matrix.n_offdiag

    def test_device_recording(self, matrix, device, rng):
        b = BCSRMatrix.from_block_matrix(matrix)
        bcsr_spmv(b, rng.normal(size=matrix.n * BS), device)
        assert device.launches() == 1


class TestELL:
    def test_matches_scipy(self, matrix, rng):
        e = ELLMatrix.from_block_matrix(matrix)
        x = rng.normal(size=matrix.n * BS)
        np.testing.assert_allclose(
            ell_spmv(e, x), matrix.to_scipy_csr() @ x, rtol=1e-12
        )

    def test_width_is_max_row_length(self, matrix):
        e = ELLMatrix.from_block_matrix(matrix)
        csr = matrix.to_scipy_csr()
        assert e.width == int(np.diff(csr.indptr).max())

    def test_fill_ratio_below_one_for_irregular(self, matrix):
        e = ELLMatrix.from_block_matrix(matrix)
        assert 0 < e.fill_ratio <= 1.0

    def test_padding_costs_flops(self, matrix, device, rng):
        e = ELLMatrix.from_block_matrix(matrix)
        ell_spmv(e, rng.normal(size=matrix.n * BS), device)
        c = device.total_counters
        assert c.flops == pytest.approx(2.0 * e.n_rows * e.width)


class TestFormatComparison:
    def test_all_formats_agree(self, rng):
        a = synthetic_block_matrix(20, 45, seed=11)
        x = rng.normal(size=a.n * BS)
        expect = a.to_scipy_csr() @ x
        from repro.spmv.hsbcsr import HSBCSRMatrix, hsbcsr_spmv

        results = {
            "hsbcsr": hsbcsr_spmv(HSBCSRMatrix.from_block_matrix(a), x),
            "csr": csr_spmv(CSRMatrix.from_block_matrix(a), x),
            "bcsr": bcsr_spmv(BCSRMatrix.from_block_matrix(a), x),
            "ell": ell_spmv(ELLMatrix.from_block_matrix(a), x),
        }
        for name, y in results.items():
            np.testing.assert_allclose(y, expect, rtol=1e-10, err_msg=name)

    def test_hsbcsr_streams_fewer_bytes_than_csr(self, rng, matrix):
        # the core of the 2.8x claim: half the matrix data + no per-entry
        # column indices
        from repro.gpu.device import K40
        from repro.gpu.kernel import VirtualDevice
        from repro.spmv.hsbcsr import HSBCSRMatrix, hsbcsr_spmv

        a = synthetic_block_matrix(64, 200, seed=5)
        x = rng.normal(size=a.n * BS)
        d_h, d_c = VirtualDevice(K40), VirtualDevice(K40)
        hsbcsr_spmv(HSBCSRMatrix.from_block_matrix(a), x, d_h)
        c = CSRMatrix.from_block_matrix(a)
        csr_spmv(c, x, d_c)
        assert (
            d_h.total_counters.global_bytes_read
            < d_c.total_counters.global_bytes_read
        )


class TestSynthetic:
    def test_spd(self):
        a = synthetic_block_matrix(8, 12, seed=1)
        eigs = np.linalg.eigvalsh(a.to_dense())
        assert (eigs > 0).all()

    def test_exact_counts(self):
        a = synthetic_block_matrix(30, 70, seed=2)
        assert a.n == 30
        assert a.n_offdiag == 70

    def test_deterministic(self):
        a = synthetic_block_matrix(9, 14, seed=4)
        b = synthetic_block_matrix(9, 14, seed=4)
        np.testing.assert_array_equal(a.to_dense(), b.to_dense())

    def test_too_many_offdiag_rejected(self):
        with pytest.raises(ValueError):
            synthetic_block_matrix(4, 100, seed=0)

    def test_paper_case1_dimensions_buildable(self):
        # the Fig-10 matrix: 4361 diagonal / 18731 non-diagonal blocks
        from repro.spmv.synthetic import slope_like_sparsity

        rows, cols = slope_like_sparsity(4361, 18731, seed=0)
        assert rows.size == 18731
        assert (rows < cols).all()
