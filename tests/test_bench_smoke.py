"""Envelope pins for the pipeline smoke benchmark.

The committed ``results/BENCH_pipeline.json`` is the repo's perf
trajectory: the ``payload`` holds the latest full measurement and the
``trajectory`` list accumulates one ``{pr, wall, modelled}`` point per
optimisation PR. These tests pin the writer's append semantics (a
re-run must extend, never clobber, the history) and the bench's
envelope shape, so the CI perf-gate can key on stable fields.

Wall-clock *values* are asserted only as "positive and finite" — the
actual wall/modelled ratio gate lives in CI where the measurement
environment is controlled.
"""

from __future__ import annotations

import json
import math

import pytest

benchmarks_common = pytest.importorskip(
    "benchmarks.common", reason="benchmarks package needs the repo root "
    "on sys.path (run pytest from the checkout)",
)


class TestTrajectoryAppend:
    def test_first_write_starts_at_pr_1(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        benchmarks_common.write_bench_json(
            "x", {"k": 1}, path=path, trajectory={"wall": 2.0, "modelled": 1.0}
        )
        doc = json.loads(path.read_text())
        assert doc["trajectory"] == [{"pr": 1, "wall": 2.0, "modelled": 1.0}]

    def test_rerun_appends_and_keeps_history(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        for wall in (2.0, 1.5, 1.2):
            benchmarks_common.write_bench_json(
                "x", {"wall": wall}, path=path,
                trajectory={"wall": wall, "modelled": 1.0},
            )
        doc = json.loads(path.read_text())
        assert [e["pr"] for e in doc["trajectory"]] == [1, 2, 3]
        assert [e["wall"] for e in doc["trajectory"]] == [2.0, 1.5, 1.2]
        # payload is the latest measurement, not an accumulation
        assert doc["payload"] == {"wall": 1.2}

    def test_no_trajectory_means_plain_overwrite(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        benchmarks_common.write_bench_json(
            "x", {}, path=path, trajectory={"wall": 1.0, "modelled": 1.0}
        )
        benchmarks_common.write_bench_json("x", {"fresh": True}, path=path)
        doc = json.loads(path.read_text())
        assert "trajectory" not in doc
        assert doc["payload"] == {"fresh": True}


class TestPipelineSmokeEnvelope:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        from benchmarks.bench_pipeline_smoke import main

        path = tmp_path_factory.mktemp("bench") / "BENCH_pipeline.json"
        assert main(["--json", str(path)]) == 0
        return json.loads(path.read_text())

    def test_engines_and_modules(self, report):
        engines = report["payload"]["engines"]
        assert set(engines) == {"serial", "gpu", "hybrid"}
        for data in engines.values():
            assert data["n_blocks"] > 0
            assert set(data["wall_seconds_per_module"]) == set(
                data["modeled_seconds_per_module"]
            )

    def test_ratio_and_trajectory_point(self, report):
        ratio = report["payload"]["serial_wall_modelled_ratio"]
        assert ratio is not None and math.isfinite(ratio) and ratio > 0
        (point,) = report["trajectory"]
        assert point["pr"] == 1  # fresh path: history starts here
        assert point["wall"] > 0 and point["modelled"] > 0
        assert ratio == pytest.approx(point["wall"] / point["modelled"])

    def test_committed_report_carries_the_trajectory(self):
        committed = (
            benchmarks_common.RESULTS_DIR / "BENCH_pipeline.json"
        )
        doc = json.loads(committed.read_text())
        assert doc["trajectory"], "committed bench report lost its history"
        last = doc["trajectory"][-1]
        assert {"pr", "wall", "modelled"} <= set(last)
        assert doc["payload"]["serial_wall_modelled_ratio"] == pytest.approx(
            last["wall"] / last["modelled"]
        )
