"""Unit tests for the span tracer and its two export formats."""

import json

import numpy as np
import pytest

from repro.obs.tracer import NULL_TRACER, SpanRecord, Tracer


class TestRecording:
    def test_add_records_span(self):
        tr = Tracer()
        tr.add("contact_detection", step=3, start=0.5, wall_s=0.01,
               device_s=0.002, n_contacts=7)
        (s,) = tr.spans
        assert s.name == "contact_detection"
        assert s.step == 3
        assert s.extras == {"n_contacts": 7}

    def test_disabled_tracer_records_nothing(self):
        tr = Tracer(enabled=False)
        tr.add("x", start=0.0, wall_s=1.0)
        with tr.span("y"):
            pass
        assert tr.spans == []

    def test_null_tracer_is_disabled(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.spans == []

    def test_span_context_manager_measures(self):
        tr = Tracer()
        with tr.span("equation_solving", step=1, cg_iterations=12):
            pass
        (s,) = tr.spans
        assert s.wall_s >= 0.0
        assert s.extras["cg_iterations"] == 12

    def test_numpy_extras_become_json_safe(self):
        tr = Tracer()
        tr.add("step", start=0.0, wall_s=0.0,
               n=np.int64(4), x=np.float64(2.5))
        s = tr.spans[0]
        assert type(s.extras["n"]) is int
        assert type(s.extras["x"]) is float
        json.dumps(s.extras)  # must not raise


class TestAggregation:
    def _tracer(self):
        tr = Tracer()
        tr.add("contact_detection", step=0, start=0.0, wall_s=0.1,
               device_s=0.01)
        tr.add("contact_detection", step=1, start=0.3, wall_s=0.2,
               device_s=0.02)
        tr.add("equation_solving", step=0, start=0.1, wall_s=0.5,
               device_s=0.25)
        tr.add("step", step=0, start=0.0, wall_s=0.7, cg_iterations=40)
        return tr

    def test_module_summary_excludes_step_spans(self):
        summ = self._tracer().module_summary()
        assert set(summ) == {"contact_detection", "equation_solving"}
        cd = summ["contact_detection"]
        assert cd["spans"] == 2
        assert cd["wall_s"] == pytest.approx(0.3)
        assert cd["device_s"] == pytest.approx(0.03)

    def test_step_spans(self):
        steps = self._tracer().step_spans()
        assert len(steps) == 1
        assert steps[0].extras["cg_iterations"] == 40


class TestExportRoundTrip:
    def _tracer(self):
        tr = Tracer(meta={"engine": "GpuEngine", "profile": "Tesla K40"})
        tr.add("contact_detection", step=0, start=0.0, wall_s=0.125,
               device_s=0.5, n_contacts=9)
        tr.add("step", step=0, start=0.0, wall_s=0.25, cg_iterations=17)
        return tr

    def test_jsonl_round_trip(self, tmp_path):
        path = self._tracer().write(tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["type"] == "meta"
        loaded = Tracer.load(path)
        assert loaded.meta["engine"] == "GpuEngine"
        assert len(loaded.spans) == 2
        assert loaded.spans[0].device_s == pytest.approx(0.5)
        assert loaded.spans[1].extras["cg_iterations"] == 17

    def test_chrome_round_trip(self, tmp_path):
        path = self._tracer().write(tmp_path / "t.json")
        loaded = Tracer.load(path)
        assert loaded.meta["profile"] == "Tesla K40"
        # only the authoritative wall-clock track loads back
        assert [s.name for s in loaded.spans] == ["contact_detection", "step"]
        assert loaded.spans[0].wall_s == pytest.approx(0.125)
        assert loaded.spans[0].device_s == pytest.approx(0.5)

    def test_chrome_structure_is_perfetto_compatible(self):
        doc = self._tracer().to_chrome_dict()
        assert "traceEvents" in doc
        assert doc["displayTimeUnit"] == "ms"
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        for ev in complete:
            assert {"name", "pid", "tid", "ts", "dur"} <= set(ev)
            assert ev["ts"] >= 0 and ev["dur"] >= 0
        # metadata names for both tracks
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert {"wall clock", "modelled device"} <= names
        json.dumps(doc)  # strict-JSON clean

    def test_chrome_device_track_synthetic_clock(self):
        tr = Tracer()
        tr.add("a", step=0, start=0.0, wall_s=0.1, device_s=0.01)
        tr.add("b", step=0, start=0.1, wall_s=0.1, device_s=0.02)
        doc = tr.to_chrome_dict()
        dev = [e for e in doc["traceEvents"]
               if e["ph"] == "X" and e["tid"] == 2]
        assert len(dev) == 2
        # back-to-back: second device span starts where the first ended
        assert dev[1]["ts"] == pytest.approx(dev[0]["ts"] + dev[0]["dur"])

    def test_span_with_device_charges_modelled_seconds(self):
        from repro.gpu.counters import KernelCounters
        from repro.gpu.device import K40
        from repro.gpu.kernel import VirtualDevice

        device = VirtualDevice(K40)
        tr = Tracer()
        with tr.span("contact_detection", device=device):
            device.launch("k", KernelCounters(flops=1e9, threads=1024,
                                              warps=32))
        assert tr.spans[0].device_s > 0.0
