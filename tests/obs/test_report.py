"""Tests for the ``python -m repro report`` trace renderer."""

import json

import pytest

from repro.obs.report import build_report, render_report, report_main
from repro.obs.tracer import Tracer
from repro.util.timing import PIPELINE_MODULES


def _trace() -> Tracer:
    tr = Tracer(meta={"engine": "GpuEngine", "profile": "Tesla K40"})
    for step in range(2):
        base = step * 1.0
        tr.add("contact_detection", step=step, start=base, wall_s=0.1,
               device_s=0.01)
        tr.add("equation_solving", step=step, start=base + 0.1, wall_s=0.4,
               device_s=0.1)
        tr.add("step", step=step, start=base, wall_s=0.5,
               cg_iterations=20, open_close_iterations=2, n_contacts=5 + step)
    return tr


class TestBuildReport:
    def test_modules_and_totals(self):
        report = build_report(_trace())
        cd = report["modules"]["contact_detection"]
        assert cd["spans"] == 2
        assert cd["wall_s"] == pytest.approx(0.2)
        assert cd["speedup"] == pytest.approx(10.0)
        assert report["total"]["wall_s"] == pytest.approx(1.0)
        assert report["total"]["speedup"] == pytest.approx(1.0 / 0.22)

    def test_step_aggregates(self):
        report = build_report(_trace())
        assert report["steps"] == 2
        assert report["cg_iterations"] == 40
        assert report["open_close_iterations"] == 4
        assert report["max_contacts"] == 6

    def test_module_order_follows_pipeline(self):
        tr = Tracer()
        # insert out of pipeline order
        tr.add("equation_solving", start=0.0, wall_s=0.1, device_s=0.01)
        tr.add("contact_detection", start=0.0, wall_s=0.1, device_s=0.01)
        tr.add("zzz_custom", start=0.0, wall_s=0.1)
        names = list(build_report(tr)["modules"])
        pipeline_names = [n for n in names if n in PIPELINE_MODULES]
        assert pipeline_names == [
            m for m in PIPELINE_MODULES if m in pipeline_names
        ]
        assert names[-1] == "zzz_custom"  # unknown modules trail

    def test_zero_device_speedup_is_none(self):
        tr = Tracer()
        tr.add("contact_detection", start=0.0, wall_s=0.1, device_s=0.0)
        report = build_report(tr)
        assert report["modules"]["contact_detection"]["speedup"] is None

    def test_report_is_json_safe(self):
        json.dumps(build_report(_trace()))


class TestRender:
    def test_table_contains_columns_and_rows(self):
        text = render_report(build_report(_trace()))
        assert "measured s" in text and "modelled s" in text
        assert "speedup" in text
        assert "contact_detection" in text
        assert "total" in text
        assert "GpuEngine" in text  # meta in the title


class TestMain:
    def test_renders_table_from_file(self, tmp_path, capsys):
        path = _trace().write(tmp_path / "t.json")
        assert report_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "equation_solving" in out

    def test_json_flag(self, tmp_path, capsys):
        path = _trace().write(tmp_path / "t.jsonl")
        assert report_main([str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["steps"] == 2

    def test_missing_file_is_error(self, tmp_path, capsys):
        assert report_main([str(tmp_path / "missing.json")]) == 1

    def test_empty_trace_is_error(self, tmp_path, capsys):
        path = Tracer().write(tmp_path / "empty.json")
        assert report_main([str(path)]) == 1
