"""Acceptance pins: disabled-tracing overhead, Perfetto trace, report.

The ISSUE acceptance criteria this file asserts:

* tracing **disabled** adds under 5% wall-clock overhead to a 50-step
  serial slope run;
* an **enabled** trace of that run has valid Perfetto/Chrome structure
  and ``python -m repro report`` renders the Table-II-style table.

The overhead bound is computed, not differenced: the un-instrumented
baseline no longer exists (the hooks ARE the timing path now), so the
honest measurement is (cost of one disabled hook) x (number of hook
invocations the run made) against the run's measured wall time. The
disabled hook is ``tracer.enabled`` attribute checks plus the
metrics-counter adds — nanoseconds against a run that takes seconds.
"""

import time

import pytest

from repro.engine.serial_engine import SerialEngine
from repro.meshing.slope_models import build_slope_model
from repro.obs.tracer import NULL_TRACER, Tracer

STEPS = 50
SPACING = 16.0
SEED = 3


@pytest.fixture(scope="module")
def slope_run():
    """One 50-step serial slope run with the default (disabled) tracer."""
    system = build_slope_model(joint_spacing=SPACING, seed=SEED)
    engine = SerialEngine(system)
    start = time.perf_counter()
    result = engine.run(steps=STEPS)
    wall = time.perf_counter() - start
    return engine, result, wall


def test_disabled_tracer_never_allocates(slope_run):
    engine, result, _ = slope_run
    assert engine.tracer is NULL_TRACER
    assert engine.tracer.spans == []


def test_disabled_overhead_under_5_percent(slope_run):
    engine, result, wall = slope_run
    # Count every per-step hook the run executed: one _stage context
    # per module invocation (the span ledger of an enabled twin counts
    # them exactly) plus one _observe_step per accepted step.
    solves = sum(s.open_close_iterations for s in result.steps)
    accepted = result.n_steps
    # stage hooks: detection+diagonal once per attempt, nondiag/solve/
    # check once per open-close iteration, update once per accepted
    # step; retries re-run stages, so bound generously by 4x.
    stage_hooks = 4 * (2 * accepted + 3 * solves + accepted)

    # Microbenchmark the disabled hook: tracer.enabled check + the
    # metrics increments _observe_step does. min-of-N against a tight
    # loop isolates the per-hook cost from scheduler noise.
    tracer = NULL_TRACER
    reps = 20_000
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(reps):
            if tracer.enabled:  # the _stage guard
                raise AssertionError
            engine.metrics.inc("overhead.probe")
            engine.metrics.inc("overhead.probe2")
        best = min(best, time.perf_counter() - t0)
    per_hook = best / reps

    overhead = per_hook * stage_hooks
    assert overhead < 0.05 * wall, (
        f"disabled-tracing overhead {overhead * 1e3:.3f} ms is not under "
        f"5% of the {wall:.2f} s run ({stage_hooks} hooks at "
        f"{per_hook * 1e9:.0f} ns each)"
    )


def test_enabled_trace_is_perfetto_loadable_and_reportable(tmp_path, capsys):
    import json

    from repro.obs.report import report_main

    system = build_slope_model(joint_spacing=SPACING, seed=SEED)
    tracer = Tracer(enabled=True)
    engine = SerialEngine(system, tracer=tracer)
    result = engine.run(steps=10)

    path = tracer.write(tmp_path / "slope.json")
    doc = json.loads(path.read_text())
    # Perfetto/chrome://tracing structural requirements
    assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
    for ev in doc["traceEvents"]:
        assert "ph" in ev and "pid" in ev
        if ev["ph"] == "X":
            assert ev["ts"] >= 0 and ev["dur"] >= 0
    tids = {ev.get("tid") for ev in doc["traceEvents"] if ev["ph"] == "X"}
    assert {1, 2} <= tids  # wall track and modelled-device track

    assert report_main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "equation_solving" in out
    assert "speedup" in out
    assert f"steps: {result.n_steps}" in out
