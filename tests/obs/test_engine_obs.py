"""Engine integration: spans and metrics from real pipeline runs."""

import numpy as np
import pytest

from repro.core.blocks import Block, BlockSystem
from repro.core.materials import BlockMaterial
from repro.core.state import ResilienceControls, SimulationControls
from repro.engine.gpu_engine import GpuEngine
from repro.engine.serial_engine import SerialEngine
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.util.timing import PIPELINE_MODULES

SQ = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
MAT = BlockMaterial(young=1e9)


def stacked() -> BlockSystem:
    base = np.array([[0, 0], [3, 0], [3, 1], [0, 1.0]])
    s = BlockSystem([Block(base, MAT), Block(SQ + np.array([1.0, 1.0]), MAT)])
    s.fix_block(0)
    return s


def controls(**over) -> SimulationControls:
    defaults = dict(time_step=1e-3, dynamic=True, max_displacement_ratio=0.05)
    defaults.update(over)
    return SimulationControls(**defaults)


@pytest.mark.parametrize("engine_cls", [SerialEngine, GpuEngine])
class TestTracedRun:
    def test_spans_cover_all_six_modules(self, engine_cls):
        tr = Tracer()
        eng = engine_cls(stacked(), controls(), tracer=tr)
        eng.run(steps=3)
        names = {s.name for s in tr.spans}
        assert set(PIPELINE_MODULES) <= names
        assert "step" in names

    def test_step_spans_carry_diagnostics(self, engine_cls):
        tr = Tracer()
        eng = engine_cls(stacked(), controls(), tracer=tr)
        result = eng.run(steps=3)
        steps = tr.step_spans()
        assert len(steps) == result.n_steps
        for span, rec in zip(steps, result.steps):
            assert span.extras["cg_iterations"] == rec.cg_iterations
            assert span.extras["n_contacts"] == rec.n_contacts
            assert span.extras["dt"] == pytest.approx(rec.dt)

    def test_span_wall_consistent_with_module_times(self, engine_cls):
        tr = Tracer()
        eng = engine_cls(stacked(), controls(), tracer=tr)
        result = eng.run(steps=3)
        summ = tr.module_summary()
        # the spans ARE the ModuleTimes measurements: identical totals
        for module, seconds in result.module_times.times.items():
            assert summ[module]["wall_s"] == pytest.approx(seconds, rel=1e-9)

    def test_span_device_seconds_sum_to_ledger(self, engine_cls):
        tr = Tracer()
        eng = engine_cls(stacked(), controls(), tracer=tr)
        result = eng.run(steps=3)
        traced_dev = sum(
            d["device_s"] for d in tr.module_summary().values()
        )
        assert traced_dev == pytest.approx(result.device.total_time,
                                           rel=1e-9)

    def test_tracer_meta_stamped(self, engine_cls):
        tr = Tracer()
        eng = engine_cls(stacked(), controls(), tracer=tr)
        eng.run(steps=1)
        assert tr.meta["engine"] == engine_cls.__name__
        assert tr.meta["n_blocks"] == 2

    def test_traced_run_trajectory_identical_to_untraced(self, engine_cls):
        s1, s2 = stacked(), stacked()
        engine_cls(s1, controls()).run(steps=4)
        engine_cls(s2, controls(), tracer=Tracer()).run(steps=4)
        np.testing.assert_array_equal(s1.vertices, s2.vertices)
        np.testing.assert_array_equal(s1.velocities, s2.velocities)


@pytest.mark.parametrize("engine_cls", [SerialEngine, GpuEngine])
class TestMetricsFromRun:
    def test_headline_series_present(self, engine_cls):
        eng = engine_cls(stacked(), controls())
        result = eng.run(steps=3)
        snap = result.metrics.snapshot()
        for key in (
            "contacts.VE", "contacts.VV1", "contacts.VV2",
            "contact_transfer.hits", "contact_transfer.misses",
            "solver.rung_escalations", "engine.rollbacks",
            "contracts.violations", "engine.steps",
        ):
            assert key in snap["counters"], key
        assert "cg.iterations" in snap["histograms"]
        assert snap["counters"]["engine.steps"] == result.n_steps

    def test_cg_histogram_matches_step_records(self, engine_cls):
        eng = engine_cls(stacked(), controls())
        result = eng.run(steps=3)
        hist = result.metrics.snapshot()["histograms"]["cg.iterations"]
        assert hist["sum"] == result.total_cg_iterations
        solves = sum(s.open_close_iterations for s in result.steps)
        assert hist["count"] >= solves

    def test_contact_class_counts_accumulate(self, engine_cls):
        eng = engine_cls(stacked(), controls())
        result = eng.run(steps=3)
        counters = result.metrics.snapshot()["counters"]
        total_contacts = sum(
            counters[f"contacts.{k}"] for k in ("VE", "VV1", "VV2")
        )
        assert total_contacts == sum(s.n_contacts for s in result.steps)

    def test_shared_registry_accumulates_across_runs(self, engine_cls):
        reg = MetricsRegistry()
        engine_cls(stacked(), controls(), metrics=reg).run(steps=2)
        engine_cls(stacked(), controls(), metrics=reg).run(steps=2)
        assert reg.snapshot()["counters"]["engine.steps"] == 4


class TestFaultedRunMetrics:
    def test_rollbacks_and_violations_counted(self):
        from repro.engine.chaos import FaultInjector

        injector = FaultInjector(["matrix_nan"], seed=3, start_step=1)
        eng = GpuEngine(
            stacked(),
            controls(
                contract_level="full",
                resilience=ResilienceControls(
                    checkpoint_every=1, max_rollbacks=10
                ),
            ),
            fault_injector=injector,
        )
        result = eng.run(steps=4)
        assert result.rollbacks >= 1
        counters = result.metrics.snapshot()["counters"]
        assert counters["engine.rollbacks"] == result.rollbacks
        assert counters["contracts.violations"] == sum(
            result.contract_violations.values()
        )
        # per-stage breakdown counters exist for every tripped stage
        for stage, count in result.contract_violations.items():
            assert counters[f"contracts.violations.{stage}"] == count
