"""Unit tests for the metrics registry and snapshot tooling."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_EDGES,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    render_snapshot,
)


class TestCounters:
    def test_inc_and_snapshot(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        reg.inc("b", 0)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 5, "b": 0}

    def test_counter_is_get_or_create(self):
        reg = MetricsRegistry()
        c1 = reg.counter("x")
        c2 = reg.counter("x")
        assert c1 is c2

    def test_snapshot_values_are_pure_python(self):
        import numpy as np

        reg = MetricsRegistry()
        reg.inc("n", int(np.int64(7)))
        reg.gauge("g").set(float(np.float64(1.5)))
        snap = reg.snapshot()
        # must survive strict JSON round-trip
        again = json.loads(json.dumps(snap))
        assert again["counters"]["n"] == 7
        assert again["gauges"]["g"] == 1.5


class TestGauges:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("temp").set(3.0)
        reg.gauge("temp").set(9.0)
        assert reg.snapshot()["gauges"]["temp"] == 9


class TestHistogram:
    def test_bucketing_inclusive_upper(self):
        h = Histogram(edges=(1, 2, 5))
        for v in (1, 2, 2, 3, 100):
            h.observe(v)
        assert h.buckets == [1, 2, 1, 1]
        assert h.count == 5
        assert h.min == 1 and h.max == 100
        assert h.mean == pytest.approx(108 / 5)

    def test_labels(self):
        h = Histogram(edges=(1, 10))
        assert h.bucket_labels() == ["<=1", "<=10", ">10"]

    def test_default_edges_cover_cg_cap(self):
        assert DEFAULT_EDGES[-1] == 200

    def test_empty_histogram_snapshot(self):
        reg = MetricsRegistry()
        reg.histogram("empty")
        snap = reg.snapshot()["histograms"]["empty"]
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None


class TestMerge:
    def test_counters_add(self):
        a = {"counters": {"x": 1, "y": 2}, "gauges": {}, "histograms": {}}
        b = {"counters": {"x": 10}, "gauges": {}, "histograms": {}}
        assert merge_snapshots(a, b)["counters"] == {"x": 11, "y": 2}

    def test_histograms_merge(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        for v in (1, 5):
            r1.histogram("h").observe(v)
        for v in (100, 300):
            r2.histogram("h").observe(v)
        merged = merge_snapshots(r1.snapshot(), r2.snapshot())
        h = merged["histograms"]["h"]
        assert h["count"] == 4
        assert h["min"] == 1 and h["max"] == 300
        assert h["mean"] == pytest.approx(406 / 4)
        assert h["buckets"][">200"] == 1

    def test_skips_empty_snapshots(self):
        reg = MetricsRegistry()
        reg.inc("k")
        merged = merge_snapshots({}, reg.snapshot(), {})
        assert merged["counters"] == {"k": 1}

    def test_merge_of_nothing(self):
        assert merge_snapshots() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }


class TestRender:
    def test_render_contains_series(self):
        reg = MetricsRegistry()
        reg.inc("contacts.VE", 3)
        reg.histogram("cg.iterations").observe(42)
        text = render_snapshot(reg.snapshot())
        assert "contacts.VE" in text
        assert "cg.iterations" in text
        assert "<=50" in text

    def test_render_orders_buckets_after_json_roundtrip(self):
        reg = MetricsRegistry()
        for v in (1, 3, 15, 150):
            reg.histogram("h").observe(v)
        # sort_keys scrambles dict order the way batch outcomes do
        snap = json.loads(json.dumps(reg.snapshot(), sort_keys=True))
        text = render_snapshot(snap)
        lines = [l for l in text.splitlines() if "<=" in l or ">" in l]
        labels = [l.split()[0] for l in lines]
        assert labels == [
            "<=1", "<=2", "<=5", "<=10", "<=20", "<=50", "<=100", "<=200",
            ">200",
        ]

    def test_render_empty(self):
        assert "no metrics" in render_snapshot({})
