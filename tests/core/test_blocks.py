import numpy as np
import pytest

from repro.core.blocks import DOF, Block, BlockSystem
from repro.core.materials import BlockMaterial, JointMaterial
from repro.util.validation import ShapeError

SQ = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])


class TestBlock:
    def test_ccw_normalisation(self):
        b = Block(SQ[::-1])
        assert b.area > 0

    def test_area_centroid(self):
        b = Block(SQ * 2)
        assert b.area == pytest.approx(4.0)
        np.testing.assert_allclose(b.centroid, [1.0, 1.0])

    def test_degenerate_rejected(self):
        with pytest.raises(ShapeError):
            Block(np.array([[0, 0], [1, 0], [2, 0]], dtype=float))

    def test_second_moments(self):
        sxx, syy, sxy = Block(SQ).second_moments
        assert sxx == pytest.approx(1 / 12)

    def test_aabb(self):
        np.testing.assert_allclose(Block(SQ + 3).aabb, [3, 3, 4, 4])


class TestBlockSystem:
    def _two_blocks(self):
        return BlockSystem([Block(SQ), Block(SQ + np.array([2.0, 0.0]))])

    def test_counts(self):
        s = self._two_blocks()
        assert s.n_blocks == 2
        assert s.n_dof == 2 * DOF
        assert s.vertices.shape == (8, 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BlockSystem([])

    def test_block_vertices_view(self):
        s = self._two_blocks()
        np.testing.assert_allclose(s.block_vertices(1), SQ + np.array([2.0, 0.0]))

    def test_cached_quantities(self):
        s = self._two_blocks()
        np.testing.assert_allclose(s.areas, [1.0, 1.0])
        np.testing.assert_allclose(s.centroids[0], [0.5, 0.5])
        np.testing.assert_allclose(s.centroids[1], [2.5, 0.5])

    def test_material_dedup(self):
        m = BlockMaterial(density=1000.0)
        s = BlockSystem([Block(SQ, m), Block(SQ + 2, m), Block(SQ + 4)])
        assert len(s.materials) == 2
        assert s.material_of(0) is s.material_of(1)

    def test_block_of_vertex(self):
        s = self._two_blocks()
        np.testing.assert_array_equal(s.block_of_vertex(), [0] * 4 + [1] * 4)

    def test_edges_are_ccw_loops(self):
        s = self._two_blocks()
        a, b, owner = s.edges()
        assert a.shape == b.shape == (8, 2)
        np.testing.assert_array_equal(owner, [0] * 4 + [1] * 4)
        # each block's edges close the loop
        np.testing.assert_allclose(b[3], a[0])
        np.testing.assert_allclose(b[7], a[4])

    def test_fix_point_validates_block(self):
        s = self._two_blocks()
        with pytest.raises(IndexError):
            s.fix_point(5, 0.0, 0.0)

    def test_fix_block_adds_two_points(self):
        s = self._two_blocks()
        s.fix_block(0)
        assert len(s.fixed_points) == 2
        # the two points are well separated
        (_, x1, y1), (_, x2, y2) = s.fixed_points
        assert np.hypot(x2 - x1, y2 - y1) > 1.0

    def test_add_point_load(self):
        s = self._two_blocks()
        s.add_point_load(1, 2.5, 0.5, 0.0, -10.0)
        assert s.load_points == [(1, 2.5, 0.5, 0.0, -10.0)]

    def test_copy_independent(self):
        s = self._two_blocks()
        s.fix_block(0)
        s.velocities[1, 0] = 3.0
        c = s.copy()
        c.vertices[0, 0] = 99.0
        c.velocities[1, 0] = 0.0
        assert s.vertices[0, 0] == 0.0
        assert s.velocities[1, 0] == 3.0
        assert c.fixed_points == s.fixed_points

    def test_to_blocks_roundtrip(self):
        s = self._two_blocks()
        blocks = s.to_blocks()
        s2 = BlockSystem(blocks)
        np.testing.assert_allclose(s2.vertices, s.vertices)
