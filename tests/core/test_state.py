import pytest

from repro.core.state import SimulationControls


class TestSimulationControls:
    def test_defaults(self):
        c = SimulationControls()
        assert c.cg_max_iterations == 200  # the paper's re-step threshold
        assert not c.dynamic

    def test_invalid_time_step(self):
        with pytest.raises(ValueError):
            SimulationControls(time_step=0.0)

    def test_invalid_gravity(self):
        with pytest.raises(ValueError):
            SimulationControls(gravity=-9.8)

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            SimulationControls(max_displacement_ratio=0.0)
        with pytest.raises(ValueError):
            SimulationControls(max_displacement_ratio=1.5)

    def test_invalid_penalty(self):
        with pytest.raises(ValueError):
            SimulationControls(penalty_scale=-1.0)

    def test_invalid_open_close(self):
        with pytest.raises(ValueError):
            SimulationControls(max_open_close_iterations=0)

    def test_invalid_preconditioner(self):
        with pytest.raises(ValueError, match="preconditioner"):
            SimulationControls(preconditioner="amg")

    def test_all_preconditioners_accepted(self):
        for p in ("bj", "ssor", "ilu", "none"):
            assert SimulationControls(preconditioner=p).preconditioner == p
