import math

import numpy as np
import pytest

from repro.core.materials import BlockMaterial, JointMaterial


class TestBlockMaterial:
    def test_defaults_valid(self):
        m = BlockMaterial()
        assert m.density > 0

    def test_plane_stress_matrix(self):
        m = BlockMaterial(young=1.0, poisson=0.0)
        e = m.elastic_matrix()
        np.testing.assert_allclose(e, np.diag([1.0, 1.0, 0.5]))

    def test_plane_stress_poisson_coupling(self):
        m = BlockMaterial(young=2.0, poisson=0.5 - 1e-9)
        e = m.elastic_matrix()
        assert e[0, 1] == pytest.approx(e[1, 0])
        assert e[0, 1] > 0

    def test_plane_strain_stiffer(self):
        ps = BlockMaterial(young=1.0, poisson=0.3, plane_strain=False)
        pe = BlockMaterial(young=1.0, poisson=0.3, plane_strain=True)
        assert pe.elastic_matrix()[0, 0] > ps.elastic_matrix()[0, 0]

    def test_elastic_matrix_spd(self):
        e = BlockMaterial(young=5e9, poisson=0.25).elastic_matrix()
        eigs = np.linalg.eigvalsh(e)
        assert (eigs > 0).all()

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            BlockMaterial(density=-1)

    def test_invalid_poisson(self):
        with pytest.raises(ValueError):
            BlockMaterial(poisson=0.5)

    def test_invalid_young(self):
        with pytest.raises(ValueError):
            BlockMaterial(young=0.0)

    def test_frozen_hashable(self):
        assert hash(BlockMaterial()) == hash(BlockMaterial())


class TestJointMaterial:
    def test_tan_phi(self):
        j = JointMaterial(friction_angle_deg=45.0)
        assert j.tan_phi == pytest.approx(1.0)

    def test_zero_friction(self):
        assert JointMaterial(friction_angle_deg=0.0).tan_phi == 0.0

    def test_invalid_angle(self):
        with pytest.raises(ValueError):
            JointMaterial(friction_angle_deg=90.0)

    def test_invalid_cohesion(self):
        with pytest.raises(ValueError):
            JointMaterial(cohesion=-1.0)

    def test_invalid_tensile(self):
        with pytest.raises(ValueError):
            JointMaterial(tensile_strength=-0.5)
