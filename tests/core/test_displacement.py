import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.displacement import (
    displace_points,
    displacement_matrix,
    update_geometry,
)

SQ = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
CENTER = np.array([0.5, 0.5])


class TestDisplacementMatrix:
    def test_shape(self):
        t = displacement_matrix(SQ, np.tile(CENTER, (4, 1)))
        assert t.shape == (4, 2, 6)

    def test_translation_columns(self):
        t = displacement_matrix(SQ, np.tile(CENTER, (4, 1)))
        np.testing.assert_allclose(t[:, 0, 0], 1.0)
        np.testing.assert_allclose(t[:, 1, 1], 1.0)
        np.testing.assert_allclose(t[:, 0, 1], 0.0)

    def test_rotation_column_at_centroid_zero(self):
        t = displacement_matrix(CENTER[None, :], CENTER[None, :])
        np.testing.assert_allclose(t[0, :, 2], 0.0)

    def test_rotation_column(self):
        p = np.array([[1.0, 0.5]])  # dx=0.5, dy=0
        t = displacement_matrix(p, CENTER[None, :])
        # u = -dy*r = 0, v = dx*r = 0.5 r
        assert t[0, 0, 2] == pytest.approx(0.0)
        assert t[0, 1, 2] == pytest.approx(0.5)

    def test_shear_column_symmetric(self):
        p = np.array([[1.0, 1.0]])
        t = displacement_matrix(p, CENTER[None, :])
        assert t[0, 0, 5] == pytest.approx(0.25)
        assert t[0, 1, 5] == pytest.approx(0.25)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            displacement_matrix(SQ, CENTER[None, :])


class TestDisplacePoints:
    def test_pure_translation(self):
        d = np.array([0.3, -0.2, 0, 0, 0, 0.0])
        out = displace_points(SQ, CENTER, d)
        np.testing.assert_allclose(out, SQ + [0.3, -0.2])

    def test_pure_strain(self):
        d = np.array([0, 0, 0, 0.1, 0.0, 0.0])
        out = displace_points(SQ, CENTER, d)
        # ex stretches x about the centroid
        np.testing.assert_allclose(out[:, 0] - 0.5, (SQ[:, 0] - 0.5) * 1.1)
        np.testing.assert_allclose(out[:, 1], SQ[:, 1])

    def test_small_rotation_first_order(self):
        r = 1e-6
        d = np.array([0, 0, r, 0, 0, 0.0])
        out = displace_points(SQ, CENTER, d)
        exact = update_geometry(SQ, CENTER, d)
        np.testing.assert_allclose(out, exact, atol=1e-11)


class TestUpdateGeometry:
    def test_finite_rotation_preserves_shape(self):
        d = np.array([0, 0, 0.5, 0, 0, 0.0])  # ~28.6 degrees
        out = update_geometry(SQ, CENTER, d)
        # area preserved under exact rotation (first-order would inflate)
        from repro.geometry.polygon import polygon_area

        assert polygon_area(out) == pytest.approx(1.0, rel=1e-12)

    def test_first_order_rotation_inflates(self):
        from repro.geometry.polygon import polygon_area

        d = np.array([0, 0, 0.5, 0, 0, 0.0])
        inflated = displace_points(SQ, CENTER, d)
        assert polygon_area(inflated) > 1.01

    def test_translation(self):
        d = np.array([1.0, 2.0, 0, 0, 0, 0.0])
        np.testing.assert_allclose(update_geometry(SQ, CENTER, d), SQ + [1, 2])

    def test_strain_changes_area_consistently(self):
        from repro.geometry.polygon import polygon_area

        d = np.array([0, 0, 0, 0.1, 0.1, 0.0])
        out = update_geometry(SQ, CENTER, d)
        assert polygon_area(out) == pytest.approx(1.1 * 1.1)

    @given(
        st.floats(min_value=-0.01, max_value=0.01),
        st.floats(min_value=-0.01, max_value=0.01),
        st.floats(min_value=-0.01, max_value=0.01),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_agrees_with_linear_at_small_d(self, u0, v0, r0):
        d = np.array([u0, v0, r0, 0, 0, 0.0])
        lin = displace_points(SQ, CENTER, d)
        ex = update_geometry(SQ, CENTER, d)
        np.testing.assert_allclose(lin, ex, atol=1e-4)
