"""Scatter-write race sanitizer: unit level and engine level.

Engine-level tests mirror the chaos fault matrix: the
``scatter_duplicate_index`` fault plants a duplicate destination in the
sanitizer's shadow view of an instrumented scatter, and the run must
detect it (contract violation), recover it (rollback), and complete.
"""

import numpy as np
import pytest

from repro.core.blocks import Block, BlockSystem
from repro.core.materials import BlockMaterial
from repro.core.state import ResilienceControls, SimulationControls
from repro.engine.chaos import FaultInjector
from repro.engine.contracts import ContractViolation
from repro.engine.gpu_engine import GpuEngine
from repro.engine.serial_engine import SerialEngine
from repro.lint.sanitize import (
    RaceFinding,
    ScatterSanitizer,
    active_sanitizer,
    sanitized,
    scatter_check,
)
from repro.obs.metrics import MetricsRegistry

SQ = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
MAT = BlockMaterial(young=1e9)


def stacked() -> BlockSystem:
    base = np.array([[0, 0], [3, 0], [3, 1], [0, 1.0]])
    s = BlockSystem([Block(base, MAT), Block(SQ + np.array([1.0, 1.0]), MAT)])
    s.fix_block(0)
    return s


def sanitize_controls(**over) -> SimulationControls:
    res = dict(checkpoint_every=1, max_rollbacks=10)
    res.update(over.pop("resilience", {}))
    return SimulationControls(
        time_step=1e-3, dynamic=True, max_displacement_ratio=0.05,
        contract_level="full", sanitize=True,
        resilience=ResilienceControls(**res), **over,
    )


# ----------------------------------------------------------------------
# unit level: ScatterSanitizer.check
# ----------------------------------------------------------------------

def test_unique_targets_pass():
    s = ScatterSanitizer(raise_on_race=False)
    s.check("k", np.array([3, 1, 2, 0]))
    assert s.checks == 1
    assert not s.findings


def test_duplicate_targets_raise_recoverable_violation():
    s = ScatterSanitizer()
    with pytest.raises(ContractViolation) as err:
        s.check("assemble.diag", np.array([0, 1, 1, 2]))
    assert err.value.recoverable
    assert err.value.contract == "scatter_race"
    assert "assemble.diag" in str(err.value)
    [finding] = s.findings
    assert finding.kernel == "assemble.diag"
    assert finding.indices == (1,)
    assert finding.writers == ((1, 2),)  # the two colliding store slots


def test_reduction_combinator_exempts_duplicates():
    """np.add.at-style scatter-adds declare reduction='sum': no race."""
    s = ScatterSanitizer()
    s.check("scatter_add", np.array([0, 1, 1, 2]), reduction="sum")
    assert s.checks == 1
    assert not s.findings


def test_record_only_mode_and_metrics():
    metrics = MetricsRegistry()
    metrics.counter("lint.races")
    metrics.counter("lint.scatter_checks")
    s = ScatterSanitizer(metrics=metrics, raise_on_race=False)
    s.check("k", np.array([5, 5, 7, 7, 9]))
    snap = metrics.snapshot()
    assert snap["counters"]["lint.scatter_checks"] == 1
    assert snap["counters"]["lint.races"] == 2  # two duplicated indices
    [finding] = s.findings
    assert finding.indices == (5, 7)


def test_finding_message_names_kernel_and_step():
    finding = RaceFinding(
        kernel="radix_pass0.scatter", stage="contact_detection", step=3,
        indices=(4,), writers=((0, 9),),
    )
    msg = finding.message()
    assert "radix_pass0.scatter" in msg
    assert "step 3" in msg
    assert "index 4" in msg


# ----------------------------------------------------------------------
# module-level hook: the disabled fast path and the armed path
# ----------------------------------------------------------------------

def test_scatter_check_is_noop_when_disabled():
    assert active_sanitizer() is None
    # duplicates everywhere, but nobody is armed: must not raise
    scatter_check("k", np.array([1, 1, 1]))


def test_sanitized_context_arms_and_restores():
    s = ScatterSanitizer(raise_on_race=False)
    assert active_sanitizer() is None
    with sanitized(s) as armed:
        assert armed is s
        assert active_sanitizer() is s
        scatter_check("k", np.array([2, 2]))
    assert active_sanitizer() is None
    assert s.checks == 1
    assert len(s.findings) == 1


def test_sanitized_restores_on_raise():
    s = ScatterSanitizer()
    with pytest.raises(ContractViolation):
        with sanitized(s):
            scatter_check("k", np.array([0, 0]))
    assert active_sanitizer() is None


# ----------------------------------------------------------------------
# engine level: clean runs and the planted chaos race
# ----------------------------------------------------------------------

@pytest.mark.parametrize("engine_cls", [SerialEngine, GpuEngine])
def test_clean_run_has_checks_but_no_races(engine_cls):
    eng = engine_cls(stacked(), sanitize_controls())
    result = eng.run(steps=3)
    assert eng.sanitizer is not None
    assert eng.sanitizer.checks > 0, "no scatter site was instrumented"
    assert not eng.sanitizer.findings
    assert result.failure is None
    snap = result.metrics.snapshot()
    assert snap["counters"]["lint.races"] == 0
    assert (
        snap["counters"]["lint.scatter_checks"] == eng.sanitizer.checks
    )


@pytest.mark.parametrize("engine_cls", [SerialEngine, GpuEngine])
def test_planted_race_detected_and_recovered(engine_cls):
    injector = FaultInjector(
        ["scatter_duplicate_index"], seed=3, start_step=1
    )
    eng = engine_cls(
        stacked(), sanitize_controls(), fault_injector=injector
    )
    result = eng.run(steps=4)
    # (a) the fault landed on an instrumented scatter
    assert injector.injected
    assert injector.injected[0].stage == "scatter_write"
    # (b) the sanitizer saw the duplicate, not some other contract
    assert eng.sanitizer.findings
    assert sum(result.contract_violations.values()) >= 1
    # (c) rollback recovered it and the run completed on clean data
    assert result.rollbacks >= 1
    assert result.failure is None
    assert result.n_steps == 4
    assert np.isfinite(eng.system.vertices).all()


def test_sanitizer_disabled_leaves_engine_unarmed():
    eng = GpuEngine(stacked(), SimulationControls(time_step=1e-3))
    result = eng.run(steps=2)
    assert eng.sanitizer is None
    assert result.failure is None
    # the fault that needs the sanitizer reports itself inapplicable
    injector = FaultInjector(
        ["scatter_duplicate_index"], seed=0, start_step=0
    )
    eng2 = GpuEngine(
        stacked(), SimulationControls(time_step=1e-3),
        fault_injector=injector,
    )
    eng2.run(steps=2)
    assert not injector.injected
    assert injector.pending == ["scatter_duplicate_index"]
