"""Call-graph closure: edge cases, attribution, and real-package pins.

The corpus tests exercise the resolver on the shapes the summary calls
out — import cycles, ``from x import y as z`` aliasing, calls through
module attributes — plus the cross-module suppression contract (an
annotation at the *definition* silences a closure finding; one at the
kernel call site does not). The real-package tests pin what the
closure actually covers so a resolver regression shows up as a diff of
module names, not as silently vanished findings.
"""

import json
from functools import lru_cache
from pathlib import Path

from repro.lint.callgraph import MODULE_SCOPE, build_program
from repro.lint.framework import (
    SourceModule,
    default_root,
    run_lint,
    walk_files,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def corpus(tmp_path: Path, files: dict[str, str]) -> Path:
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return tmp_path


def program_for(root: Path):
    modules = [SourceModule(root, p) for p in walk_files(root)]
    return build_program(root, modules)


@lru_cache(maxsize=1)
def real_program():
    return program_for(default_root())


#: A host helper with one DDA001 violation (axis loop).
HELPER = (
    "def helper(a, n):\n"
    "    for i in range(n):\n"
    "        pass\n"
    "    return a\n"
)


# ----------------------------------------------------------------------
# resolution edge cases (corpus)
# ----------------------------------------------------------------------

def test_closure_through_plain_from_import(tmp_path):
    root = corpus(tmp_path, {
        "contact/k.py": (
            "from util.h import helper\n"
            "def kernel(a, n_contacts):\n"
            "    return helper(a, n_contacts)\n"
        ),
        "util/h.py": HELPER,
    })
    report = run_lint(root, select={"DDA001"})
    (finding,) = report.findings
    assert finding.file == "util/h.py"
    assert finding.line == 2
    assert finding.function == "helper"
    # provenance points back at the kernel-path call site
    assert finding.via[0] == ("contact/k.py", 3, "kernel")
    assert "[kernel closure via contact/k.py:3 (kernel)]" in (
        finding.render()
    )


def test_closure_through_import_alias(tmp_path):
    # `from x import y as z` — the alias is what the call site spells
    root = corpus(tmp_path, {
        "contact/k.py": (
            "from util.h import helper as hp\n"
            "def kernel(a, n_contacts):\n"
            "    return hp(a, n_contacts)\n"
        ),
        "util/h.py": HELPER,
    })
    report = run_lint(root, select={"DDA001"})
    assert [f.file for f in report.findings] == ["util/h.py"]


def test_closure_through_module_attribute_calls(tmp_path):
    # `import util.h as uh; uh.helper(...)` and the fully dotted
    # `import util.h; util.h.helper(...)` both resolve
    root = corpus(tmp_path, {
        "contact/k.py": (
            "import util.h as uh\n"
            "def kernel(a, n_contacts):\n"
            "    return uh.helper(a, n_contacts)\n"
        ),
        "assembly/k.py": (
            "import util.g\n"
            "def kernel(a, n_blocks):\n"
            "    return util.g.helper2(a, n_blocks)\n"
        ),
        "util/h.py": HELPER,
        "util/g.py": HELPER.replace("helper", "helper2"),
    })
    report = run_lint(root, select={"DDA001"})
    assert sorted(f.file for f in report.findings) == [
        "util/g.py", "util/h.py",
    ]


def test_closure_survives_import_cycles(tmp_path):
    # a <-> b mutual recursion: the closure of the clique is the
    # clique, and the sweep terminates
    root = corpus(tmp_path, {
        "contact/k.py": (
            "from util.a import ping\n"
            "def kernel(n_contacts):\n"
            "    return ping(n_contacts)\n"
        ),
        "util/a.py": (
            "from util.b import pong\n"
            "def ping(n):\n"
            "    return pong(n)\n"
        ),
        "util/b.py": (
            "from util.a import ping\n"
            "def pong(n):\n"
            "    for i in range(n):\n"
            "        pass\n"
            "    return ping(n - 1)\n"
        ),
    })
    program = program_for(root)
    assert program.in_closure("util/a.py", "ping")
    assert program.in_closure("util/b.py", "pong")
    report = run_lint(root, select={"DDA001"})
    assert [f.file for f in report.findings] == ["util/b.py"]


def test_reexport_chase_through_package_init(tmp_path):
    root = corpus(tmp_path, {
        "contact/k.py": (
            "from util import helper\n"
            "def kernel(a, n_contacts):\n"
            "    return helper(a, n_contacts)\n"
        ),
        "util/__init__.py": "from util.h import helper\n",
        "util/h.py": HELPER,
    })
    report = run_lint(root, select={"DDA001"})
    assert [f.file for f in report.findings] == ["util/h.py"]


def test_unreachable_helper_stays_out_of_closure(tmp_path):
    root = corpus(tmp_path, {
        "contact/k.py": (
            "def kernel(a):\n"
            "    return a\n"
        ),
        "util/h.py": HELPER,
    })
    program = program_for(root)
    assert not program.in_closure("util/h.py", "helper")
    report = run_lint(root, select={"DDA001"})
    assert not report.findings


def test_external_names_never_resolve(tmp_path):
    # np.sum / math.ceil are not repo code; an accidental local def
    # named `sum`-adjacent must not be dragged into the closure
    root = corpus(tmp_path, {
        "contact/k.py": (
            "import numpy as np\n"
            "import math\n"
            "def kernel(a):\n"
            "    return np.sum(a) + math.ceil(1.5)\n"
        ),
        "util/h.py": (
            "def ceil(n):\n"
            "    for i in range(n):\n"
            "        pass\n"
        ),
    })
    program = program_for(root)
    assert not program.in_closure("util/h.py", "ceil")


# ----------------------------------------------------------------------
# cross-module suppression scoping
# ----------------------------------------------------------------------

def test_annotation_at_definition_silences_closure_finding(tmp_path):
    root = corpus(tmp_path, {
        "contact/k.py": (
            "from util.h import helper\n"
            "def kernel(a, n_contacts):\n"
            "    return helper(a, n_contacts)\n"
        ),
        "util/h.py": (
            "def helper(a, n):\n"
            "    # lint: host-ok[DDA001] -- documented serial reference\n"
            "    for i in range(n):\n"
            "        pass\n"
            "    return a\n"
        ),
    })
    report = run_lint(root, select={"DDA001"})
    assert not report.findings


def test_annotation_at_call_site_does_not_silence_definition(tmp_path):
    # the violation lives at the definition; silencing it is the
    # definition module's decision, not the caller's
    root = corpus(tmp_path, {
        "contact/k.py": (
            "from util.h import helper\n"
            "def kernel(a, n_contacts):\n"
            "    # lint: host-ok -- wishful thinking\n"
            "    return helper(a, n_contacts)\n"
        ),
        "util/h.py": HELPER,
    })
    report = run_lint(root, select={"DDA001"})
    assert [f.file for f in report.findings] == ["util/h.py"]


# ----------------------------------------------------------------------
# attribution: decorated and nested functions
# ----------------------------------------------------------------------

def test_decorated_function_finding_anchors_at_def_line(tmp_path):
    root = corpus(tmp_path, {"primitives/k.py": (
        "def deco(f):\n"
        '    """``f`` is a callable (scalar metadata)."""\n'
        "    return f\n"
        "@deco\n"
        "def kernel(a):\n"
        "    return a\n"
    )})
    report = run_lint(root, select={"DDA005"})
    (finding,) = report.findings
    assert finding.line == 5  # the `def` keyword, not the decorator
    assert finding.function == "kernel"


def test_suppression_above_decorator_stack_works(tmp_path):
    root = corpus(tmp_path, {"primitives/k.py": (
        "def deco(f):\n"
        '    """``f`` is a callable (scalar metadata)."""\n'
        "    return f\n"
        "# lint: host-ok[DDA005] -- wrapper re-exports documented impl\n"
        "@deco\n"
        "def kernel(a):\n"
        "    return a\n"
    )})
    report = run_lint(root, select={"DDA005"})
    assert not report.findings


def test_nested_function_attribution(tmp_path):
    root = corpus(tmp_path, {
        "contact/k.py": (
            "from util.h import outer\n"
            "def kernel(a, n_contacts):\n"
            "    return outer(a, n_contacts)\n"
        ),
        "util/h.py": (
            "def outer(a, n):\n"
            "    def inner():\n"
            "        for i in range(n):\n"
            "            pass\n"
            "    inner()\n"
            "    return a\n"
        ),
    })
    report = run_lint(root, select={"DDA001"})
    (finding,) = report.findings
    assert finding.file == "util/h.py"
    assert finding.function == "outer.inner"


# ----------------------------------------------------------------------
# real-package pins
# ----------------------------------------------------------------------

def test_domain_is_kernel_path_and_dda3d_stays_out():
    program = real_program()
    assert program.in_closure("domain/solve.py", MODULE_SCOPE)
    assert program.in_closure("domain/partition.py", MODULE_SCOPE)
    # the 3-D prototype package is host-side analysis code: nothing in
    # it is reachable from the 2-D device pipeline
    assert not any(
        rel.startswith("dda3d/") for rel, _ in program.closure
    )


def test_closure_covers_known_host_helpers():
    program = real_program()
    for rel, qual in [
        ("util/validation.py", "check_array"),
        ("util/rng.py", "make_rng"),
        ("analysis/topology.py", "contact_graph"),
        ("geometry/tolerances.py", "Tolerances.from_points"),
        ("core/blocks.py", "BlockSystem.__init__"),
    ]:
        assert program.in_closure(rel, qual), (rel, qual)


def test_closure_module_coverage_pin():
    """The exact set of non-kernel modules the closure reaches.

    A resolver change that grows or shrinks this set is a reviewable
    event, not an invisible coverage drift — update the pin with the
    reason in the commit.
    """
    program = real_program()
    covered = sorted(
        {
            rel for rel, _ in program.closure
            if not program.modules[rel].is_kernel_path()
        }
    )
    assert covered == [
        "analysis/topology.py",
        "core/blocks.py",
        "core/displacement.py",
        "core/materials.py",
        "engine/contracts.py",
        "geometry/distance.py",
        "geometry/tolerances.py",
        "lint/sanitize.py",
        "obs/metrics.py",
        "solvers/polynomial.py",
        "solvers/preconditioners.py",
        "util/rng.py",
        "util/validation.py",
    ]


def test_entry_chains_terminate_at_kernel_seeds():
    program = real_program()
    for rel, qual in program.closure:
        if program.modules[rel].is_kernel_path():
            continue
        chain = program.entry_chain((rel, qual))
        assert chain, (rel, qual)
        # the last hop's caller is (or leads further toward) a seed;
        # with the default hop budget every chain ends on kernel path
        assert program.modules[chain[-1][0]].is_kernel_path(), (rel, qual)


def test_checked_in_sync_inventory_is_current():
    """``results/sync_inventory.json`` matches a fresh run exactly."""
    checked_in = json.loads(
        (REPO_ROOT / "results" / "sync_inventory.json").read_text(
            encoding="utf-8"
        )
    )
    fresh = run_lint().sync_inventory()
    assert fresh == checked_in
