"""Baseline round-trip and the ``python -m repro lint`` CLI contract.

The CI contract under test: exit 0 only when no *non-baselined* finding
remains, exit 1 on fresh findings, exit 2 on operator error (unknown
rule codes); ``--json`` emits the schema the lint benchmark and the CI
job consume.
"""

import json
from pathlib import Path

from repro.lint.cli import DEFAULT_BASELINE, lint_main
from repro.lint.framework import (
    apply_baseline,
    load_baseline,
    run_lint,
    write_baseline,
)

#: A kernel-path module with two DDA001 findings (identical messages —
#: both loops range over ``n`` — exercising baseline multiplicity), one
#: DDA002, one DDA005 (missing docstring), and one DDA007 (the
#: ``float(a.sum())`` is an unannotated sync point).
DIRTY = (
    "def f(a, n):\n"
    "    for i in range(n):\n"
    "        pass\n"
    "    for j in range(n):\n"
    "        pass\n"
    "    return float(a.sum())\n"
)

CLEAN = (
    "def f(a):\n"
    '    """``a`` is 1-D; returns ``a`` unchanged."""\n'
    "    return a\n"
)


def make_corpus(tmp_path: Path, source: str = DIRTY) -> Path:
    root = tmp_path / "corpus"
    (root / "contact").mkdir(parents=True)
    (root / "contact" / "k.py").write_text(source, encoding="utf-8")
    return root


# ----------------------------------------------------------------------
# baseline round-trip (library level)
# ----------------------------------------------------------------------

def test_baseline_round_trip(tmp_path):
    root = make_corpus(tmp_path)
    first = run_lint(root)
    assert first.new_findings, "fixture corpus must be dirty"

    baseline_file = write_baseline(tmp_path / "base.json", first.findings)
    baseline = load_baseline(baseline_file)
    again = run_lint(root, baseline=baseline)
    # every finding is still reported, but all are grandfathered
    assert len(again.findings) == len(first.findings)
    assert all(f.baselined for f in again.findings)
    assert not again.new_findings


def test_baseline_is_multiplicity_aware(tmp_path):
    """Two identical (file, code, message) findings need two entries."""
    root = make_corpus(tmp_path)  # two DDA001s with identical messages
    report = run_lint(root, select={"DDA001"})
    assert len(report.findings) == 2
    assert report.findings[0].key() == report.findings[1].key()

    one_entry = load_baseline(
        write_baseline(tmp_path / "one.json", report.findings[:1])
    )
    marked = apply_baseline(report.findings, one_entry)
    assert [f.baselined for f in marked] == [True, False]


def test_baseline_survives_line_drift(tmp_path):
    """Edits above a finding must not invalidate the baseline."""
    root = make_corpus(tmp_path)
    baseline = load_baseline(
        write_baseline(tmp_path / "b.json", run_lint(root).findings)
    )
    shifted = "import os  # noqa: F401\n\n\n" + DIRTY
    (root / "contact" / "k.py").write_text(shifted, encoding="utf-8")
    report = run_lint(root, baseline=baseline)
    assert not report.new_findings


def test_baseline_rejects_unknown_version(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"version": 99, "findings": []}', encoding="utf-8")
    try:
        load_baseline(bad)
    except ValueError as e:
        assert "version" in str(e)
    else:
        raise AssertionError("unsupported version must be rejected")


# ----------------------------------------------------------------------
# CLI exit codes
# ----------------------------------------------------------------------

def test_cli_exit_zero_on_clean_corpus(tmp_path):
    root = make_corpus(tmp_path, CLEAN)
    assert lint_main(["--root", str(root)]) == 0


def test_cli_exit_one_on_dirty_corpus(tmp_path, capsys):
    root = make_corpus(tmp_path)
    assert lint_main(["--root", str(root)]) == 1
    out = capsys.readouterr().out
    assert "contact/k.py" in out
    assert "DDA001" in out


def test_cli_exit_two_on_unknown_rule_code(tmp_path):
    root = make_corpus(tmp_path, CLEAN)
    assert lint_main(["--root", str(root), "--select", "DDA999"]) == 2


def test_cli_select_restricts_rules(tmp_path, capsys):
    root = make_corpus(tmp_path)
    assert lint_main(["--root", str(root), "--select", "DDA002"]) == 1
    out = capsys.readouterr().out
    assert "DDA002" in out
    assert "DDA001" not in out


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for i in range(1, 9):
        assert f"DDA00{i}" in out


# ----------------------------------------------------------------------
# CLI --json schema
# ----------------------------------------------------------------------

def test_cli_json_schema(tmp_path, capsys):
    root = make_corpus(tmp_path)
    assert lint_main(["--root", str(root), "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == 1
    assert report["root"] == str(root)
    assert report["files_scanned"] == 1
    assert report["runtime_s"] >= 0
    assert report["counts"] == {
        "DDA001": 2, "DDA002": 1, "DDA005": 1, "DDA007": 1,
    }
    assert report["new"] == len(report["findings"]) == 5
    assert set(report["pass_runtime_s"]) >= {"callgraph", "DDA001"}
    assert all(t >= 0 for t in report["pass_runtime_s"].values())
    for f in report["findings"]:
        assert set(f) == {
            "file", "line", "code", "message", "baselined",
            "function", "via",
        }
        assert f["file"] == "contact/k.py"
        assert f["function"] == "f"
        assert f["via"] == []  # kernel-path module: no closure hops
        assert f["baselined"] is False


# ----------------------------------------------------------------------
# CLI baseline workflow (--write-baseline, --baseline, auto-discovery)
# ----------------------------------------------------------------------

def test_cli_write_then_consume_baseline(tmp_path, capsys):
    root = make_corpus(tmp_path)
    base = tmp_path / "grandfathered.json"
    assert lint_main(
        ["--root", str(root), "--write-baseline", str(base)]
    ) == 0
    capsys.readouterr()
    assert lint_main(
        ["--root", str(root), "--baseline", str(base), "--json"]
    ) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["new"] == 0
    assert all(f["baselined"] for f in report["findings"])


def test_cli_rewrite_baseline_prunes_stale_entries(tmp_path, capsys):
    root = make_corpus(tmp_path)
    base = tmp_path / "grandfathered.json"
    assert lint_main(
        ["--root", str(root), "--write-baseline", str(base)]
    ) == 0
    assert "0 stale entries pruned" in capsys.readouterr().err
    # the corpus gets fixed: rewriting the baseline reports how many
    # grandfathered entries no longer match anything
    (root / "contact" / "k.py").write_text(CLEAN, encoding="utf-8")
    assert lint_main(
        ["--root", str(root), "--write-baseline", str(base)]
    ) == 0
    assert "5 stale entries pruned" in capsys.readouterr().err


def test_cli_auto_discovers_default_baseline(tmp_path, monkeypatch, capsys):
    root = make_corpus(tmp_path)
    monkeypatch.chdir(tmp_path)
    assert lint_main(
        ["--root", str(root), "--write-baseline", DEFAULT_BASELINE]
    ) == 0
    capsys.readouterr()
    # no --baseline flag: ./lint-baseline.json is picked up automatically
    assert lint_main(["--root", str(root)]) == 0


def test_repo_package_is_lint_clean():
    """The shipped package passes its own linter with no baseline."""
    report = run_lint()
    assert not report.findings, [f.render() for f in report.findings]
    assert report.files_scanned > 80
