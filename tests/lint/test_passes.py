"""Per-pass fixtures for the DDA001-DDA005 static rules.

The interprocedural rules (DDA006-DDA008) and the call-graph closure
live in ``test_new_passes.py`` / ``test_callgraph.py``.

Each test builds a tiny corpus under ``tmp_path`` laid out like the
package (``contact/`` is on the kernel path, ``util/`` is not), runs
:func:`repro.lint.framework.run_lint` against it, and asserts on the
finding codes — one positive and one negative snippet per rule, plus
the suppression and exemption machinery.
"""

from pathlib import Path

from repro.lint.framework import (
    KERNEL_PATH,
    MODULE_EXEMPTIONS,
    SourceModule,
    run_lint,
)
from repro.lint.passes import ALL_CODES, ALL_PASSES


def corpus(tmp_path: Path, files: dict[str, str]) -> Path:
    """Materialise ``{relpath: source}`` under ``tmp_path``."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return tmp_path


def codes_at(report, rel: str) -> list[str]:
    return [f.code for f in report.findings if f.file == rel]


# ----------------------------------------------------------------------
# registry hygiene
# ----------------------------------------------------------------------

def test_pass_registry_well_formed():
    assert len(ALL_PASSES) == 8
    assert ALL_CODES == {f"DDA00{i}" for i in range(1, 9)}
    for p in ALL_PASSES:
        assert p.code in ALL_CODES
        assert p.name and p.description
        # a rule is either device-side (kernel path) or service-side,
        # never both
        assert not (p.kernel_path_only and p.service_path_only)


# ----------------------------------------------------------------------
# DDA001 — axis loops
# ----------------------------------------------------------------------

def test_dda001_flags_axis_loops(tmp_path):
    root = corpus(tmp_path, {"contact/k.py": (
        "def f(pairs, n_contacts):\n"
        "    for i in range(n_contacts):\n"
        "        pass\n"
        "    for p in pairs:\n"
        "        pass\n"
        "    i = 0\n"
        "    while i < n_contacts:\n"
        "        i += 1\n"
    )})
    report = run_lint(root, select={"DDA001"})
    assert codes_at(report, "contact/k.py") == ["DDA001"] * 3


def test_dda001_ignores_small_fixed_loops_and_host_modules(tmp_path):
    root = corpus(tmp_path, {
        # a fixed-trip loop (radix passes, axes of a 6x6 block) is fine
        "contact/k.py": "def f():\n    for axis in range(2):\n        pass\n",
        # same axis loop off the kernel path: not DDA001's business
        "util/h.py": "def g(n):\n    for i in range(n):\n        pass\n",
    })
    report = run_lint(root, select={"DDA001"})
    assert not report.findings


# ----------------------------------------------------------------------
# DDA002 — hidden host transfers
# ----------------------------------------------------------------------

def test_dda002_flags_hidden_transfers(tmp_path):
    root = corpus(tmp_path, {"assembly/k.py": (
        "def f(a, k):\n"
        "    x = a.tolist()\n"
        "    y = float(a.sum())\n"
        "    z = int(a[k])\n"
        "    if a[k]:\n"
        "        pass\n"
        "    return x, y, z\n"
    )})
    report = run_lint(root, select={"DDA002"})
    assert codes_at(report, "assembly/k.py") == ["DDA002"] * 4


def test_dda002_exempts_cost_model_context(tmp_path):
    # expressions feeding the virtual-GPU launch model are the model,
    # not the simulated data path
    root = corpus(tmp_path, {"gpu/k.py": (
        "def f(device, a):\n"
        "    device.launch('k', KernelCounters(flops=int(a.sum())))\n"
        "    return coalesced_transactions(int(a[0]), 8)\n"
    )})
    report = run_lint(root, select={"DDA002"})
    assert not report.findings


# ----------------------------------------------------------------------
# DDA003 — dtype purity
# ----------------------------------------------------------------------

def test_dda003_flags_narrow_dtypes(tmp_path):
    root = corpus(tmp_path, {"spmv/k.py": (
        "import numpy as np\n"
        "def f(a):\n"
        "    b = a.astype(np.float32)\n"
        "    c = np.zeros(4, dtype='int32')\n"
        "    return b, c\n"
    )})
    report = run_lint(root, select={"DDA003"})
    assert codes_at(report, "spmv/k.py") == ["DDA003"] * 2


def test_dda003_allows_wide_dtypes(tmp_path):
    root = corpus(tmp_path, {"spmv/k.py": (
        "import numpy as np\n"
        "def f(a):\n"
        "    return a.astype(np.float64), np.zeros(4, dtype='int64')\n"
    )})
    report = run_lint(root, select={"DDA003"})
    assert not report.findings


# ----------------------------------------------------------------------
# DDA004 — seeded RNG only (applies everywhere, not just kernel path)
# ----------------------------------------------------------------------

def test_dda004_flags_unseeded_and_legacy_rng(tmp_path):
    root = corpus(tmp_path, {"util/h.py": (
        "import random\n"
        "import numpy as np\n"
        "def f():\n"
        "    a = np.random.rand(3)\n"
        "    rng = np.random.default_rng()\n"
        "    return a, rng\n"
    )})
    report = run_lint(root, select={"DDA004"})
    assert codes_at(report, "util/h.py") == ["DDA004"] * 3


def test_dda004_allows_seeded_rng_and_rng_home(tmp_path):
    root = corpus(tmp_path, {
        "util/h.py": (
            "import numpy as np\n"
            "def f(seed):\n"
            "    return np.random.default_rng(seed)\n"
        ),
        # util/rng.py is the one module allowed to build generators
        "util/rng.py": (
            "import numpy as np\n"
            "def make_rng(seed=None):\n"
            "    return np.random.default_rng(seed)\n"
        ),
    })
    report = run_lint(root, select={"DDA004"})
    assert not report.findings


# ----------------------------------------------------------------------
# DDA005 — shape docstrings
# ----------------------------------------------------------------------

def test_dda005_flags_missing_shape_annotations(tmp_path):
    root = corpus(tmp_path, {"primitives/k.py": (
        "def no_doc(a):\n"
        "    return a\n"
        "def vague_doc(a):\n"
        '    """Does things to the input."""\n'
        "    return a\n"
        "def _private(a):\n"
        "    return a\n"
    )})
    report = run_lint(root, select={"DDA005"})
    assert codes_at(report, "primitives/k.py") == ["DDA005"] * 2


def test_dda005_accepts_any_shape_marker(tmp_path):
    root = corpus(tmp_path, {"primitives/k.py": (
        "def f(a):\n"
        '    """``a`` has shape ``(n, 4)``."""\n'
        "    return a\n"
        "def g(a):\n"
        '    """``a`` is a 1-D key array."""\n'
        "    return a\n"
        "def h(x):\n"
        '    """``x`` is a scalar."""\n'
        "    return x\n"
    )})
    report = run_lint(root, select={"DDA005"})
    assert not report.findings


# ----------------------------------------------------------------------
# suppressions and exemptions
# ----------------------------------------------------------------------

def test_bare_host_ok_suppresses_all_codes(tmp_path):
    root = corpus(tmp_path, {"contact/k.py": (
        "def f(a, n):\n"
        "    # lint: host-ok -- documented serial reference\n"
        "    for i in range(n):\n"
        "        pass\n"
        "    x = float(a.sum())  # lint: host-ok -- boundary by contract\n"
        "    return x\n"
    )})
    report = run_lint(root, select={"DDA001", "DDA002"})
    assert not report.findings


def test_scoped_host_ok_suppresses_only_listed_codes(tmp_path):
    src = (
        "import numpy as np\n"
        "def f(a):\n"
        "    return float(a.astype(np.float32).sum())"
        "  # lint: host-ok[DDA002]\n"
    )
    root = corpus(tmp_path, {"spmv/k.py": src})
    report = run_lint(root, select={"DDA002", "DDA003"})
    # DDA002 silenced by the scoped comment; DDA003 still fires
    assert codes_at(report, "spmv/k.py") == ["DDA003"]


def test_suppression_map_covers_line_above(tmp_path):
    path = tmp_path / "k.py"
    path.write_text("# lint: host-ok[DDA001]\nx = 1\n", encoding="utf-8")
    module = SourceModule(tmp_path, path)
    assert module.suppressed(2, "DDA001")  # line under the comment
    assert module.suppressed(1, "DDA001")  # the comment line itself
    assert not module.suppressed(2, "DDA002")  # scoped: other codes live


def test_module_exemptions_match_real_entries(tmp_path):
    # the registry's shape is part of the framework contract
    for rel, (codes, reason) in MODULE_EXEMPTIONS.items():
        assert codes <= ALL_CODES
        assert reason
    root = corpus(tmp_path, {"spmv/synthetic.py": (
        "def f(n):\n"
        "    for i in range(n):\n"
        "        pass\n"
    )})
    report = run_lint(root)
    # DDA001 exempted module-wide; DDA005 (not exempted) still applies
    codes = codes_at(report, "spmv/synthetic.py")
    assert "DDA001" not in codes
    assert "DDA005" in codes


def test_kernel_path_prefixes_are_directories_or_files():
    for entry in KERNEL_PATH:
        assert entry.endswith("/") or entry.endswith(".py")
