"""Planted-violation fixtures for the interprocedural rules.

DDA006 (Array-API portability), DDA007 (reasoned sync points), and
DDA008 (service write discipline) each get one dirty and one clean
snippet per behaviour, plus their annotation protocols — ``sync-ok`` /
``lock-ok`` demand a reason, and the generic ``host-ok`` deliberately
cannot silence them.
"""

from pathlib import Path

from repro.lint.framework import run_lint
from repro.lint.passes.array_api import ARRAY_API, CUPY_EQUIV, NONPORTABLE


def corpus(tmp_path: Path, files: dict[str, str]) -> Path:
    """Materialise ``{relpath: source}`` under ``tmp_path``."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return tmp_path


def codes_at(report, rel: str) -> list[str]:
    return [f.code for f in report.findings if f.file == rel]


# ----------------------------------------------------------------------
# DDA006 — Array-API portability
# ----------------------------------------------------------------------

def test_dda006_tables_are_disjoint_and_nonempty():
    assert ARRAY_API and CUPY_EQUIV and NONPORTABLE
    assert not set(ARRAY_API) & CUPY_EQUIV
    assert not set(ARRAY_API) & set(NONPORTABLE)
    assert not CUPY_EQUIV & set(NONPORTABLE)


def test_dda006_allows_tabled_calls(tmp_path):
    root = corpus(tmp_path, {"spmv/k.py": (
        "import numpy as np\n"
        "def f(a, b):\n"
        "    c = np.concatenate([a, b])\n"
        "    d = np.bincount(a)\n"
        "    e = np.linalg.norm(b)\n"
        "    g = np.cumsum(a)\n"
        "    return c, d, e, g\n"
    )})
    report = run_lint(root, select={"DDA006"})
    assert not report.findings


def test_dda006_flags_nonportable_with_rewrite_hint(tmp_path):
    root = corpus(tmp_path, {"spmv/k.py": (
        "import numpy as np\n"
        "def f(a, g):\n"
        "    return np.vectorize(g)(a)\n"
    )})
    report = run_lint(root, select={"DDA006"})
    (finding,) = report.findings
    assert finding.code == "DDA006"
    assert finding.file == "spmv/k.py"
    assert finding.line == 3
    assert finding.function == "f"
    assert "disguised Python loop" in finding.message


def test_dda006_flags_ufunc_methods_toward_scatter_seam(tmp_path):
    root = corpus(tmp_path, {"assembly/k.py": (
        "import numpy as np\n"
        "def f(out, idx, vals, starts):\n"
        "    np.add.at(out, idx, vals)\n"
        "    return np.maximum.reduceat(vals, starts)\n"
    )})
    report = run_lint(root, select={"DDA006"})
    messages = [f.message for f in report.findings]
    assert len(messages) == 2
    assert "scatter_add" in messages[0]
    assert "segment_sum" in messages[1]


def test_dda006_flags_unknown_numpy_names(tmp_path):
    root = corpus(tmp_path, {"spmv/k.py": (
        "import numpy as np\n"
        "def f(a):\n"
        "    return np.totally_made_up(a)\n"
    )})
    report = run_lint(root, select={"DDA006"})
    (finding,) = report.findings
    assert "allowlist" in finding.message


def test_dda006_flags_object_dtype_and_bad_methods(tmp_path):
    root = corpus(tmp_path, {"primitives/k.py": (
        "import numpy as np\n"
        "def f(a):\n"
        '    """``a`` is 1-D."""\n'
        "    b = np.empty(3, dtype=object)\n"
        "    a.tofile('x.bin')\n"
        "    return b\n"
    )})
    report = run_lint(root, select={"DDA006"})
    messages = sorted(f.message for f in report.findings)
    assert len(messages) == 2
    assert any("dtype=object" in m for m in messages)
    assert any(".tofile()" in m for m in messages)


def test_dda006_bad_method_names_skip_module_functions(tmp_path):
    # json.dump shares a name with ndarray.dump; the import binding
    # proves it is not an array method
    root = corpus(tmp_path, {"gpu/k.py": (
        "import json\n"
        "def f(d, fh):\n"
        "    json.dump(d, fh)\n"
    )})
    report = run_lint(root, select={"DDA006"})
    assert not report.findings


def test_dda006_respects_numpy_import_alias(tmp_path):
    root = corpus(tmp_path, {"contact/k.py": (
        "import numpy as xp\n"
        "def f(a):\n"
        "    return xp.vectorize(abs)(a)\n"
    )})
    report = run_lint(root, select={"DDA006"})
    assert codes_at(report, "contact/k.py") == ["DDA006"]


def test_dda006_ignores_host_modules_outside_closure(tmp_path):
    root = corpus(tmp_path, {"util/h.py": (
        "import numpy as np\n"
        "def g(a):\n"
        "    return np.vectorize(abs)(a)\n"
    )})
    report = run_lint(root, select={"DDA006"})
    assert not report.findings


# ----------------------------------------------------------------------
# DDA007 — reasoned sync points
# ----------------------------------------------------------------------

def test_dda007_flags_unannotated_sync_points(tmp_path):
    root = corpus(tmp_path, {"solvers/cg.py": (
        "import numpy as np\n"
        "def f(a, r, z):\n"
        "    x = a.item()\n"
        "    y = float(r @ z)\n"
        "    if np.any(r):\n"
        "        pass\n"
        "    while r[0] > 0:\n"
        "        pass\n"
        "    return x, y\n"
    )})
    report = run_lint(root, select={"DDA007"})
    assert codes_at(report, "solvers/cg.py") == ["DDA007"] * 4
    kinds = sorted(p.kind for p in report.sync_points)
    assert kinds == ["branch", "item", "loop-guard", "scalar-cast"]
    assert all(not p.annotated for p in report.sync_points)


def test_dda007_taint_tracks_assigned_device_results(tmp_path):
    root = corpus(tmp_path, {"contact/k.py": (
        "import numpy as np\n"
        "def f(m):\n"
        "    hits = np.flatnonzero(m)\n"
        "    if hits.size:\n"
        "        pass\n"
        "def g(m, hits):\n"
        "    if hits.size:\n"
        "        pass\n"
    )})
    report = run_lint(root, select={"DDA007"})
    # taint is per-function: g's `hits` parameter is not device-derived
    assert [f.function for f in report.findings] == ["f"]
    (point,) = report.sync_points
    assert "device-derived 'hits'" in point.detail


def test_dda007_sync_ok_with_reason_silences_but_stays_inventoried(
    tmp_path,
):
    root = corpus(tmp_path, {"solvers/cg.py": (
        "def f(r, z):\n"
        "    rz = float(r @ z)  # lint: sync-ok[cg-convergence]\n"
        "    return rz\n"
    )})
    report = run_lint(root, select={"DDA007"})
    assert not report.findings
    (point,) = report.sync_points
    assert point.annotated and point.reason == "cg-convergence"
    inventory = report.sync_inventory()
    assert inventory["count"] == inventory["annotated"] == 1
    assert inventory["sync_points"][0]["reason"] == "cg-convergence"


def test_dda007_sync_ok_without_reason_is_a_finding(tmp_path):
    root = corpus(tmp_path, {"solvers/cg.py": (
        "def f(r, z):\n"
        "    return float(r @ z)  # lint: sync-ok\n"
    )})
    report = run_lint(root, select={"DDA007"})
    (finding,) = report.findings
    assert "gives no reason" in finding.message
    (point,) = report.sync_points
    assert point.annotated and point.reason is None


def test_dda007_generic_host_ok_cannot_silence_it(tmp_path):
    root = corpus(tmp_path, {"solvers/cg.py": (
        "def f(r, z):\n"
        "    return float(r @ z)  # lint: host-ok -- not good enough\n"
    )})
    report = run_lint(root, select={"DDA002", "DDA007"})
    # host-ok silences DDA002 but DDA007 still demands sync-ok
    assert [f.code for f in report.findings] == ["DDA007"]


def test_dda007_sync_ok_also_covers_dda002_on_the_line(tmp_path):
    root = corpus(tmp_path, {"solvers/cg.py": (
        "def f(r, z):\n"
        "    return float(r @ z)  # lint: sync-ok[cg-convergence]\n"
    )})
    report = run_lint(root, select={"DDA002", "DDA007"})
    assert not report.findings


def test_dda007_annotation_reaches_through_comment_block(tmp_path):
    root = corpus(tmp_path, {"solvers/cg.py": (
        "def f(r, z):\n"
        "    # lint: sync-ok[cg-convergence] -- the host loop decides\n"
        "    # when to stop; a device backend fences exactly here\n"
        "    return float(r @ z)\n"
    )})
    report = run_lint(root, select={"DDA007"})
    assert not report.findings
    (point,) = report.sync_points
    assert point.annotated and point.reason == "cg-convergence"


def test_dda007_model_calls_are_not_sync_points(tmp_path):
    root = corpus(tmp_path, {"gpu/k.py": (
        "def f(device, a):\n"
        "    device.launch('k', KernelCounters(flops=int(a.sum())))\n"
    )})
    report = run_lint(root, select={"DDA007"})
    assert not report.findings
    assert not report.sync_points


# ----------------------------------------------------------------------
# DDA008 — service write discipline
# ----------------------------------------------------------------------

def test_dda008_flags_raw_writes_on_service_path(tmp_path):
    root = corpus(tmp_path, {"service/state.py": (
        "import os\n"
        "import shutil\n"
        "from pathlib import Path\n"
        "def f(path, src, dst, data):\n"
        "    with open(path, 'w') as fh:\n"
        "        fh.write(data)\n"
        "    Path(path).write_text(data)\n"
        "    os.replace(src, dst)\n"
        "    shutil.move(src, dst)\n"
        "    fd = os.open(path, os.O_WRONLY | os.O_CREAT)\n"
        "    return fd\n"
    )})
    report = run_lint(root, select={"DDA008"})
    assert codes_at(report, "service/state.py") == ["DDA008"] * 5
    assert all(f.function == "f" for f in report.findings)


def test_dda008_allows_reads_and_append_journal(tmp_path):
    root = corpus(tmp_path, {"service/state.py": (
        "import os\n"
        "def f(path):\n"
        "    with open(path) as fh:\n"
        "        data = fh.read()\n"
        "    with open(path, 'rb') as fh:\n"
        "        raw = fh.read()\n"
        "    fd = os.open(path, os.O_WRONLY | os.O_APPEND)\n"
        "    return data, raw, fd\n"
    )})
    report = run_lint(root, select={"DDA008"})
    assert not report.findings


def test_dda008_dynamic_open_mode_is_flagged(tmp_path):
    # a mode the analyzer cannot read is treated as a write
    root = corpus(tmp_path, {"service/state.py": (
        "def f(path, mode):\n"
        "    return open(path, mode)\n"
    )})
    report = run_lint(root, select={"DDA008"})
    (finding,) = report.findings
    assert "open(..., '?')" in finding.message


def test_dda008_lock_ok_with_reason_silences(tmp_path):
    root = corpus(tmp_path, {"service/q.py": (
        "import os\n"
        "def claim(src, dst):\n"
        "    os.rename(src, dst)  # lint: lock-ok[rename-as-claim]\n"
    )})
    report = run_lint(root, select={"DDA008"})
    assert not report.findings


def test_dda008_lock_ok_without_reason_is_a_finding(tmp_path):
    root = corpus(tmp_path, {"service/q.py": (
        "import os\n"
        "def claim(src, dst):\n"
        "    os.rename(src, dst)  # lint: lock-ok\n"
    )})
    report = run_lint(root, select={"DDA008"})
    (finding,) = report.findings
    assert "gives no reason" in finding.message


def test_dda008_generic_host_ok_cannot_silence_it(tmp_path):
    root = corpus(tmp_path, {"service/q.py": (
        "import os\n"
        "def claim(src, dst):\n"
        "    os.rename(src, dst)  # lint: host-ok -- nope\n"
    )})
    report = run_lint(root, select={"DDA008"})
    assert codes_at(report, "service/q.py") == ["DDA008"]


def test_dda008_ignores_modules_off_the_service_path(tmp_path):
    root = corpus(tmp_path, {"util/h.py": (
        "def f(path, data):\n"
        "    with open(path, 'w') as fh:\n"
        "        fh.write(data)\n"
    )})
    report = run_lint(root, select={"DDA008"})
    assert not report.findings
