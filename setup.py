"""Setuptools shim.

The primary build configuration lives in ``pyproject.toml``. This file
exists so the package can be installed in environments without the
``wheel`` package (offline PEP-660 editable installs need it):

    python setup.py develop     # editable install without wheel
"""

from setuptools import setup

setup()
